"""Shared benchmark plumbing.

Figs. 2+5 and 3+6 are rendered from the *same* experiment runs (the
paper measured throughput and replication delay in one deployment), so
grids are computed once per (ratio, location) and cached for the
session.  ``REPRO_SCALE`` (quick | standard | full) selects grid
density and run durations; ``full`` is the paper's exact 35-minute
grid and takes hours.

Each bench prints its table (run pytest with ``-s`` to see them live)
and saves it under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import (LocationConfig, bench_scale,
                               run_throughput_delay_grid)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_GRID_CACHE: dict = {}


def get_grid(ratio: str, location: LocationConfig):
    """Run (or fetch) the sweep grid for one sub-figure."""
    profile = bench_scale()  # simtaint: blessed=REPRO_SCALE-sizes-the-benchmark-not-the-result
    key = (ratio, location, profile.name)
    if key not in _GRID_CACHE:
        _GRID_CACHE[key] = run_throughput_delay_grid(ratio, location,
                                                     profile)
    return _GRID_CACHE[key]


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def _cell(token: str):
    """A table cell: numeric where possible, verbatim otherwise."""
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def table_as_json(name: str, text: str) -> str:
    """Canonical-JSON rider for one rendered table.

    The tables are whitespace-delimited (title line, header line, data
    rows); the rider carries the same content machine-readably so
    fig/ablation results can be diffed and plotted without re-parsing
    print output.  Non-tabular blurbs degrade to title-only riders.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    title = lines[0] if lines else ""
    header = lines[1].split() if len(lines) > 1 else []
    rows = [[_cell(token) for token in line.split()]
            for line in lines[2:]]
    return json.dumps({"name": name, "title": title, "header": header,
                       "rows": rows},
                      sort_keys=True, separators=(",", ":"))


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table; persist it plus a canonical-JSON rider."""
    print(f"\n{text}\n")
    (results_dir / f"{name}.txt").write_text(text + "\n")
    (results_dir / f"{name}.json").write_text(
        table_as_json(name, text) + "\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    These are simulation *experiments*, not micro-benchmarks; repeating
    them only repeats identical seeded runs.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""Ablation — read-balancing policy over heterogeneous slaves.

The paper's closing suggestion (§IV-B.2): geographic replication works
"as long as workload characteristics can be well managed (e.g. having
a smart load balancer which is able of balancing the operations based
on estimated processing time)".  This ablation compares Connector/J's
round-robin against a least-outstanding balancer on a slave pool whose
hardware lottery produced unequal instances.
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ConnectionPool, ReplicationManager
from repro.sim import RandomStreams, Simulator
from repro.workloads.cloudstone import (LoadGenerator, MIX_80_20, Phases,
                                        load_initial_data)

from conftest import publish, run_once

PHASES = Phases(ramp_up=30.0, steady=120.0, ramp_down=15.0)


def run_policy(policy, seed=31):
    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    state = load_initial_data(master, 300, streams.stream("loader"))
    for _ in range(4):
        manager.add_slave(MASTER_PLACEMENT)
    # Same seed => identical hardware lottery across policies.
    speeds = sorted(s.instance.effective_speed for s in manager.slaves)
    proxy = manager.build_proxy(
        MASTER_PLACEMENT, policy=policy,
        rng=streams.stream("proxy") if policy == "random" else None)
    pool = ConnectionPool(sim, max_active=256)
    generator = LoadGenerator(sim, proxy, pool, MIX_80_20, state, streams,
                              n_users=180, think_time_mean=7.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    worst_backlog = max(s.relay_backlog for s in manager.slaves)
    return (generator.steady_throughput(),
            generator.steady_mean_latency() * 1000.0,
            worst_backlog, speeds)


def test_balancing_policies_on_heterogeneous_pool(benchmark, results_dir):
    def sweep():
        return {policy: run_policy(policy)
                for policy in ("round_robin", "least_outstanding",
                               "random")}

    rows = run_once(benchmark, sweep)
    speeds = rows["round_robin"][3]
    lines = [f"slave pool relative speeds: "
             f"{', '.join(f'{s:.2f}' for s in speeds)}",
             "policy              tput    mean-latency-ms  worst-backlog"]
    for policy, (tput, latency, backlog, _s) in rows.items():
        lines.append(f"{policy:18s} {tput:6.1f} {latency:16.1f} "
                     f"{backlog:14d}")
    publish(results_dir, "ablation_balancing", "\n".join(lines))

    # The queue-aware balancer must not lose to blind round-robin on
    # latency when the pool is unequal.
    assert rows["least_outstanding"][1] <= rows["round_robin"][1] * 1.05
    assert rows["least_outstanding"][0] >= rows["round_robin"][0] * 0.95

"""Ablation — statement-based vs row-based binlog.

The paper uses MySQL's statement-based replication, and its heartbeat
methodology *depends* on it (each replica re-evaluates ``USEC_NOW()``
locally).  This ablation quantifies the trade the other format makes:
row-based apply burns less slave CPU but ships more bytes — and breaks
the delay measurement entirely.
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import (HeartbeatPlugin, ReplicationManager,
                               collect_delays)
from repro.sim import RandomStreams, Simulator

from conftest import publish, run_once

WRITES = 300


def run_format(fmt, seed=81):
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(seed))
    manager = ReplicationManager(sim, cloud, ntp_period=None,
                                 binlog_format=fmt)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE items (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, grp INTEGER, v INTEGER)")
    plugin = HeartbeatPlugin(sim, master, interval=1.0)
    plugin.install()
    slave = manager.add_slave(MASTER_PLACEMENT)
    slave.instance.clock.step_to_error(0.5)  # half a second of skew
    plugin.start()

    def writer(sim, master):
        for i in range(WRITES):
            yield from master.perform(
                f"INSERT INTO items (grp, v) VALUES ({i % 3}, {i})")
            yield sim.timeout(0.1)

    sim.process(writer(sim, master))
    sim.run(until=WRITES * 0.2)
    plugin.stop()
    sim.run(until=WRITES * 0.2 + 10.0)
    assert manager.verify_consistency()
    samples = collect_delays(plugin, slave)
    median_delay = sorted(s.delay_ms for s in samples)[len(samples) // 2]
    return {
        "slave_cpu_s": slave.instance.busy_time,
        "bytes": cloud.network.bytes_sent,
        "median_heartbeat_delay_ms": median_delay,
    }


def test_binlog_format_tradeoffs(benchmark, results_dir):
    rows = run_once(benchmark, lambda: {
        fmt: run_format(fmt) for fmt in ("statement", "row")})
    lines = ["format     slave-cpu-s  wire-bytes  "
             "median-heartbeat-delay-ms"]
    for fmt, stats in rows.items():
        lines.append(f"{fmt:9s} {stats['slave_cpu_s']:12.3f} "
                     f"{stats['bytes']:11d} "
                     f"{stats['median_heartbeat_delay_ms']:16.2f}")
    lines.append("(the slave clock was skewed +500 ms: statement-based "
                 "heartbeats see it, row-based ones cannot)")
    publish(results_dir, "ablation_binlog_format", "\n".join(lines))

    statement, row = rows["statement"], rows["row"]
    assert row["slave_cpu_s"] < statement["slave_cpu_s"]
    assert row["bytes"] > statement["bytes"] * 0.8
    # Statement-based measures the skew; row-based is blind to it.
    assert statement["median_heartbeat_delay_ms"] > 400.0
    assert abs(row["median_heartbeat_delay_ms"]) < 5.0

"""Ablation — heartbeat interval vs estimator quality and overhead.

The paper inserts one heartbeat per second.  Faster heartbeats give
more delay samples (tighter estimates) but add write load to the very
path being measured; slower heartbeats starve the estimator.  This
sweep quantifies both effects on a moderately loaded slave.
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import (HeartbeatPlugin, ReplicationManager,
                               collect_delays)
from repro.metrics import trimmed_mean
from repro.sim import RandomStreams, Simulator

from conftest import publish, run_once

INTERVALS = (0.2, 1.0, 5.0)
RUN = 240.0


def run_interval(interval, seed=41):
    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, "
                 "v INTEGER)")
    heartbeat = HeartbeatPlugin(sim, master, interval=interval)
    heartbeat.install()
    slave = manager.add_slave(MASTER_PLACEMENT)
    heartbeat.start()

    def writer(sim, master):
        i = 0
        while True:
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
            i += 1
            yield sim.timeout(0.25)

    def reader(sim, slave):
        # Moderate, stationary read load: the estimator needs the
        # slave to keep applying, not to drown.
        while True:
            yield from slave.perform("SELECT * FROM t WHERE id = 1")
            yield sim.timeout(0.35)

    sim.process(writer(sim, master))
    sim.process(reader(sim, slave))
    sim.run(until=RUN)
    heartbeat.stop()
    samples = collect_delays(heartbeat, slave, window_start=RUN / 2,
                             window_end=RUN)
    master_heartbeat_share = (heartbeat.next_id - 1) / (
        master.writes_served or 1)
    delay = trimmed_mean([s.delay_ms for s in samples]) if samples \
        else float("nan")
    return len(samples), delay, master_heartbeat_share


def test_heartbeat_interval_tradeoff(benchmark, results_dir):
    rows = run_once(benchmark, lambda: {
        interval: run_interval(interval) for interval in INTERVALS})
    lines = ["interval-s  samples  delay-ms  heartbeat-share-of-writes"]
    for interval, (count, delay, share) in rows.items():
        lines.append(f"{interval:10.1f} {count:8d} {delay:9.2f} "
                     f"{share:26.3f}")
    publish(results_dir, "ablation_heartbeat_interval", "\n".join(lines))

    counts = [rows[i][0] for i in INTERVALS]
    assert counts[0] > counts[1] > counts[2]      # samples scale inversely
    delays = [rows[i][1] for i in INTERVALS]
    # All intervals estimate the same underlying (stationary) delay.
    assert max(delays) < 12 * max(min(delays), 0.5)
    # The 1 Hz heartbeat adds modest write load; 5 Hz does not.
    assert rows[1.0][2] < 0.30
    assert rows[0.2][2] > rows[1.0][2] > rows[5.0][2]

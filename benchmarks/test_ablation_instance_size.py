"""Ablation — a large-instance master (paper §VI future work).

"hosting the database servers in EC2 instances with different sizes"
is explicitly left as future work.  The model predicts the 50/50
ceiling is the master's write capacity, so a large master (2 cores x
2 ECU) should raise the ceiling until the (small) slaves bind again.
"""

from repro.cloud import LARGE, SMALL
from repro.workloads.cloudstone import Phases

from conftest import publish, run_once

PHASES = Phases(30.0, 90.0, 15.0)


def run_with_master_size(itype, n_slaves=4, n_users=300, seed=51):
    """PAPER_50_50 cell, overriding the master's instance size."""
    from repro.cloud import Cloud, MASTER_PLACEMENT
    from repro.replication import ConnectionPool, ReplicationManager
    from repro.sim import RandomStreams, Simulator
    from repro.workloads.cloudstone import (LoadGenerator, MIX_50_50,
                                            load_initial_data)
    from repro.cloud.instance import CpuModel

    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT, itype=itype)
    master.instance.pin_hardware(CpuModel("Intel Xeon E5430 2.66GHz", 1.0))
    state = load_initial_data(master, 300, streams.stream("loader"))
    for _ in range(n_slaves):
        manager.add_slave(MASTER_PLACEMENT)
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    pool = ConnectionPool(sim, max_active=n_users)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=n_users, think_time_mean=7.0,
                              phases=PHASES)
    generator.start()
    sim.run(until=PHASES.total)
    return generator.steady_throughput(), master.instance.utilization


def test_large_master_raises_5050_ceiling(benchmark, results_dir):
    def compare():
        small_tput, _u = run_with_master_size(SMALL)
        large_tput, _u = run_with_master_size(LARGE)
        return small_tput, large_tput

    small_tput, large_tput = run_once(benchmark, compare)
    publish(results_dir, "ablation_instance_size",
            f"50/50, 4 slaves, 300 users:\n"
            f"  m1.small master: {small_tput:.1f} ops/s "
            f"(the paper's ceiling)\n"
            f"  m1.large master: {large_tput:.1f} ops/s\n"
            f"  gain: {large_tput / small_tput:.2f}x — the write ceiling "
            f"belongs to the master")
    assert large_tput > 1.3 * small_tput

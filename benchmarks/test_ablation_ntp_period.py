"""Ablation — NTP synchronization period sweep.

The paper chose 1 s "to have a better resolution" (§III-A).  This
sweep maps the period to the achieved inter-instance skew — how far
one can relax the period before the skew pollutes millisecond-scale
delay measurements.
"""

import numpy as np

from repro.cloud import LocalClock, NtpDaemon
from repro.sim import RandomStreams, Simulator

from conftest import publish, run_once

PERIODS = (1.0, 10.0, 60.0, 300.0)
DURATION = 1200.0


def skew_for_period(period, seed=61):
    sim = Simulator()
    streams = RandomStreams(seed)
    a = LocalClock(sim, offset=0.02, drift_rate=22e-6)
    b = LocalClock(sim, offset=-0.015, drift_rate=-14e-6)
    NtpDaemon(sim, a, streams, period=period, stream_name="a")
    NtpDaemon(sim, b, streams, period=period, stream_name="b")
    samples = []

    def sampler(sim):
        while True:
            yield sim.timeout(5.0)
            samples.append(abs(a.difference(b)) * 1000.0)

    sim.process(sampler(sim))
    sim.run(until=DURATION)
    return float(np.median(samples)), float(np.max(samples))


def test_ntp_period_sweep(benchmark, results_dir):
    rows = run_once(benchmark, lambda: {
        period: skew_for_period(period) for period in PERIODS})
    lines = ["period-s  median-skew-ms  max-skew-ms  syncs/20min"]
    for period, (median, peak) in rows.items():
        lines.append(f"{period:8.0f} {median:15.2f} {peak:12.2f} "
                     f"{int(DURATION / period):12d}")
    publish(results_dir, "ablation_ntp_period", "\n".join(lines))

    medians = [rows[p][0] for p in PERIODS]
    # Skew grows monotonically (within noise) as the period relaxes,
    # and the 5-minute period is clearly unusable for ms-scale work.
    assert medians[0] < 8.0
    assert rows[300.0][1] > rows[1.0][1]
    assert rows[300.0][0] > 2.0

"""Ablation — read-your-writes session stickiness.

The paper characterizes the staleness window of asynchronous
master-slave replication but evaluates no mitigation.  This ablation
adds one: after a session writes, its reads stick to the master for a
window.  The trade is explicit — write-then-read sessions stop seeing
stale data, but the master absorbs read traffic it was supposed to be
offloading (hastening the very saturation the paper identifies).
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator
from repro.sql import parse

from conftest import publish, run_once

SESSIONS = 60
RUN = 120.0


def run_window(window_s, seed=91):
    sim = Simulator()
    streams = RandomStreams(seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=None)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE notes (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, author INTEGER, body TEXT)")
    master.admin("CREATE INDEX idx_author ON notes (author)")
    for _ in range(2):
        manager.add_slave(cloud.placement("us-east-1b"))
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    proxy.read_your_writes_window = window_s
    misses = 0
    probes = 0

    def session(sim, author, rng):
        nonlocal misses, probes
        yield sim.timeout(float(rng.uniform(0.0, 5.0)))
        count = 0
        while sim.now < RUN:
            # Post a note, then immediately re-read own notes.
            insert = parse(f"INSERT INTO notes (author, body) VALUES "
                           f"({author}, 'note')")
            yield from proxy.execute(
                insert, server=proxy.route(insert, session=author))
            count += 1
            read = parse(f"SELECT COUNT(*) FROM notes "
                         f"WHERE author = {author}")
            result = yield from proxy.execute(
                read, server=proxy.route(read, session=author))
            probes += 1
            if result.result.scalar() < count:
                misses += 1
            yield sim.timeout(float(rng.exponential(4.0)))

    for author in range(1, SESSIONS + 1):
        sim.process(session(sim, author, streams.spawn("session", author)))
    sim.run(until=RUN + 1.0)
    return {
        "miss_rate": misses / max(probes, 1),
        "sticky_reads": proxy.sticky_reads,
        "master_busy_s": master.instance.busy_time,
    }


def test_read_your_writes_tradeoff(benchmark, results_dir):
    rows = run_once(benchmark, lambda: {
        window: run_window(window) for window in (0.0, 2.0)})
    lines = ["window-s  stale-miss-rate  sticky-reads  master-busy-s"]
    for window, stats in rows.items():
        lines.append(f"{window:8.1f} {stats['miss_rate']:16.3f} "
                     f"{stats['sticky_reads']:13d} "
                     f"{stats['master_busy_s']:13.2f}")
    publish(results_dir, "ablation_read_your_writes", "\n".join(lines))

    plain, sticky = rows[0.0], rows[2.0]
    # Without stickiness a visible fraction of read-after-write probes
    # see stale data; with it, none do — at the cost of master load.
    assert plain["miss_rate"] > 0.02
    assert sticky["miss_rate"] == 0.0
    assert sticky["sticky_reads"] > 0
    assert sticky["master_busy_s"] > plain["master_busy_s"]

"""Ablation — asynchronous vs semi-synchronous replication.

The paper evaluates only asynchronous replication and argues (§II)
that synchronous schemes trade write latency for freshness.  This
ablation quantifies that trade on our substrate: the latency of a
master write with semi-sync receipt acknowledgement, as the closest
slave moves further away.
"""


from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.metrics import summarize
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator

from conftest import publish, run_once

ZONES = ["us-east-1a", "us-east-1b", "eu-west-1a"]


def write_latencies(semi_sync, slave_zone, writes=200, seed=5):
    sim = Simulator()
    cloud = Cloud(sim, RandomStreams(seed))
    manager = ReplicationManager(sim, cloud, ntp_period=None,
                                 semi_sync=semi_sync)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE t (id INTEGER PRIMARY KEY AUTO_INCREMENT, "
                 "v INTEGER)")
    manager.add_slave(cloud.placement(slave_zone))
    latencies = []

    def writer(sim, master):
        for i in range(writes):
            start = sim.now
            yield from master.perform(f"INSERT INTO t (v) VALUES ({i})")
            latencies.append((sim.now - start) * 1000.0)
            yield sim.timeout(0.5)

    sim.process(writer(sim, master))
    sim.run(until=writes * 2.0)
    return latencies


def test_semisync_write_latency_by_distance(benchmark, results_dir):
    def sweep():
        rows = {}
        for zone in ZONES:
            async_ms = summarize(write_latencies(False, zone)).median
            semi_ms = summarize(write_latencies(True, zone)).median
            rows[zone] = (async_ms, semi_ms)
        return rows

    rows = run_once(benchmark, sweep)
    lines = ["slave zone          async-ms  semisync-ms"]
    for zone, (async_ms, semi_ms) in rows.items():
        lines.append(f"{zone:18s} {async_ms:9.1f} {semi_ms:12.1f}")
    publish(results_dir, "ablation_semisync", "\n".join(lines))

    # Async write latency must be independent of slave distance; the
    # semi-sync penalty must grow with it (~ the slave round trip).
    # A same-zone ack (~32 ms RTT) can hide entirely under the write's
    # own service time, so same-zone semi-sync only needs to not lose.
    async_gap = abs(rows["eu-west-1a"][0] - rows["us-east-1a"][0])
    assert async_gap < 10.0
    assert rows["us-east-1a"][1] >= rows["us-east-1a"][0] - 1.0
    assert rows["eu-west-1a"][1] > rows["eu-west-1a"][0] + 250.0
    assert rows["us-east-1b"][1] < rows["eu-west-1a"][1]

"""FIG2 — End-to-end throughput, 50/50 read/write ratio, data size 300.

Paper's Fig. 2(a,b,c): throughput vs. 50-200 concurrent users for 1-4
slaves, with slaves in the same zone / a different zone / a different
region.  Expected shape: the 1-slave curve knees around 100 users;
from 2 slaves the knee settles near 175 users; adding the 3rd and 4th
slave yields no further throughput because the master saturates.
"""

import pytest

from repro.experiments import LocationConfig, render_throughput_table

from conftest import get_grid, publish, run_once


@pytest.mark.parametrize("location", [LocationConfig.SAME_ZONE,
                                      LocationConfig.DIFFERENT_ZONE,
                                      LocationConfig.DIFFERENT_REGION],
                         ids=lambda loc: loc.value)
def test_fig2_throughput_5050(benchmark, results_dir, location):
    grids = run_once(benchmark, lambda: get_grid("50/50", location))
    table = render_throughput_table(
        grids, f"Fig.2 ({location.value}) end-to-end throughput "
               f"(ops/s), 50/50, data size 300")
    publish(results_dir, f"fig2_{location.value}", table)

    # Shape assertions (who wins, where the ceiling is):
    by_slaves = {g.n_slaves: g for g in grids}
    few, many = min(by_slaves), max(by_slaves)
    # More slaves must raise (or hold) the achievable maximum ...
    assert max(by_slaves[many].throughputs) >= \
        0.95 * max(by_slaves[few].throughputs)
    # ... but the top curves bunch up at the master's ceiling: the best
    # configuration beats the second-largest slave count by < 25 %.
    counts = sorted(by_slaves)
    if len(counts) >= 3:
        second = counts[-2]
        assert max(by_slaves[many].throughputs) <= \
            1.25 * max(by_slaves[second].throughputs)

"""FIG3 — End-to-end throughput, 80/20 read/write ratio, data size 600.

Paper's Fig. 3(a,b,c): throughput vs. 50-450 users for 1-11 slaves.
Expected shape: read capacity scales with the slave count far longer
than at 50/50, until the master's write load caps throughput around
9-10 slaves.
"""

import pytest

from repro.experiments import LocationConfig, render_throughput_table

from conftest import get_grid, publish, run_once


@pytest.mark.parametrize("location", [LocationConfig.SAME_ZONE,
                                      LocationConfig.DIFFERENT_ZONE,
                                      LocationConfig.DIFFERENT_REGION],
                         ids=lambda loc: loc.value)
def test_fig3_throughput_8020(benchmark, results_dir, location):
    grids = run_once(benchmark, lambda: get_grid("80/20", location))
    table = render_throughput_table(
        grids, f"Fig.3 ({location.value}) end-to-end throughput "
               f"(ops/s), 80/20, data size 600")
    publish(results_dir, f"fig3_{location.value}", table)

    by_slaves = {g.n_slaves: g for g in grids}
    few, many = min(by_slaves), max(by_slaves)
    # 80/20 scales much further with slaves than 50/50 does: the
    # largest pool must clearly outperform a single slave.
    assert max(by_slaves[many].throughputs) > \
        2.0 * max(by_slaves[few].throughputs)


def test_fig3_max_exceeds_fig2_max(benchmark, results_dir):
    """The read-heavier mix reaches a higher ceiling (paper: ~65 vs
    ~22 ops/s) because the master's write load per operation is lower."""
    def peaks():
        fig2 = get_grid("50/50", LocationConfig.SAME_ZONE)
        fig3 = get_grid("80/20", LocationConfig.SAME_ZONE)
        return (max(t for g in fig2 for t in g.throughputs),
                max(t for g in fig3 for t in g.throughputs))

    peak_5050, peak_8020 = run_once(benchmark, peaks)
    publish(results_dir, "fig3_vs_fig2_peaks",
            f"peak throughput 50/50: {peak_5050:.1f} ops/s\n"
            f"peak throughput 80/20: {peak_8020:.1f} ops/s\n"
            f"ratio: {peak_8020 / peak_5050:.2f} (paper: ~2.5-3x)")
    assert peak_8020 > 1.6 * peak_5050

"""FIG4 — Clock differences of two instances, with/without NTP.

Paper's Fig. 4 over a 20-minute window:

* NTP once at the beginning: the difference surges linearly from
  ~7 ms to ~50 ms (median 28.23 ms, std 12.31) due to clock drift;
* NTP every second: the difference stays in a 1-8 ms band
  (median 3.30 ms, std 1.19).
"""

import numpy as np

from repro.experiments import render_fig4, run_fig4_clock_sync

from conftest import publish, run_once


def test_fig4_clock_sync(benchmark, results_dir):
    series = run_once(benchmark, run_fig4_clock_sync)
    text = render_fig4(series)
    paper = ("paper reference: sync-once median 28.23 ms (std 12.31), "
             "7 -> 50 ms; every-second median 3.30 ms (std 1.19)")
    publish(results_dir, "fig4_clock_sync", text + "\n" + paper)

    once = np.asarray(series["sync_once"])
    periodic = np.asarray(series["sync_every_second"])
    # The surge: starts small, ends an order of magnitude larger.
    assert once[0] < 12.0 and once[-1] > 40.0
    assert 24.0 < np.median(once) < 33.0
    # Aggressive sync keeps the difference bounded at a few ms.
    assert np.median(periodic) < 8.0
    assert np.median(periodic) < np.median(once) / 3.0


def test_fig4_drift_is_linear(benchmark, results_dir):
    """The sync-once difference grows linearly (clock drift between
    consecutive Amazon synchronizations)."""
    def fit():
        series = run_fig4_clock_sync()
        samples = np.asarray(series["sync_once"])
        t = np.arange(len(samples), dtype=float)
        slope, intercept = np.polyfit(t, samples, 1)
        residual = samples - (slope * t + intercept)
        return slope, float(np.abs(residual).max())

    slope, max_residual = run_once(benchmark, fit)
    publish(results_dir, "fig4_drift_linearity",
            f"drift slope: {slope * 0.1:.4f} ms/s "
            f"(paper pair: ~0.036 ms/s), max linear-fit residual: "
            f"{max_residual:.3f} ms")
    assert slope > 0.0
    assert max_residual < 1.0  # tight linear fit

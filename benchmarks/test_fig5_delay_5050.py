"""FIG5 — Average relative replication delay, 50/50 ratio.

Paper's Fig. 5(a,b,c) (log axis, ~10^0..10^6 ms): with the slave count
fixed, delay surges with workload; the surge reaches several orders of
magnitude at saturation.  Rendered from the same runs as FIG2.
"""

import pytest

from repro.experiments import LocationConfig, render_delay_table

from conftest import get_grid, publish, run_once


@pytest.mark.parametrize("location", [LocationConfig.SAME_ZONE,
                                      LocationConfig.DIFFERENT_ZONE,
                                      LocationConfig.DIFFERENT_REGION],
                         ids=lambda loc: loc.value)
def test_fig5_delay_5050(benchmark, results_dir, location):
    grids = run_once(benchmark, lambda: get_grid("50/50", location))
    table = render_delay_table(
        grids, f"Fig.5 ({location.value}) average relative replication "
               f"delay (ms), 50/50, data size 300")
    publish(results_dir, f"fig5_{location.value}", table)

    # Delay surges with workload: for the single-slave curve, the
    # heaviest load must exceed the lightest by orders of magnitude.
    single = next(g for g in grids if g.n_slaves == min(
        g.n_slaves for g in grids))
    lightest, heaviest = single.delays_ms[0], single.delays_ms[-1]
    assert heaviest > 50.0 * max(lightest, 0.1)


def test_fig5_more_slaves_less_delay(benchmark, results_dir):
    """Paper: "as the number of slaves increases, the replication
    delay decreases" — compare the fewest vs. most slaves at the
    heaviest common workload."""
    def extremes():
        grids = get_grid("50/50", LocationConfig.SAME_ZONE)
        by_slaves = {g.n_slaves: g for g in grids}
        few = by_slaves[min(by_slaves)]
        many = by_slaves[max(by_slaves)]
        return few.delays_ms[-1], many.delays_ms[-1]

    few_delay, many_delay = run_once(benchmark, extremes)
    publish(results_dir, "fig5_slave_scaling",
            f"delay at heaviest 50/50 load: fewest slaves "
            f"{few_delay:.0f} ms vs most slaves {many_delay:.0f} ms")
    assert many_delay < few_delay

"""FIG6 — Average relative replication delay, 80/20 ratio.

Paper's Fig. 6(a,b,c) (~10^-1..10^5 ms): same dynamics as Fig. 5 on
the read-heavy mix.  Rendered from the same runs as FIG3.  The paper's
second observation: placement matters far less than workload — the
half-RTT gap between locations is only 16 vs. 173 ms, while workload
moves the delay by orders of magnitude.
"""

import pytest

from repro.experiments import LocationConfig, render_delay_table

from conftest import get_grid, publish, run_once


@pytest.mark.parametrize("location", [LocationConfig.SAME_ZONE,
                                      LocationConfig.DIFFERENT_ZONE,
                                      LocationConfig.DIFFERENT_REGION],
                         ids=lambda loc: loc.value)
def test_fig6_delay_8020(benchmark, results_dir, location):
    grids = run_once(benchmark, lambda: get_grid("80/20", location))
    table = render_delay_table(
        grids, f"Fig.6 ({location.value}) average relative replication "
               f"delay (ms), 80/20, data size 600")
    publish(results_dir, f"fig6_{location.value}", table)

    largest = next(g for g in grids if g.n_slaves == max(
        g.n_slaves for g in grids))
    # With the full slave pool, light load keeps delay modest while the
    # heaviest load pushes it up by orders of magnitude.
    assert largest.delays_ms[-1] > 10.0 * max(largest.delays_ms[0], 0.1)


def test_fig6_workload_dominates_location(benchmark, results_dir):
    """Paper §IV-B.2: geographic configuration plays a less significant
    role than workload.  The delay span across workloads (same
    placement) must dwarf the span across placements (same workload,
    light load)."""
    def spans():
        same = get_grid("80/20", LocationConfig.SAME_ZONE)
        far = get_grid("80/20", LocationConfig.DIFFERENT_REGION)
        # Use the largest pool: it is the only curve with a genuinely
        # light-load point at every grid scale.
        pool_same = next(g for g in same if g.n_slaves == max(
            g.n_slaves for g in same))
        pool_far = next(g for g in far if g.n_slaves == max(
            g.n_slaves for g in far))
        workload_span = (max(pool_same.delays_ms)
                         / max(min(pool_same.delays_ms), 0.1))
        location_gap = abs(pool_far.delays_ms[0]
                           - pool_same.delays_ms[0])
        return workload_span, location_gap

    workload_span, location_gap = run_once(benchmark, spans)
    publish(results_dir, "fig6_workload_vs_location",
            f"delay span across workloads (same zone, 1 slave): "
            f"{workload_span:.0f}x\n"
            f"delay gap across locations at light load: "
            f"{location_gap:.1f} ms (~one-way RTT difference)")
    assert workload_span > 50.0
    assert location_gap < 1000.0

"""VAR — In-text §IV-A instance performance variation.

"Previous research indicated that the coefficient of variation of CPU
of small instances is 21%" (Schad et al.), and the paper's anecdote:
two "identical" small instances landed on an Intel Xeon E5430 2.66 GHz
vs. an E5507 2.27 GHz, making the *nearer* slave the *slower* one.
"""

from repro.cloud import Cloud, MASTER_PLACEMENT, SMALL
from repro.experiments import (render_instance_variation,
                               run_instance_variation)
from repro.sim import RandomStreams, Simulator

from conftest import publish, run_once


def test_instance_variation_cov(benchmark, results_dir):
    stats = run_once(benchmark,
                     lambda: run_instance_variation(launches=4000))
    publish(results_dir, "instance_variation",
            render_instance_variation(stats))
    assert 0.15 < stats["cov"] < 0.27   # paper cites ~21 %
    assert stats["distinct_models"] >= 3


def test_identical_requests_can_yield_unequal_hardware(benchmark,
                                                       results_dir):
    """Launch a fleet of identical small instances and show the spread
    between the luckiest and unluckiest draw — the effect behind the
    paper's Fig. 2b vs. 2c anomaly."""
    def spread():
        sim = Simulator()
        cloud = Cloud(sim, RandomStreams(77))
        speeds = [cloud.launch(SMALL, MASTER_PLACEMENT).effective_speed
                  for _ in range(40)]
        return min(speeds), max(speeds)

    slowest, fastest = run_once(benchmark, spread)
    publish(results_dir, "instance_spread",
            f"40 identical m1.small launches: slowest {slowest:.2f}, "
            f"fastest {fastest:.2f} (relative speed) — a "
            f"{fastest / slowest:.2f}x gap between 'identical' VMs")
    assert fastest / slowest > 1.2

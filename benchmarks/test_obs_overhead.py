"""Zero-cost-when-disabled guard for the observability layer.

The kernel hot loop (schedule/post/step) gained one ``is not None``
profiler guard per call; instrumentation sites elsewhere pay a
truthiness check or a shared no-op span.  This bench times the same
event-heavy workload on

* a ``Simulator`` subclass whose hot methods are the pre-
  instrumentation bodies (no guards at all) — the baseline, and
* the real kernel with observability left disabled (the default),

and asserts the disabled path stays within noise of the baseline.
Timing uses ``timeit.repeat`` (best-of, so scheduler hiccups inflate
neither side) — wall-clock never leaks into simulation results.
"""

from __future__ import annotations

import heapq
import timeit

from conftest import publish
from repro.sim import Simulator

#: Allowed slowdown of the disabled-observability kernel over the
#: uninstrumented baseline.  The guard is a single attribute check per
#: event, far under timing noise; 1.5x is a loose tripwire that still
#: catches accidental work on the disabled path (a real regression —
#: building span objects, say — lands at several times baseline).
MAX_SLOWDOWN = 1.5

ROUNDS = 5
EVENTS_PER_ROUND = 200_000


class _UntracedSimulator(Simulator):
    """The kernel's hot methods exactly as they were before the
    observability hooks — the honest zero-instrumentation baseline."""

    def _schedule(self, event, delay):
        heapq.heappush(self._heap,
                       (self._now + delay, next(self._counter), event))

    def _post(self, event):
        heapq.heappush(self._heap,
                       (self._now, next(self._counter), event))

    def step(self):
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        if not event._triggered:
            event._triggered = True
            event._ok = True
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value


def _ticker(sim, count):
    for _ in range(count):
        yield sim.timeout(1.0)


def _drive(simulator_cls) -> float:
    sim = simulator_cls()
    sim.process(_ticker(sim, EVENTS_PER_ROUND))
    sim.run()
    return sim.now


def _best_seconds(simulator_cls) -> float:
    timer = timeit.Timer(lambda: _drive(simulator_cls))
    return min(timer.repeat(repeat=ROUNDS, number=1))


def test_disabled_observability_within_noise_of_baseline(results_dir):
    baseline = _best_seconds(_UntracedSimulator)
    disabled = _best_seconds(Simulator)
    slowdown = disabled / baseline
    events_per_s = EVENTS_PER_ROUND / disabled
    text = "\n".join([
        "disabled-observability kernel overhead "
        f"({EVENTS_PER_ROUND} events, best of {ROUNDS})",
        f"baseline (uninstrumented): {baseline * 1e3:9.2f} ms",
        f"disabled observability:    {disabled * 1e3:9.2f} ms",
        f"slowdown:                  {slowdown:9.3f}x "
        f"(guard: <= {MAX_SLOWDOWN}x)",
        f"disabled-path event rate:  {events_per_s:9.0f} events/s",
    ])
    publish(results_dir, "obs_overhead", text)
    assert slowdown <= MAX_SLOWDOWN, (
        f"disabled observability costs {slowdown:.2f}x the "
        f"uninstrumented kernel (limit {MAX_SLOWDOWN}x) — the disabled "
        f"path is supposed to be a single guard per event")

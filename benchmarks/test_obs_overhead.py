"""Zero-cost-when-disabled guard for the observability layer.

The kernel hot loop (schedule/post/step) gained one ``is not None``
profiler guard per call; instrumentation sites elsewhere pay a
truthiness check or a shared no-op span.  This bench times the same
event-heavy workload on

* a ``Simulator`` subclass whose hot methods are the pre-
  instrumentation bodies (no guards at all) — the baseline, and
* the real kernel with observability left disabled (the default),

and asserts the disabled path stays within noise of the baseline.
Timing uses ``timeit.repeat`` (best-of, so scheduler hiccups inflate
neither side) — wall-clock never leaks into simulation results.
"""

from __future__ import annotations

import heapq
import timeit

from conftest import publish
from repro.sim import Simulator

#: Allowed slowdown of the disabled-observability kernel over the
#: uninstrumented baseline.  The guard is a single attribute check per
#: event, far under timing noise; 1.5x is a loose tripwire that still
#: catches accidental work on the disabled path (a real regression —
#: building span objects, say — lands at several times baseline).
MAX_SLOWDOWN = 1.5

ROUNDS = 5
EVENTS_PER_ROUND = 200_000


class _UntracedSimulator(Simulator):
    """The kernel's hot methods exactly as they were before the
    observability hooks — the honest zero-instrumentation baseline."""

    def _schedule(self, event, delay):
        heapq.heappush(self._heap,
                       (self._now + delay, next(self._counter), event))

    def _post(self, event):
        heapq.heappush(self._heap,
                       (self._now, next(self._counter), event))

    def step(self):
        when, _seq, event = heapq.heappop(self._heap)
        self._now = when
        if not event._triggered:
            event._triggered = True
            event._ok = True
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value


def _ticker(sim, count):
    for _ in range(count):
        yield sim.timeout(1.0)


def _drive(simulator_cls) -> float:
    sim = simulator_cls()
    sim.process(_ticker(sim, EVENTS_PER_ROUND))
    sim.run()
    return sim.now


def _best_seconds(simulator_cls) -> float:
    timer = timeit.Timer(lambda: _drive(simulator_cls))
    return min(timer.repeat(repeat=ROUNDS, number=1))


def test_disabled_observability_within_noise_of_baseline(results_dir):
    baseline = _best_seconds(_UntracedSimulator)
    disabled = _best_seconds(Simulator)
    slowdown = disabled / baseline
    events_per_s = EVENTS_PER_ROUND / disabled
    text = "\n".join([
        "disabled-observability kernel overhead "
        f"({EVENTS_PER_ROUND} events, best of {ROUNDS})",
        f"baseline (uninstrumented): {baseline * 1e3:9.2f} ms",
        f"disabled observability:    {disabled * 1e3:9.2f} ms",
        f"slowdown:                  {slowdown:9.3f}x "
        f"(guard: <= {MAX_SLOWDOWN}x)",
        f"disabled-path event rate:  {events_per_s:9.0f} events/s",
    ])
    publish(results_dir, "obs_overhead", text)
    assert slowdown <= MAX_SLOWDOWN, (
        f"disabled observability costs {slowdown:.2f}x the "
        f"uninstrumented kernel (limit {MAX_SLOWDOWN}x) — the disabled "
        f"path is supposed to be a single guard per event")


# --------------------------------------------------------- live plane
# The live telemetry plane added two guards to hot paths:
#
# * every metrics instrument mutator checks ``self._subs`` before
#   fanning out to pipeline subscribers, and
# * every publish site checks ``sim.live.enabled`` before building a
#   stream name / publishing.
#
# Both must stay a single attribute check when the plane is off.

GAUGE_SETS = 200_000


class _PlainGauge:
    """``Gauge.set`` exactly as it was before the ``_subs`` fan-out —
    the zero-subscriber baseline."""

    __slots__ = ("name", "series", "_now")

    def __init__(self, name, now_fn):
        from repro.metrics import TimeSeries
        self.name = name
        self.series = TimeSeries()
        self._now = now_fn

    def set(self, value):
        value = float(value)
        self.series.record(self._now(), value)


def _time_gauge(gauge_cls) -> float:
    def round_():
        gauge = gauge_cls("bench.gauge", lambda: 0.0)
        set_ = gauge.set
        for index in range(GAUGE_SETS):
            set_(index)
    timer = timeit.Timer(round_)
    return min(timer.repeat(repeat=ROUNDS, number=1))


def test_unsubscribed_gauge_within_noise_of_plain(results_dir):
    from repro.obs.metrics import Gauge
    baseline = _time_gauge(_PlainGauge)
    unsubscribed = _time_gauge(Gauge)
    slowdown = unsubscribed / baseline
    text = "\n".join([
        f"no-subscriber gauge overhead ({GAUGE_SETS} sets, "
        f"best of {ROUNDS})",
        f"plain gauge (no _subs):  {baseline * 1e3:9.2f} ms",
        f"real gauge, no subs:     {unsubscribed * 1e3:9.2f} ms",
        f"slowdown:                {slowdown:9.3f}x "
        f"(guard: <= {MAX_SLOWDOWN}x)",
    ])
    publish(results_dir, "obs_gauge_subs", text)
    assert slowdown <= MAX_SLOWDOWN, (
        f"an unsubscribed gauge costs {slowdown:.2f}x a plain one "
        f"(limit {MAX_SLOWDOWN}x) — the no-subscriber path is "
        f"supposed to be a single falsy check per set")


def test_disabled_live_publish_site_is_one_guard(results_dir):
    """A publish site guarded by ``live.enabled`` on the NULL pipeline
    must cost about the same as the bare loop body — the guard is one
    attribute read + branch, and the branch is never taken."""
    from repro.obs.live.streams import NULL_LIVE

    count = 500_000

    def bare():
        total = 0.0
        for index in range(count):
            total += index * 0.5
        return total

    def guarded():
        live = NULL_LIVE
        total = 0.0
        for index in range(count):
            total += index * 0.5
            if live.enabled:
                live.publish("bench.stream", total)
        return total

    baseline = min(timeit.Timer(bare).repeat(repeat=ROUNDS, number=1))
    disabled = min(timeit.Timer(guarded).repeat(repeat=ROUNDS,
                                                number=1))
    slowdown = disabled / baseline
    # The loop body here is tiny (one multiply-add), so the guard is a
    # much larger *fraction* of it than of any real publish site; 2x
    # still catches a NULL pipeline that grew real work.
    limit = 2.0
    text = "\n".join([
        f"disabled live-publish guard ({count} iterations, "
        f"best of {ROUNDS})",
        f"bare loop:        {baseline * 1e3:9.2f} ms",
        f"guarded loop:     {disabled * 1e3:9.2f} ms",
        f"slowdown:         {slowdown:9.3f}x (guard: <= {limit}x)",
    ])
    publish(results_dir, "obs_live_guard", text)
    assert not NULL_LIVE.enabled
    assert slowdown <= limit, (
        f"the disabled live-publish guard costs {slowdown:.2f}x the "
        f"bare loop (limit {limit}x) — NULL_LIVE is supposed to make "
        f"the guard a single attribute check")

"""RTT — In-text §IV-B.2 characterization.

"The results suggest an average of 16, 21, and 173 milliseconds 1/2
round-trip time for the same zone, different zones and different
regions, respectively" (ping once a second for 20 minutes).
"""

import pytest

from repro.experiments import render_rtt_table, run_rtt_characterization

from conftest import publish, run_once


def test_rtt_characterization(benchmark, results_dir):
    half_rtts = run_once(benchmark,
                         lambda: run_rtt_characterization(probes=1200))
    publish(results_dir, "rtt_characterization",
            render_rtt_table(half_rtts))
    assert half_rtts["same_zone"] == pytest.approx(16.0, abs=2.0)
    assert half_rtts["different_zone"] == pytest.approx(21.0, abs=2.0)
    assert half_rtts["different_region"] == pytest.approx(173.0, abs=7.0)
    # Ordering: same zone < different zone << different region.
    assert half_rtts["same_zone"] < half_rtts["different_zone"] \
        < half_rtts["different_region"]

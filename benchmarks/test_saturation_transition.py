"""SAT — In-text §IV-A saturation-transition narrative.

"The observed saturation point ... appearing in slaves at the
beginning, moves along with an increasing workload when more and more
slaves are synchronized to the master.  But eventually, the saturation
will transit from slaves to the master where the scalability limit is
achieved."  At 50/50 the master is the saturated resource from the 3rd
slave; adding slaves past that point buys no throughput.
"""

from repro.experiments import (LocationConfig, render_saturation_schedule,
                               saturation_point)

from conftest import get_grid, publish, run_once


def test_saturation_transition_5050(benchmark, results_dir):
    grids = run_once(benchmark,
                     lambda: get_grid("50/50", LocationConfig.SAME_ZONE))
    schedule = render_saturation_schedule(grids)
    publish(results_dir, "saturation_5050",
            "50/50 saturation schedule (same zone)\n" + schedule)

    by_slaves = {g.n_slaves: g for g in grids}
    counts = sorted(by_slaves)
    # The saturated resource at the heaviest load transitions from the
    # slaves (few replicas) to the master (many replicas).
    few_heaviest = by_slaves[counts[0]].results[-1]
    many_heaviest = by_slaves[counts[-1]].results[-1]
    assert few_heaviest.max_slave_cpu >= 0.9
    assert many_heaviest.master_cpu >= 0.9
    # Once the master saturates, extra slaves are over-provisioned:
    # their CPUs sit well below the master's.
    assert many_heaviest.max_slave_cpu < many_heaviest.master_cpu + 0.05


def test_saturation_knee_moves_right_with_slaves(benchmark, results_dir):
    """The 1-slave knee (~100 users in the paper) sits at a lighter
    workload than the many-slave knee (~175 users)."""
    def knees():
        grids = get_grid("50/50", LocationConfig.SAME_ZONE)
        by_slaves = {g.n_slaves: g for g in grids}
        few = saturation_point(by_slaves[min(by_slaves)])
        many = saturation_point(by_slaves[max(by_slaves)])
        return few, many

    few_knee, many_knee = run_once(benchmark, knees)
    publish(results_dir, "saturation_knees",
            f"50/50 saturation point: fewest slaves at {few_knee} users, "
            f"most slaves at {many_knee} users "
            f"(paper: 100 -> 175 users)")
    assert few_knee is not None
    assert many_knee is None or many_knee >= few_knee

#!/usr/bin/env python3
"""Clock synchronization study (the paper's Fig. 4, §IV-B.1).

Measuring replication delay from timestamps committed on two machines
only works if you control their clocks.  This example reproduces the
paper's measurement: two instances, 20 minutes, sampling the
inter-instance clock difference under three policies — no NTP at all,
NTP once at the beginning, NTP every second — and prints an ASCII
rendition of Fig. 4.

Run:  python examples/clock_sync_study.py
"""

import numpy as np

from repro.cloud import Cloud, MASTER_PLACEMENT, SMALL
from repro.sim import RandomStreams, Simulator

DURATION = 1200.0       # 20 minutes
SAMPLE_PERIOD = 10.0


def run_policy(period, label):
    """One 20-minute run; returns |difference| samples in ms."""
    sim = Simulator()
    streams = RandomStreams(seed=4)
    cloud = Cloud(sim, streams)
    # The paper's anecdotal pair: ~7 ms apart at boot, ~36 ppm relative
    # drift.
    a = cloud.launch(SMALL, MASTER_PLACEMENT, name="a",
                     offset=0.004, drift_rate=18e-6)
    b = cloud.launch(SMALL, MASTER_PLACEMENT, name="b",
                     offset=-0.003, drift_rate=-18e-6)
    if period != "none":
        cloud.start_ntp(a, period=period)
        cloud.start_ntp(b, period=period)
    samples = []

    def sampler(sim):
        while True:
            yield sim.timeout(SAMPLE_PERIOD)
            samples.append(abs(a.clock.difference(b.clock)) * 1000.0)

    sim.process(sampler(sim))
    sim.run(until=DURATION)
    return label, samples


def sparkline(samples, width=60, ceiling=60.0):
    blocks = " .:-=+*#%@"
    step = max(1, len(samples) // width)
    chars = []
    for index in range(0, len(samples), step):
        value = min(samples[index], ceiling)
        chars.append(blocks[int(value / ceiling * (len(blocks) - 1))])
    return "".join(chars)


def main():
    runs = [
        run_policy("none", "no NTP at all"),
        run_policy(None, "NTP once at beginning"),
        run_policy(1.0, "NTP every second"),
    ]
    print(f"inter-instance |clock difference| over "
          f"{DURATION / 60:.0f} minutes "
          f"(sample every {SAMPLE_PERIOD:.0f} s)\n")
    for label, samples in runs:
        arr = np.asarray(samples)
        print(f"{label:24s} median {np.median(arr):6.2f} ms  "
              f"std {np.std(arr):5.2f}  "
              f"first {arr[0]:6.2f}  last {arr[-1]:6.2f}")
        print(f"{'':24s} [{sparkline(samples)}]")
    print("\npaper reference: sync-once 7 -> 50 ms "
          "(median 28.23, std 12.31); every-second 1-8 ms band "
          "(median 3.30, std 1.19)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Delay waterfall: *where* does replication staleness come from?

Figs. 5/6 of the paper report one number per cell — the average
relative replication delay — and the §IV-A narrative explains it by
hand ("the slave CPUs saturate", "the master write path is the
wall").  This example records one 50/50 cell with full observability
and lets the analysis plane do the explaining:

* the per-slave **staleness waterfall** splits every replicated
  event's commit-to-applied delay into binlog-wait / ship / relay-wait
  / apply — the decomposition behind the Fig. 5 curve;
* the waterfall is **reconciled** against the paper's own heartbeat
  estimator (same censoring, same windows, same 5 % trim);
* the **bottleneck attributor** names the saturated resource with the
  evidence, the §IV-A diagnosis as a computed verdict.

Run:  python examples/delay_waterfall.py
(≈ 25 simulated minutes in a few wall seconds; same-seed runs print
byte-identical reports.)
"""

from repro.experiments import (LocationConfig, PAPER_50_50,
                               run_experiment)
from repro.experiments.figures import _PROFILES
from repro.obs import Observability
from repro.obs.analyze import (analyze_trace, from_session,
                               render_analysis_text)


def main():
    profile = _PROFILES["quick"]
    config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=2,
                         n_users=150, phases=profile.phases, seed=0,
                         baseline_duration=profile.baseline_duration)
    print(f"running observed cell: {config.label} ...")
    observe = Observability(monitor_period=5.0)
    result = run_experiment(config, observe=observe)

    print(f"throughput {result.throughput:.1f} ops/s, relative delay "
          f"{result.relative_delay_ms:.1f} ms, runner verdict: "
          f"{result.bottleneck}")
    print()
    report = analyze_trace(from_session(observe))
    print(render_analysis_text(report))


if __name__ == "__main__":
    main()

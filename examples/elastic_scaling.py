#!/usr/bin/env python3
"""Elastic scaling: the point of the application-managed approach.

The paper's motivation for application-managed replication is that
"the application can have the full control in dynamically allocating
and configuring the physical resources of the database tier as
needed."  This example exercises exactly that: a workload ramp
saturates a one-slave tier; the application notices slave CPU pressure
and relative delay climbing, and live-attaches slaves (snapshot +
binlog tail) until the tier recovers.

Run:  python examples/elastic_scaling.py
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import (ClusterMonitor, ConnectionPool,
                               HeartbeatPlugin, ReplicationManager,
                               collect_delays, detect_pressure)
from repro.metrics import trimmed_mean
from repro.sim import RandomStreams, Simulator
from repro.workloads.cloudstone import (LoadGenerator, MIX_80_20, Phases,
                                        load_initial_data)

MAX_SLAVES = 10
CHECK_PERIOD = 30.0
BACKLOG_THRESHOLD = 20          # relay events waiting


def main():
    sim = Simulator()
    streams = RandomStreams(seed=13)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud)
    master = manager.create_master(MASTER_PLACEMENT)
    state = load_initial_data(master, data_size=150,
                              rng=streams.stream("loader"))
    heartbeat = HeartbeatPlugin(sim, master)
    heartbeat.install()
    manager.add_slave(MASTER_PLACEMENT)
    heartbeat.start()

    # Least-outstanding balancing — the paper's "smart load balancer"
    # suggestion.  Round-robin would pin the slow lottery draws at
    # saturation no matter how many slaves are added.
    proxy = manager.build_proxy(MASTER_PLACEMENT,
                                policy="least_outstanding")
    pool = ConnectionPool(sim, max_active=256)
    phases = Phases(ramp_up=120.0, steady=480.0, ramp_down=30.0)
    generator = LoadGenerator(sim, proxy, pool, MIX_80_20, state, streams,
                              n_users=250, think_time_mean=7.0,
                              phases=phases)
    generator.start()

    monitor = ClusterMonitor(sim, manager, period=CHECK_PERIOD)

    def autoscaler(sim):
        """The 'application' reacting to database-tier pressure."""
        while sim.now < phases.steady_end:
            yield sim.timeout(CHECK_PERIOD)
            sample = monitor.sample_now()
            signals = detect_pressure(
                sample, backlog_threshold=BACKLOG_THRESHOLD)
            tput = generator.completions.rate_in(sim.now - CHECK_PERIOD,
                                                 sim.now)
            print(f"t={sim.now:6.0f}s slaves={len(manager.slaves)} "
                  f"throughput={tput:5.1f} ops/s "
                  f"worst-backlog={sample.worst_backlog:4d} "
                  f"master-cpu={sample.master_cpu_utilization:.2f}")
            if signals.scale_out_helps \
                    and len(manager.slaves) < MAX_SLAVES:
                slave = manager.add_slave(MASTER_PLACEMENT)
                proxy.add_slave(slave)
                print(f"t={sim.now:6.0f}s  -> attached {slave.name} "
                      f"(snapshot at binlog position "
                      f"{slave.start_position})")
            elif signals.master_overloaded:
                print(f"t={sim.now:6.0f}s  -> master saturated: more "
                      f"slaves will not help (the paper's limit)")

    sim.process(autoscaler(sim))
    sim.run(until=phases.total + 120.0)
    heartbeat.stop()
    sim.run(until=sim.now + 300.0)

    print(f"\nfinal tier size: {len(manager.slaves)} slaves")
    print(f"steady-stage throughput: "
          f"{generator.steady_throughput():.1f} ops/s")
    for slave in manager.slaves:
        loaded = [s.delay_ms for s in collect_delays(
            heartbeat, slave, window_start=phases.steady_end - 60.0,
            window_end=phases.steady_end)]
        if loaded:
            print(f"  {slave.name} (speed "
                  f"{slave.instance.effective_speed:.2f}): end-of-run "
                  f"replication delay ~{trimmed_mean(loaded):.1f} ms")
    print("\nNote: every slave applies the FULL write stream, so a "
          "slow lottery draw\n(speed ~0.5) lags no matter how many "
          "siblings exist — the paper's advice to\n'validate instance "
          "performance before deploying' is about exactly these.")

    def verify(sim, manager):
        ok = yield from manager.wait_until_caught_up(timeout=300.0)
        print(f"\ncaught up: {ok}; consistent: "
              f"{manager.verify_consistency()}")

    sim.process(verify(sim, manager))
    sim.run(until=sim.now + 400.0)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Failover drill: losing the master of an application-managed tier.

The managed offerings the paper contrasts against handle failover
behind the scenes; an application managing its own replicas owns the
procedure — and, with asynchronous replication, owns the data-loss
window too (§II: "once the updated replica goes offline before
duplicating data, data loss may occur").

The drill: a master streams writes to a near slave and a cross-region
slave, dies mid-stream, the application promotes the most up-to-date
slave, re-syncs the survivor, and counts exactly which committed writes
the failover lost.

Run:  python examples/failover_drill.py
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.db import DatabaseError
from repro.replication import (ReplicationManager, best_candidate,
                               fail_master, promote)
from repro.sim import RandomStreams, Simulator


def main():
    sim = Simulator()
    streams = RandomStreams(seed=17)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE orders (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, amount INTEGER)")
    # Both slaves sit an ocean away: every committed write spends
    # ~173 ms in flight — the asynchronous data-loss window.
    near = manager.add_slave(cloud.placement("eu-west-1a"), name="eu")
    far = manager.add_slave(cloud.placement("ap-northeast-1a"), name="ap")
    proxy = manager.build_proxy(MASTER_PLACEMENT)

    acknowledged = []

    def client(sim, master):
        for i in range(500):
            try:
                yield from master.perform(
                    f"INSERT INTO orders (amount) VALUES ({i})")
            except DatabaseError:
                print(f"t={sim.now:6.3f}s client sees the master down "
                      f"after {len(acknowledged)} acknowledged writes")
                return
            acknowledged.append(i)

    sim.process(client(sim, master))

    def operator(sim):
        yield sim.timeout(2.0)
        print(f"t={sim.now:6.3f}s MASTER FAILS "
              f"(binlog head = {master.binlog.head_position})")
        dead = fail_master(manager)
        candidate = best_candidate(manager)
        print(f"t={sim.now:6.3f}s promoting {candidate.name} "
              f"(received {candidate.received_position} / "
              f"{dead.binlog.head_position} events; "
              f"{far.name} had {far.received_position})")
        new_master = yield from promote(manager)
        proxy.set_master(new_master)
        proxy.slaves = list(manager.slaves)
        print(f"t={sim.now:6.3f}s promoted; surviving slaves: "
              f"{[s.name for s in manager.slaves]}")
        surviving_orders = new_master.admin(
            "SELECT COUNT(*) FROM orders").result.scalar()
        lost_events = dead.binlog.head_position \
            - candidate.received_position
        print(f"\nwrites committed on the dead master: "
              f"{dead.binlog.head_position - 2} (+2 setup DDL events)")
        print(f"orders surviving on the new master: {surviving_orders}")
        print(f"binlog events LOST to asynchronous replication: "
              f"{lost_events} (committed, never left the master)")
        # Service resumes on the new master.
        yield from new_master.perform(
            "INSERT INTO orders (amount) VALUES (9999)")
        yield sim.timeout(5.0)
        print(f"\nservice resumed; cluster caught up: "
              f"{manager.all_caught_up()}, consistent: "
              f"{manager.verify_consistency()}")

    sim.process(operator(sim))
    sim.run(until=60.0)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Geo-replication: one slave per region, measure what distance costs.

The paper's §IV-B.2 conclusion: "geographic replication would be
applicable in the cloud as long as workload characteristics can be well
managed" — placement adds only a fixed one-way latency to the
replication delay, while workload moves it by orders of magnitude.

This example builds a master in us-east-1a with slaves in the same
zone, a different zone and three different regions, measures the ping
RTT to each, then compares per-slave replication delay under a light
and a heavy write load.

Run:  python examples/geo_replication.py
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import (HeartbeatPlugin, ReplicationManager,
                               collect_delays)
from repro.metrics import trimmed_mean
from repro.sim import RandomStreams, Simulator

SLAVE_ZONES = ["us-east-1a", "us-east-1b", "eu-west-1a",
               "ap-southeast-1a", "ap-northeast-1a"]


def main():
    sim = Simulator()
    streams = RandomStreams(seed=7)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE posts (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, body TEXT)")
    heartbeat = HeartbeatPlugin(sim, master, interval=0.5)
    heartbeat.install()
    slaves = {zone: manager.add_slave(cloud.placement(zone),
                                      name=f"slave-{zone}")
              for zone in SLAVE_ZONES}
    heartbeat.start()

    print("ping from the master's zone (1/2 RTT, median of 100 probes):")
    import numpy as np
    for zone, slave in slaves.items():
        probes = [cloud.network.ping(MASTER_PLACEMENT, slave.placement) / 2
                  for _ in range(100)]
        print(f"  {zone:18s} {float(np.median(probes)):7.1f} ms")

    # Light write load, then heavy write load.
    def writer(sim, master, period, count):
        for i in range(count):
            yield from master.perform(
                f"INSERT INTO posts (body) VALUES ('post {i}')")
            yield sim.timeout(period)

    print("\nphase 1: light writes (2/s) for 60 s")
    sim.process(writer(sim, master, period=0.5, count=120))
    sim.run(until=90.0)
    light_window = (0.0, 90.0)

    print("phase 2: heavy writes (40/s) for 60 s")
    sim.process(writer(sim, master, period=0.025, count=2400))
    sim.run(until=220.0)
    heavy_window = (90.0, 160.0)
    heartbeat.stop()
    sim.run(until=400.0)  # drain

    print(f"\n{'slave':26s} {'light-load delay':>17s} "
          f"{'heavy-load delay':>17s}")
    for zone, slave in slaves.items():
        light = [s.delay_ms for s in collect_delays(
            heartbeat, slave, *light_window)]
        heavy = [s.delay_ms for s in collect_delays(
            heartbeat, slave, *heavy_window)]
        print(f"  {zone:24s} {trimmed_mean(light):12.1f} ms "
              f"{trimmed_mean(heavy):14.1f} ms")
    print("\nNote the pattern the paper reports: distance sets the floor "
          "(~one-way latency);\nwrite pressure, not distance, drives the "
          "delay growth.")


if __name__ == "__main__":
    main()

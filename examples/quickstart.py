#!/usr/bin/env python3
"""Quickstart: build a replicated database tier and drive it.

Builds the paper's deployment in miniature — one master and two slaves
on simulated EC2 small instances, the Cloudstone schema pre-loaded, a
read/write-splitting proxy and a connection pool — runs a short 50/50
workload, and reports throughput, replication delay and convergence.

Run:  python examples/quickstart.py
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import (ConnectionPool, HeartbeatPlugin,
                               ReplicationManager, collect_delays)
from repro.sim import RandomStreams, Simulator
from repro.workloads.cloudstone import (LoadGenerator, MIX_50_50, Phases,
                                        load_initial_data)


def main():
    sim = Simulator()
    streams = RandomStreams(seed=42)
    cloud = Cloud(sim, streams)

    # --- the application-managed database tier --------------------------
    manager = ReplicationManager(sim, cloud)
    master = manager.create_master(MASTER_PLACEMENT)
    state = load_initial_data(master, data_size=100,
                              rng=streams.stream("loader"))
    heartbeat = HeartbeatPlugin(sim, master, interval=1.0)
    heartbeat.install()
    slaves = [manager.add_slave(MASTER_PLACEMENT) for _ in range(2)]
    heartbeat.start()
    print(f"cluster: master={master.name} "
          f"({master.instance.cpu_model.name}), "
          f"slaves={[s.name for s in slaves]}")

    # --- the client stack ------------------------------------------------
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    pool = ConnectionPool(sim, max_active=32)
    phases = Phases(ramp_up=30.0, steady=120.0, ramp_down=15.0)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state, streams,
                              n_users=40, think_time_mean=5.0,
                              phases=phases)
    generator.start()

    # --- run and report ----------------------------------------------------
    sim.run(until=phases.total + 60.0)  # extra time to drain replication
    heartbeat.stop()

    print(f"\nsteady-stage throughput: "
          f"{generator.steady_throughput():.1f} operations/second")
    print(f"achieved read fraction:  "
          f"{generator.steady_read_write_ratio():.2f} (target 0.50)")
    print(f"mean operation latency:  "
          f"{generator.steady_mean_latency() * 1000:.0f} ms")
    print(f"operations by type:      {dict(generator.op_counts)}")

    for slave in slaves:
        samples = collect_delays(heartbeat, slave)
        if samples:
            median = sorted(s.delay_ms for s in samples)[len(samples) // 2]
            print(f"{slave.name}: {len(samples)} heartbeats, "
                  f"median raw replication delay {median:.2f} ms")

    def verify(sim, manager):
        caught_up = yield from manager.wait_until_caught_up(timeout=120.0)
        print(f"\nall slaves caught up: {caught_up}")
        print(f"replicas consistent with master: "
              f"{manager.verify_consistency()}")

    sim.process(verify(sim, manager))
    sim.run(until=sim.now + 150.0)


if __name__ == "__main__":
    main()

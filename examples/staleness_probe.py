#!/usr/bin/env python3
"""Staleness probe: what eventual consistency looks like to a client.

The paper (§II) notes that with asynchronous master-slave replication
"read transactions on database replicas are not expected to return
consistent results all the time. However, it is guaranteed that the
database replicas will be eventually consistent."

This example makes that concrete: a client writes a row through the
proxy, then immediately polls a slave until the row appears — the
poll count and elapsed time are the visible staleness window.  It
probes a same-zone slave and a cross-region slave, idle and under
write pressure.

Run:  python examples/staleness_probe.py
"""

from repro.cloud import Cloud, MASTER_PLACEMENT
from repro.replication import ReplicationManager
from repro.sim import RandomStreams, Simulator


def probe(sim, proxy, master, slave, tag, results):
    """Write a marker row, then poll the slave until it shows up."""
    yield from proxy.execute(
        f"INSERT INTO markers (tag) VALUES ('{tag}')", server=master)
    written_at = sim.now
    polls = 0
    while True:
        result = yield from proxy.execute(
            f"SELECT COUNT(*) FROM markers WHERE tag = '{tag}'",
            server=slave)
        polls += 1
        if result.result.scalar() > 0:
            break
    results.append((slave.name, tag, sim.now - written_at, polls))


def main():
    sim = Simulator()
    streams = RandomStreams(seed=99)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud)
    master = manager.create_master(MASTER_PLACEMENT)
    master.admin("CREATE TABLE markers (id INTEGER PRIMARY KEY "
                 "AUTO_INCREMENT, tag VARCHAR(64))")
    master.admin("CREATE INDEX idx_markers_tag ON markers (tag)")
    near = manager.add_slave(MASTER_PLACEMENT, name="near-slave")
    far = manager.add_slave(cloud.placement("ap-northeast-1a"),
                            name="far-slave")
    proxy = manager.build_proxy(MASTER_PLACEMENT)
    results = []

    # Idle probes.
    def idle_probes(sim):
        yield from probe(sim, proxy, master, near, "idle-near", results)
        yield from probe(sim, proxy, master, far, "idle-far", results)

    sim.process(idle_probes(sim))
    sim.run(until=30.0)

    # Now under pressure: a writer floods the master while readers
    # hammer each slave — the slave CPU contention that starves the
    # single SQL apply thread (the paper's Figs. 5/6 mechanism).
    def flood(sim, master):
        for i in range(3000):
            yield from master.perform(
                f"INSERT INTO markers (tag) VALUES ('noise-{i}')")

    def read_pressure(sim, slave, deadline):
        while sim.now < deadline:
            # A full scan: expensive, and it grows with the flood.
            yield from proxy.execute("SELECT COUNT(*) FROM markers",
                                     server=slave)

    def loaded_probes(sim):
        yield sim.timeout(20.0)  # let the backlog build
        yield from probe(sim, proxy, master, near, "loaded-near", results)
        yield from probe(sim, proxy, master, far, "loaded-far", results)

    sim.process(flood(sim, master))
    for slave in (near, far):
        for _ in range(2):
            sim.process(read_pressure(sim, slave, deadline=400.0))
    sim.process(loaded_probes(sim))
    sim.run(until=900.0)

    print(f"{'slave':12s} {'scenario':13s} {'staleness window':>17s} "
          f"{'read polls':>11s}")
    for name, tag, window, polls in results:
        print(f"{name:12s} {tag:13s} {window * 1000:13.1f} ms "
              f"{polls:11d}")
    print("\nIdle, the window is roughly the one-way replication latency "
          "plus one apply;\nunder write pressure the relay-log backlog "
          "stretches it by orders of magnitude.")


if __name__ == "__main__":
    main()

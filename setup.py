"""Legacy setup shim: this offline environment has no `wheel` package, so
`pip install -e .` (which builds an editable wheel) cannot run.  `python
setup.py develop` provides the equivalent editable install."""
from setuptools import setup

setup()

"""Reproduction of "Application-Managed Database Replication on
Virtualized Cloud Environments" (Zhao, Sakr, Fekete, Wada, Liu —
ICDE 2012).

The package layers:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.cloud` — simulated EC2 (regions, instances with hardware
  lottery, drifting clocks, NTP, the latency model);
* :mod:`repro.sql` / :mod:`repro.db` — a MySQL-like SQL engine with a
  statement-based binlog;
* :mod:`repro.replication` — the master-slave middleware (dump/IO/SQL
  threads, proxy, pool, heartbeat measurement, the application-managed
  cluster controller);
* :mod:`repro.workloads` — the customized Cloudstone benchmark;
* :mod:`repro.experiments` — configs, runner, and generators for every
  figure in the paper.

Quickstart::

    from repro.experiments import (LocationConfig, PAPER_50_50,
                                   run_experiment)
    from repro.workloads.cloudstone import Phases

    config = PAPER_50_50(LocationConfig.SAME_ZONE, n_slaves=2,
                         n_users=100, phases=Phases().scaled(0.1))
    result = run_experiment(config)
    print(result.throughput, result.relative_delay_ms)
"""

from . import cloud, db, experiments, metrics, replication, sim, sql, workloads

__version__ = "1.0.0"

__all__ = ["sim", "cloud", "sql", "db", "replication", "workloads",
           "experiments", "metrics", "__version__"]

"""simlint — static analysis for the reproduction's own invariants.

The reproduction's results are only trustworthy if three properties
hold everywhere in ``src/repro/``:

* **Determinism** (DET rules): every stochastic draw flows through
  :class:`repro.sim.rng.RandomStreams`; nothing reads wall-clock time
  or iterates containers in memory-address order.
* **Sim-safety** (SIM rules): simulation processes — generators that
  yield kernel :class:`~repro.sim.kernel.Event` objects — never block
  on real time or real I/O, never yield non-events, and never trigger
  the same event twice.
* **SQL validity** (SQL rules): every SQL string literal parses with
  the in-repo :mod:`repro.sql` parser and references tables and
  columns that actually exist in the Cloudstone schema.
* **Lifecycle pairing** (FLW rules): flow-sensitive proofs over a
  per-function CFG (:mod:`repro.analysis.flow`) that pool
  connections, resource claims and transactions are released /
  committed on *every* path, exception edges included.
* **Yield-point atomicity** (RACE rules, :mod:`repro.analysis.race`):
  interprocedural proofs that no process acts on shared state it read
  before a preemption point — ``python -m repro racecheck``.
* **Determinism taint** (TNT rules, :mod:`repro.analysis.taint`):
  interprocedural source→sink proofs that no nondeterministic value
  (wall clock, entropy, environment, ``id()``, set iteration order)
  reaches event scheduling, telemetry, or artifacts —
  ``python -m repro taintcheck``; purity summaries feed back into the
  FLW/RACE rules under ``python -m repro check``.

Nothing in the runtime enforces these invariants, so refactors could
silently break reproducibility; ``python -m repro lint`` (and the
``tests/analysis/test_lint_clean.py`` gate) make them checkable.
"""

from .baseline import (filter_new, fingerprint, load_baseline,
                       render_baseline, write_baseline)
from .config import DEFAULT_CONFIG, LintConfig, load_config
from .findings import Finding
from .runner import (LintStats, SourceCache, check_paths,
                     format_findings_json, format_findings_text,
                     lint_file, lint_paths, lint_source,
                     racecheck_paths, taintcheck_paths)
from .sarif import format_findings_sarif, format_merged_sarif
from .visitor import LintContext, Rule, all_rules

__all__ = [
    "Finding",
    "LintConfig",
    "DEFAULT_CONFIG",
    "load_config",
    "Rule",
    "LintContext",
    "LintStats",
    "SourceCache",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "racecheck_paths",
    "taintcheck_paths",
    "check_paths",
    "format_findings_text",
    "format_findings_json",
    "format_findings_sarif",
    "format_merged_sarif",
    "fingerprint",
    "render_baseline",
    "write_baseline",
    "load_baseline",
    "filter_new",
]

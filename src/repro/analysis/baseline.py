"""Finding baselines: freeze the present, fail only on the new.

A baseline is a canonical-JSON snapshot of a run's findings, keyed by
a stable fingerprint (``sha256(path::rule::message)`` truncated) with
an occurrence count.  ``--write-baseline`` writes it; ``--baseline``
filters the current run down to findings *not* covered by the
snapshot, so CI can gate on regressions while a cleanup of
pre-existing findings proceeds at its own pace.

Properties the format guarantees:

* **Byte-identical round-trip** — the document is serialized with
  sorted keys, fixed indentation and a trailing newline, so writing
  the same findings twice produces the same bytes (CI asserts this).
* **Line-move tolerance is deliberate and bounded** — the fingerprint
  hashes the *message*, which for most rules embeds the line number.
  Moving code therefore invalidates its baseline entries; that is the
  honest choice (a finding that moved was touched and deserves a
  fresh look) and keeps fingerprints collision-free without
  context-diff machinery.
* **Count-aware** — if a file had two identical findings and gains a
  third, the third is new; the first two stay frozen.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional, Sequence

from .findings import Finding

__all__ = ["BASELINE_VERSION", "fingerprint", "render_baseline",
           "write_baseline", "load_baseline", "filter_new"]

BASELINE_VERSION = 1


def _canonical_path(path: str) -> str:
    """Repo-relative forward-slash path, so baselines travel between
    machines and CI runners."""
    normalized = path.replace(os.sep, "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    if os.path.isabs(normalized):
        relative = os.path.relpath(normalized).replace(os.sep, "/")
        if not relative.startswith(".."):
            return relative
    return normalized


def fingerprint(finding: Finding) -> str:
    """Stable 16-hex-digit identity of one finding."""
    key = (f"{_canonical_path(finding.path)}::{finding.rule_id}"
           f"::{finding.message}")
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def render_baseline(findings: Sequence[Finding], tool: str) -> str:
    """The canonical baseline document for ``findings`` (a JSON
    string ending in exactly one newline)."""
    entries: dict = {}
    for finding in findings:
        print_ = fingerprint(finding)
        entry = entries.get(print_)
        if entry is None:
            entries[print_] = {
                "count": 1,
                "rule": finding.rule_id,
                "path": _canonical_path(finding.path),
            }
        else:
            entry["count"] += 1
    document = {
        "tool": tool,
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str, findings: Sequence[Finding],
                   tool: str) -> None:
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(render_baseline(findings, tool))


def load_baseline(path: str) -> dict:
    """``fingerprint -> allowed count`` from a baseline file.

    Raises ``ValueError`` on a malformed or wrong-version document —
    a silently ignored baseline would make CI pass vacuously.
    """
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or \
            document.get("version") != BASELINE_VERSION or \
            not isinstance(document.get("findings"), dict):
        raise ValueError(
            f"not a v{BASELINE_VERSION} baseline file: {path}")
    return {print_: int(entry.get("count", 0))
            for print_, entry in document["findings"].items()}


def filter_new(findings: Sequence[Finding],
               baseline: Optional[dict]) -> list:
    """Findings not covered by ``baseline`` (all of them when it is
    None).  With k occurrences allowed and n > k present, the last
    n − k in sorted order are the new ones."""
    if baseline is None:
        return list(findings)
    remaining = dict(baseline)
    fresh: list = []
    for finding in sorted(findings):
        print_ = fingerprint(finding)
        allowed = remaining.get(print_, 0)
        if allowed > 0:
            remaining[print_] = allowed - 1
        else:
            fresh.append(finding)
    return fresh

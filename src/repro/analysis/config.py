"""Linter configuration, read from ``pyproject.toml [tool.simlint]``.

Recognized keys (all optional)::

    [tool.simlint]
    paths = ["src/repro"]          # what `repro lint` checks by default
    select = ["DET", "SIM"]        # only these rules / families
    ignore = ["SQL003"]            # drop these rules / families
    sql-exclude = ["src/repro/sql"]  # paths exempt from SQL rules
    per-path-ignore = ["tests:SIM003", "benchmarks:DET"]

``select``/``ignore`` entries may be full rule ids (``DET001``) or
family prefixes (``DET``).  ``per-path-ignore`` entries are
``"<path-prefix>:<rule-or-family>"`` — the rule is dropped for every
file at or under that prefix, so directories of test fixtures that
intentionally violate a rule stay suppressible without inline
comments.  Python 3.10 has no :mod:`tomllib`, so a minimal fallback
parser handles the small TOML subset above.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Iterable, Optional

try:
    import tomllib  # Python 3.11+
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None

__all__ = ["LintConfig", "DEFAULT_CONFIG", "load_config",
           "parse_simlint_table"]


@dataclass(frozen=True)
class LintConfig:
    """Which paths to lint and which rules to run."""

    paths: tuple[str, ...] = ("src/repro",)
    select: tuple[str, ...] = ()   # empty = all rules
    ignore: tuple[str, ...] = ()
    sql_exclude: tuple[str, ...] = ("src/repro/sql",)
    #: ``(path_prefix, rule_or_family)`` pairs; the rule is dropped for
    #: files at or under the prefix.
    per_path_ignore: tuple[tuple[str, str], ...] = ()

    def rule_enabled(self, rule_id: str) -> bool:
        if self.select and not _matches(rule_id, self.select):
            return False
        return not _matches(rule_id, self.ignore)

    def rule_enabled_at(self, rule_id: str, path: str) -> bool:
        """Rule enabled, taking per-path ignores for ``path`` into
        account (used once the file being linted is known)."""
        if not self.rule_enabled(rule_id):
            return False
        normalized = _normalize(path)
        for prefix, pattern in self.per_path_ignore:
            if _path_under(normalized, prefix) and \
                    _matches(rule_id, (pattern,)):
                return False
        return True

    def narrowed(self, select: Optional[Iterable[str]] = None,
                 ignore: Optional[Iterable[str]] = None) -> "LintConfig":
        """This config with CLI ``--select``/``--ignore`` applied on
        top (CLI select replaces, CLI ignore accumulates)."""
        return LintConfig(
            paths=self.paths,
            select=tuple(select) if select else self.select,
            ignore=self.ignore + tuple(ignore or ()),
            sql_exclude=self.sql_exclude,
            per_path_ignore=self.per_path_ignore)

    def sql_excluded(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return any(pattern in normalized for pattern in self.sql_exclude)


def _matches(rule_id: str, patterns: tuple[str, ...]) -> bool:
    return any(rule_id == p or rule_id.startswith(p) for p in patterns)


def _normalize(path: str) -> str:
    normalized = path.replace(os.sep, "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    return normalized


def _path_under(path: str, prefix: str) -> bool:
    """Whether ``path`` lies at or under ``prefix``.

    The prefix may match anywhere in the path on directory boundaries,
    so a relative prefix like ``tests/sim`` also covers the absolute
    paths the test-suite gate lints (mirrors ``sql-exclude``)."""
    prefix = _normalize(prefix).rstrip("/")
    return (path == prefix or path.startswith(prefix + "/")
            or f"/{prefix}/" in path or path.endswith(f"/{prefix}"))


def _parse_per_path(entries: Iterable[str]) -> tuple[tuple[str, str], ...]:
    pairs: list[tuple[str, str]] = []
    for entry in entries:
        prefix, sep, rules = entry.partition(":")
        if not sep or not prefix.strip() or not rules.strip():
            raise ValueError(
                f"[tool.simlint] per-path-ignore entry must look like "
                f"'path/prefix:RULE', got {entry!r}")
        for rule in rules.split(","):
            if rule.strip():
                pairs.append((prefix.strip(), rule.strip()))
    return tuple(pairs)


DEFAULT_CONFIG = LintConfig()


# --------------------------------------------------------------- loading
def load_config(root: str = ".") -> LintConfig:
    """The config from ``<root>/pyproject.toml``, or defaults."""
    path = os.path.join(root, "pyproject.toml")
    if not os.path.exists(path):
        return DEFAULT_CONFIG
    with open(path, "rb") as handle:
        raw = handle.read()
    if tomllib is not None:
        table = tomllib.loads(raw.decode("utf-8")) \
            .get("tool", {}).get("simlint", {})
    else:  # pragma: no cover - Python 3.10 fallback
        table = parse_simlint_table(raw.decode("utf-8"))
    return config_from_table(table)


def config_from_table(table: dict) -> LintConfig:
    def str_list(key, default):
        value = table.get(key)
        if value is None:
            return default
        if not (isinstance(value, list)
                and all(isinstance(v, str) for v in value)):
            raise ValueError(
                f"[tool.simlint] {key} must be a list of strings, "
                f"got {value!r}")
        return tuple(value)

    return LintConfig(
        paths=str_list("paths", DEFAULT_CONFIG.paths),
        select=str_list("select", DEFAULT_CONFIG.select),
        ignore=str_list("ignore", DEFAULT_CONFIG.ignore),
        sql_exclude=str_list("sql-exclude", DEFAULT_CONFIG.sql_exclude),
        per_path_ignore=_parse_per_path(
            str_list("per-path-ignore", ())))


_TABLE_HEADER = re.compile(r"^\s*\[(?P<name>[^\]]+)\]\s*$")
_KEY_VALUE = re.compile(r"^\s*(?P<key>[\w-]+)\s*=\s*(?P<value>.+?)\s*$")


def parse_simlint_table(text: str) -> dict:
    """Parse just the ``[tool.simlint]`` table of a TOML document.

    Supports exactly the subset this linter's config uses: string
    values and single-line arrays of strings.  Used only on Python
    3.10, where the stdlib has no TOML parser.
    """
    table: dict = {}
    in_table = False
    for line in text.splitlines():
        stripped = line.split("#", 1)[0] if '"' not in line else line
        header = _TABLE_HEADER.match(stripped)
        if header:
            in_table = header.group("name").strip() == "tool.simlint"
            continue
        if not in_table:
            continue
        pair = _KEY_VALUE.match(stripped)
        if not pair:
            continue
        table[pair.group("key")] = _parse_value(pair.group("value"))
    return table


def _parse_value(text: str):
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        return [_parse_value(item) for item in _split_items(inner)]
    if (text.startswith('"') and text.endswith('"')) or \
            (text.startswith("'") and text.endswith("'")):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    raise ValueError(f"unsupported TOML value in [tool.simlint]: {text!r}")


def _split_items(inner: str) -> list[str]:
    items, depth, current, quote = [], 0, "", None
    for char in inner:
        if quote:
            current += char
            if char == quote:
                quote = None
            continue
        if char in "\"'":
            quote = char
            current += char
        elif char == "[":
            depth += 1
            current += char
        elif char == "]":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            items.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        items.append(current.strip())
    return items

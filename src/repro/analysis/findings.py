"""The unit of linter output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Orders by ``(path, line, column, rule_id)`` so reports are stable
    regardless of the order rules ran in.
    """

    path: str        # file the finding is in (as given to the runner)
    line: int        # 1-based source line
    column: int      # 0-based source column
    rule_id: str     # e.g. "DET001"
    message: str     # what is wrong, with the offending expression
    hint: str = ""   # how to fix it
    #: extra ``(path, line, column, message)`` locations — the RACE
    #: rules attach the stale read and the yield it crossed, rendered
    #: by sarif.py as relatedLocations.
    related: tuple = ()

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.column}: " \
               f"{self.rule_id} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        for rpath, rline, rcol, rmessage in self.related:
            text += f"\n    {rpath}:{rline}:{rcol}: {rmessage}"
        return text

    def as_dict(self) -> dict:
        payload = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule_id": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }
        if self.related:
            payload["related"] = [
                {"path": rpath, "line": rline, "column": rcol,
                 "message": rmessage}
                for rpath, rline, rcol, rmessage in self.related]
        return payload

"""Flow-sensitive analysis: CFG → dataflow solver → FLW rules.

Architecture — three layers, each usable without the ones above it:

1. :mod:`.cfg` (**control-flow graphs**).  :func:`~.cfg.build_cfg`
   turns one function definition into a graph of statement nodes with
   ``normal``/``exception`` edges.  It models the constructs that
   matter for lifecycle proofs in a discrete-event codebase:
   ``try/except/else/finally`` (handlers as dispatch nodes, the
   ``finally`` body built once with fan-out to every continuation),
   ``with`` unwinding, loops with ``break``/``continue``/``else``,
   early returns routed through enclosing cleanups, and — crucially —
   exception edges out of ``yield``/``yield from``, because the kernel
   can throw into a waiting process (``Process.interrupt``), so a
   resource claimed before a ``yield`` leaks unless the wait sits
   inside ``try/finally``.

2. :mod:`.dataflow` (**fixpoint solver**).  :func:`~.dataflow
   .solve_forward` runs any gen/kill :class:`~.dataflow
   .DataflowProblem` to fixpoint with a worklist — a forward *may*
   analysis on the powerset-of-facts lattice.  Gen applies only to
   normal out-edges (a fact born at a statement does not exist on the
   statement's own exception edge); kills apply to both.  The solver
   knows nothing about any rule.

3. :mod:`.rules` (**the FLW family**).  Each rule is just a gen/kill
   definition plus a report: FLW001 (``pool.acquire()`` released on
   every path) and FLW002 (``Resource.request()`` paired with
   ``release``) share one :class:`~.rules._PairingProblem` and differ
   only in their acquire-site matcher; FLW003 pairs transaction
   ``begin`` with ``commit``/``rollback``; FLW004 uses bare CFG
   reachability (unreachable ``yield``); FLW005 is the escape check
   that closes the soundness gap the pairing rules would otherwise
   have (a handle passed to an unknown callee is nobody's to prove).

Future rule families plug in at layer 3: define facts, gen, kill —
the CFG and solver are already paid for.
"""

from .cfg import ControlFlowGraph, build_cfg
from .dataflow import DataflowProblem, DataflowResult, solve_forward
from .rules import RULES

__all__ = [
    "ControlFlowGraph",
    "build_cfg",
    "DataflowProblem",
    "DataflowResult",
    "solve_forward",
    "RULES",
]

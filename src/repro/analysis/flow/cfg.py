"""Control-flow graphs over Python ``ast`` function bodies.

One :class:`ControlFlowGraph` per function: a node per statement plus
synthetic ``<entry>``/``<exit>`` nodes and synthetic *cleanup* nodes
for exception dispatch (``except@L``), ``finally`` blocks
(``finally@L``), ``with`` unwinding (``with-exit@L``) and loop exits
reached by a ``break`` that unwinds through a cleanup
(``loop-exit@L``).  Edges are labeled ``normal`` or ``exception``.

What is modeled, and how precisely:

* **Branches and loops** — ``if``/``while``/``for`` headers are nodes
  with an out-edge per branch; loop bodies get a back edge to the
  header, ``break`` jumps past the ``else`` clause, ``continue`` jumps
  to the header, and a loop ``else`` runs only on normal exhaustion.
* **Exceptions** — a statement *may raise* when it contains a call, a
  ``yield``/``yield from`` (the kernel can throw into a waiting
  process, e.g. :meth:`repro.sim.kernel.Process.interrupt`), an
  ``await``, an ``assert``, or is a ``raise``.  Such statements get an
  ``exception`` edge to every handler of the innermost enclosing
  ``try`` and, for the unmatched case, onward to the nearest
  ``finally``/``with`` cleanup node or ``<exit>`` (the walk stops at a
  catch-all ``except:``/``except Exception:`` handler).  Plain
  attribute access, arithmetic and subscripts are assumed not to
  raise — the pragmatic policy resource-pairing linters adopt to avoid
  drowning in edges.
* **``finally`` / ``with`` unwinding** — the cleanup body is built
  once (not duplicated per continuation); its exits fan out to every
  continuation that routed through it: fall-through, exception
  re-raise, and any ``return``/``break``/``continue`` that unwound
  through it.  This over-approximates feasible paths (a path entering
  the cleanup via ``return`` can statically leave via the exception
  edge), which is the safe direction for may-leak analyses.
* **Nested functions** — a nested ``def``/``class``/``lambda`` is a
  single opaque statement node; its body belongs to its own CFG.

Node labels are deterministic (``NodeType@line``, disambiguated with a
``.n`` suffix on collision), so tests can assert exact node and edge
sets.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

__all__ = ["CFGNode", "ControlFlowGraph", "build_cfg", "may_raise",
           "node_expressions"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructs that terminate descent when deciding whether a statement
#: may raise (their bodies run elsewhere).
_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Exception names treated as catching everything for propagation.
_CATCH_ALL = frozenset(("BaseException", "Exception"))


class CFGNode:
    """One vertex: a statement, or a synthetic entry/exit/cleanup node."""

    __slots__ = ("index", "label", "kind", "stmt")

    def __init__(self, index: int, label: str, kind: str,
                 stmt: Optional[ast.AST] = None):
        self.index = index
        self.label = label
        self.kind = kind        # "entry" | "exit" | "stmt" | "cleanup"
        self.stmt = stmt

    def __repr__(self) -> str:
        return f"<CFGNode {self.label}>"


class ControlFlowGraph:
    """Nodes plus labeled directed edges, with entry/exit distinguished."""

    def __init__(self, name: str):
        self.name = name
        self.nodes: list[CFGNode] = []
        self._succs: dict[int, list[tuple[int, str]]] = {}
        self._labels: set[str] = set()
        self.entry = self.add_node("<entry>", "entry")
        self.exit = self.add_node("<exit>", "exit")

    # -- construction ------------------------------------------------------
    def add_node(self, label: str, kind: str,
                 stmt: Optional[ast.AST] = None) -> CFGNode:
        if label in self._labels:
            suffix = 2
            while f"{label}.{suffix}" in self._labels:
                suffix += 1
            label = f"{label}.{suffix}"
        self._labels.add(label)
        node = CFGNode(len(self.nodes), label, kind, stmt)
        self.nodes.append(node)
        self._succs[node.index] = []
        return node

    def add_edge(self, src: CFGNode, dst: CFGNode,
                 kind: str = "normal") -> None:
        pair = (dst.index, kind)
        if pair not in self._succs[src.index]:
            self._succs[src.index].append(pair)

    # -- queries -----------------------------------------------------------
    def successors(self, node: CFGNode) -> Iterator[tuple[CFGNode, str]]:
        for index, kind in self._succs[node.index]:
            yield self.nodes[index], kind

    def edge_set(self) -> frozenset[tuple[str, str, str]]:
        """``{(src_label, dst_label, edge_kind)}`` — for exact tests."""
        return frozenset(
            (self.nodes[src].label, self.nodes[dst].label, kind)
            for src, pairs in self._succs.items()
            for dst, kind in pairs)

    def node_labels(self) -> frozenset[str]:
        return frozenset(node.label for node in self.nodes)

    def reachable(self) -> set[int]:
        """Indices of nodes reachable from ``<entry>``."""
        seen = {self.entry.index}
        stack = [self.entry.index]
        while stack:
            for index, _kind in self._succs[stack.pop()]:
                if index not in seen:
                    seen.add(index)
                    stack.append(index)
        return seen


def may_raise(node: ast.AST) -> bool:
    """Whether a statement gets an exception edge (see module policy)."""
    if isinstance(node, (ast.Raise, ast.Assert)):
        return True
    todo: list[ast.AST] = [node]
    while todo:
        sub = todo.pop()
        if isinstance(sub, (ast.Call, ast.Yield, ast.YieldFrom,
                            ast.Await)):
            return True
        if isinstance(sub, _OPAQUE):
            continue
        todo.extend(ast.iter_child_nodes(sub))
    return False


def node_expressions(node: CFGNode) -> list[ast.AST]:
    """The AST fragments actually evaluated *at* this node.

    Compound statements (``if``/``while``/``for``/``with``) carry their
    whole subtree in ``node.stmt``, but only the header is evaluated at
    the node itself — body statements are separate nodes.  Dataflow
    rules must scan these fragments, never ``node.stmt`` wholesale.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    return [stmt]


def _is_catch_all(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    return any(isinstance(name, ast.Name) and name.id in _CATCH_ALL
               for name in names)


class _Frame:
    """One level of the builder's unwinding context.

    ``cleanup`` is the synthetic node a path must pass through when it
    leaves this frame (a ``finally@L`` or ``with-exit@L`` node), or
    None when the frame has none (plain ``try/except``, loops).
    ``continuations`` collects where paths that routed through the
    cleanup continue once its body has run.
    """

    __slots__ = ("kind", "cleanup", "handlers", "catches_all",
                 "continuations", "header", "breaks", "break_join")

    def __init__(self, kind: str, cleanup: Optional[CFGNode] = None,
                 handlers: tuple[CFGNode, ...] = (),
                 catches_all: bool = False,
                 header: Optional[CFGNode] = None):
        self.kind = kind              # "loop" | "try" | "with"
        self.cleanup = cleanup
        self.handlers = handlers
        self.catches_all = catches_all
        self.continuations: list[CFGNode] = []
        self.header = header               # loop frames only
        self.breaks: list[CFGNode] = []    # loop frames: dangling exits
        self.break_join: Optional[CFGNode] = None

    def add_continuation(self, node: CFGNode) -> None:
        if all(existing is not node for existing in self.continuations):
            self.continuations.append(node)


class _Builder:
    def __init__(self, function: FunctionNode):
        self.cfg = ControlFlowGraph(function.name)
        self.frames: list[_Frame] = []

    # -- unwinding ---------------------------------------------------------
    def _exception_targets(self) -> list[CFGNode]:
        """Where an exception raised *here* may go directly.

        Innermost handlers first; the walk stops at the first cleanup
        node (whose own out-edges model further propagation) or at a
        catch-all handler, and otherwise reaches ``<exit>``.
        """
        targets: list[CFGNode] = []
        for frame in reversed(self.frames):
            targets.extend(frame.handlers)
            if frame.cleanup is not None:
                targets.append(frame.cleanup)
                return targets
            if frame.catches_all:
                return targets
        targets.append(self.cfg.exit)
        return targets

    def _route_unwind(self, src: CFGNode, dest: CFGNode,
                      stop: Optional[_Frame]) -> None:
        """Edge from ``src`` to ``dest``, chaining through every cleanup
        node between the current frame and ``stop`` (exclusive)."""
        chain: list[_Frame] = []
        for frame in reversed(self.frames):
            if frame is stop:
                break
            if frame.cleanup is not None:
                chain.append(frame)
        if not chain:
            self.cfg.add_edge(src, dest)
            return
        self.cfg.add_edge(src, chain[0].cleanup)
        for frame, outer in zip(chain, chain[1:]):
            frame.add_continuation(outer.cleanup)
        chain[-1].add_continuation(dest)

    def _frames_until(self, stop: _Frame) -> list[_Frame]:
        collected: list[_Frame] = []
        for frame in reversed(self.frames):
            if frame is stop:
                break
            collected.append(frame)
        return collected

    # -- statement building ------------------------------------------------
    def _add_raise_edges(self, node: CFGNode) -> None:
        for target in self._exception_targets():
            self.cfg.add_edge(node, target, "exception")

    def _stmt_node(self, stmt: ast.stmt) -> CFGNode:
        node = self.cfg.add_node(
            f"{type(stmt).__name__}@{stmt.lineno}", "stmt", stmt)
        if may_raise(stmt):
            self._add_raise_edges(node)
        return node

    def _connect(self, preds: list[CFGNode], node: CFGNode) -> None:
        for pred in preds:
            self.cfg.add_edge(pred, node)

    def build_body(self, stmts: list[ast.stmt],
                   preds: list[CFGNode]) -> list[CFGNode]:
        """Build a statement sequence; returns the nodes whose normal
        out-edge falls through to whatever follows the sequence.
        Statements after the block terminated (empty ``preds``) are
        still built, as unreachable nodes — FLW004 reports them."""
        for stmt in stmts:
            preds = self._build_stmt(stmt, preds)
        return preds

    def _build_stmt(self, stmt: ast.stmt,
                    preds: list[CFGNode]) -> list[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, preds)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, preds)
        node = self._stmt_node(stmt)
        self._connect(preds, node)
        if isinstance(stmt, ast.Return):
            self._route_unwind(node, self.cfg.exit, stop=None)
            return []
        if isinstance(stmt, ast.Raise):
            return []
        if isinstance(stmt, ast.Break):
            self._build_break(node)
            return []
        if isinstance(stmt, ast.Continue):
            loop = self._innermost_loop()
            if loop is not None and loop.header is not None:
                self._route_unwind(node, loop.header, stop=loop)
            return []
        return [node]

    def _innermost_loop(self) -> Optional[_Frame]:
        for frame in reversed(self.frames):
            if frame.kind == "loop":
                return frame
        return None

    def _build_break(self, node: CFGNode) -> None:
        loop = self._innermost_loop()
        if loop is None:
            return
        if not any(frame.cleanup is not None
                   for frame in self._frames_until(loop)):
            # No finally/with between the break and its loop: the break
            # node itself dangles to whatever follows the loop.
            loop.breaks.append(node)
            return
        # The break unwinds through cleanups; the after-loop point does
        # not exist yet, so route to a per-loop join node that will
        # dangle to it.
        if loop.break_join is None:
            line = loop.header.stmt.lineno if loop.header is not None \
                and loop.header.stmt is not None else 0
            loop.break_join = self.cfg.add_node(
                f"loop-exit@{line}", "cleanup")
            loop.breaks.append(loop.break_join)
        self._route_unwind(node, loop.break_join, stop=loop)

    def _build_if(self, stmt: ast.If,
                  preds: list[CFGNode]) -> list[CFGNode]:
        header = self.cfg.add_node(f"If@{stmt.lineno}", "stmt", stmt)
        if may_raise(stmt.test):
            self._add_raise_edges(header)
        self._connect(preds, header)
        body_exits = self.build_body(stmt.body, [header])
        if stmt.orelse:
            else_exits = self.build_body(stmt.orelse, [header])
            return body_exits + else_exits
        return body_exits + [header]

    def _build_loop(self, stmt, preds: list[CFGNode]) -> list[CFGNode]:
        name = type(stmt).__name__
        header = self.cfg.add_node(f"{name}@{stmt.lineno}", "stmt", stmt)
        header_exprs = [stmt.test] if isinstance(stmt, ast.While) \
            else [stmt.iter]
        if any(may_raise(expr) for expr in header_exprs):
            self._add_raise_edges(header)
        self._connect(preds, header)
        frame = _Frame("loop", header=header)
        self.frames.append(frame)
        body_exits = self.build_body(stmt.body, [header])
        self.frames.pop()
        for node in body_exits:
            self.cfg.add_edge(node, header)   # back edge
        # Normal exhaustion runs the else clause; break skips it.
        if stmt.orelse:
            exits = self.build_body(stmt.orelse, [header])
        else:
            exits = [header]
        return exits + frame.breaks

    def _build_try(self, stmt: ast.Try,
                   preds: list[CFGNode]) -> list[CFGNode]:
        handler_nodes = tuple(
            self.cfg.add_node(f"except@{handler.lineno}", "cleanup",
                              handler)
            for handler in stmt.handlers)
        final_node = None
        if stmt.finalbody:
            final_node = self.cfg.add_node(
                f"finally@{stmt.finalbody[0].lineno}", "cleanup")
        frame = _Frame("try", cleanup=final_node, handlers=handler_nodes,
                       catches_all=any(_is_catch_all(handler)
                                       for handler in stmt.handlers))
        self.frames.append(frame)
        body_exits = self.build_body(stmt.body, preds)
        self.frames.pop()

        # The else clause and the handler bodies run outside the
        # protection of this try's handlers but inside its finally.
        shield = _Frame("try", cleanup=final_node)
        self.frames.append(shield)
        if stmt.orelse:
            body_exits = self.build_body(stmt.orelse, body_exits)
        handler_exits: list[CFGNode] = []
        for dispatch, handler in zip(handler_nodes, stmt.handlers):
            handler_exits.extend(
                self.build_body(handler.body, [dispatch]))
        self.frames.pop()
        # Unwinds recorded while building else/handlers belong to the
        # real frame's cleanup.
        for node in shield.continuations:
            frame.add_continuation(node)

        exits = body_exits + handler_exits
        if final_node is None:
            return exits
        for node in exits:
            self.cfg.add_edge(node, final_node)
        final_exits = self.build_body(stmt.finalbody, [final_node])
        # Paths that entered the finally exceptionally re-raise after
        # it; paths that entered via return/break/continue resume their
        # recorded journey; normal entries fall through (the returned
        # dangling exits).
        for target in self._exception_targets():
            for node in final_exits:
                self.cfg.add_edge(node, target, "exception")
        for dest in frame.continuations:
            for node in final_exits:
                self.cfg.add_edge(node, dest)
        return list(final_exits)

    def _build_with(self, stmt, preds: list[CFGNode]) -> list[CFGNode]:
        name = type(stmt).__name__
        header = self.cfg.add_node(f"{name}@{stmt.lineno}", "stmt", stmt)
        if any(may_raise(item.context_expr) for item in stmt.items):
            self._add_raise_edges(header)
        self._connect(preds, header)
        cleanup = self.cfg.add_node(f"with-exit@{stmt.lineno}", "cleanup")
        frame = _Frame("with", cleanup=cleanup)
        self.frames.append(frame)
        body_exits = self.build_body(stmt.body, [header])
        self.frames.pop()
        for node in body_exits:
            self.cfg.add_edge(node, cleanup)
        # __exit__ may re-raise (exception continuation) or the body
        # completed normally / the exception was suppressed (normal
        # fall-through via the returned dangling exit).
        for target in self._exception_targets():
            self.cfg.add_edge(cleanup, target, "exception")
        for dest in frame.continuations:
            self.cfg.add_edge(cleanup, dest)
        return [cleanup]

    def build(self, function: FunctionNode) -> ControlFlowGraph:
        exits = self.build_body(function.body, [self.cfg.entry])
        for node in exits:
            self.cfg.add_edge(node, self.cfg.exit)
        return self.cfg


def build_cfg(function: FunctionNode) -> ControlFlowGraph:
    """The control-flow graph of one function definition."""
    return _Builder(function).build(function)

"""Generic forward dataflow over a :class:`ControlFlowGraph`.

The solver implements the classic *may* (union) gen/kill analysis on
the powerset lattice of facts, iterated to fixpoint with a worklist.
Rules supply only the transfer ingredients:

* :meth:`DataflowProblem.gen` — facts a node creates;
* :meth:`DataflowProblem.kill` — facts a node destroys.

Two refinements matter for resource-pairing proofs:

* **Edge-sensitive gen.**  A fact born at a statement (``conn =
  yield from pool.acquire()``) exists only if the statement *completed*
  — it must not flow along the statement's own ``exception`` edge
  (the assignment never happened).  Kills apply on both edge kinds:
  once ``release(x)`` has been reached, the claim is treated as
  settled even if the release itself were to raise.
* **Set-union convergence.**  Facts are frozen hashable values; IN
  sets only grow, so the worklist terminates in
  O(edges × facts) joins regardless of visit order, and the fixpoint
  is order-independent (the transfer is monotone and distributive).

A third, optional ingredient serves flow-*rewriting* analyses (the
RACE rules in :mod:`..race.rules`): :meth:`DataflowProblem.transform`
maps the surviving facts at a node to new facts — e.g. marking every
fact that flows through a yield point as "crossed a preemption".  The
transform applies on *both* edge kinds: an interrupt is thrown into a
process at its yield, so a fact leaving a yield node along the
exception edge crossed the preemption just the same.  For convergence
the transform must be monotone and idempotent on the fact set (flag
flips are; arbitrary rewrites are not).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Optional

from .cfg import CFGNode, ControlFlowGraph

__all__ = ["DataflowProblem", "DataflowResult", "solve_forward"]

Fact = Hashable


class DataflowProblem:
    """Gen/kill definitions for one analysis.

    Subclasses override :meth:`gen` and :meth:`kill`; both receive the
    CFG node, and :meth:`kill` additionally receives the incoming fact
    set so it can select which live facts die (e.g. every fact whose
    variable is passed to ``release``)."""

    def gen(self, node: CFGNode) -> frozenset:
        return frozenset()

    def kill(self, node: CFGNode, facts: frozenset) -> frozenset:
        return frozenset()

    def transform(self, node: CFGNode, facts: frozenset) -> frozenset:
        """Rewrite the facts surviving ``node`` (identity by default).

        Runs after :meth:`kill` and before :meth:`gen`, on both the
        normal and the exception out-edges.  Must be monotone and
        idempotent (e.g. setting a flag on each fact)."""
        return facts

    def initial(self) -> frozenset:
        """Facts live at function entry (usually none)."""
        return frozenset()


class DataflowResult:
    """Fixpoint fact sets, queryable per node."""

    def __init__(self, cfg: ControlFlowGraph,
                 entering: dict[int, frozenset],
                 problem: DataflowProblem):
        self.cfg = cfg
        self._entering = entering
        self._problem = problem

    def entering(self, node: CFGNode) -> frozenset:
        """Facts live on entry to ``node``."""
        return self._entering.get(node.index, frozenset())

    def leaving(self, node: CFGNode, edge_kind: str = "normal"
                ) -> frozenset:
        """Facts live on an out-edge of ``node`` of the given kind."""
        survivors = self.entering(node) - self._problem.kill(
            node, self.entering(node))
        survivors = self._problem.transform(node, survivors)
        if edge_kind == "exception":
            return survivors
        return survivors | self._problem.gen(node)

    @property
    def at_exit(self) -> frozenset:
        """Facts reaching ``<exit>`` on at least one path."""
        return self.entering(self.cfg.exit)


def solve_forward(cfg: ControlFlowGraph,
                  problem: DataflowProblem,
                  max_iterations: Optional[int] = None) -> DataflowResult:
    """Iterate the gen/kill transfer to fixpoint over ``cfg``.

    ``max_iterations`` bounds worklist pops as a safety valve; the
    default is proportional to nodes × edges, far beyond what a
    monotone union analysis can need.
    """
    entering: dict[int, frozenset] = {
        cfg.entry.index: frozenset(problem.initial())}
    n_edges = sum(1 for node in cfg.nodes
                  for _succ in cfg.successors(node))
    budget = max_iterations if max_iterations is not None \
        else max(64, 4 * len(cfg.nodes) * max(1, n_edges))
    # Every node is processed at least once (a node's *gen* can create
    # the first facts even when nothing flows in yet); after that a
    # node re-queues only when its IN set grows.
    worklist: deque[int] = deque(node.index for node in cfg.nodes)
    queued = {node.index for node in cfg.nodes}
    while worklist:
        budget -= 1
        if budget < 0:
            raise RuntimeError(
                f"dataflow did not converge on {cfg.name!r} — "
                f"non-monotone gen/kill?")
        index = worklist.popleft()
        queued.discard(index)
        node = cfg.nodes[index]
        facts_in = entering.get(index, frozenset())
        survivors = facts_in - problem.kill(node, facts_in)
        survivors = problem.transform(node, survivors)
        out_normal = survivors | problem.gen(node)
        for succ, kind in cfg.successors(node):
            flowing = survivors if kind == "exception" else out_normal
            known = entering.get(succ.index, frozenset())
            if not flowing <= known:
                entering[succ.index] = known | flowing
                if succ.index not in queued:
                    queued.add(succ.index)
                    worklist.append(succ.index)
    return DataflowResult(cfg, entering, problem)

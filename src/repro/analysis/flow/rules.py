"""FLW rules: flow-sensitive resource/transaction pairing proofs.

Every rule here is a client of the same two layers: :mod:`.cfg` builds
one control-flow graph per function and :mod:`.dataflow` runs a
gen/kill worklist over it.  FLW001 and FLW002 share
:class:`_PairingProblem` verbatim — only the *acquire-site matcher*
(and the report text) differ — which is what keeps the family cheap to
extend.

Ownership model for acquired handles (``v = yield from
pool.acquire()``, ``v = resource.request()``):

* ``X.release(v)`` settles the claim;
* ``return v`` (anywhere in the returned expression) transfers
  ownership to the caller;
* passing ``v`` to a constructor-like callee (last name segment
  capitalized, e.g. ``PooledConnection(self, v, ...)``) transfers
  ownership to the new object;
* storing ``v`` on an attribute (``self.request = v``) transfers
  ownership to the object;
* ``yield v`` / ``yield from v`` waits on the handle — neither a
  transfer nor an escape;
* passing ``v`` to any other call, or storing it into a subscript
  (``table[k] = v``), *escapes* it with no owner on record — FLW005
  reports the site, and the claim stops being this function's to
  prove.

A claim still live on any edge into ``<exit>`` — normal or exception —
is a leak: FLW001/FLW002 report it at the acquire site.

When a *purity oracle* is wired in (``repro check`` passes the taint
plane's :class:`~..taint.purity.PuritySummaries` verdicts), passing
``v`` to a call **proven pure and yield-free** neither settles nor
escapes the claim — ``validate(v)`` can no longer silently discharge
a leak proof.  Constructor-like calls keep transferring ownership
regardless (allocation is pure, but the new object owns the handle).
Standalone ``repro lint`` runs without the oracle and keeps the
conservative any-call-settles behaviour.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from ..visitor import (LintContext, Rule, is_generator, iter_functions,
                       own_nodes, qualified_name)
from .cfg import (CFGNode, ControlFlowGraph, build_cfg, FunctionNode,
                  node_expressions)
from .dataflow import DataflowProblem, solve_forward

__all__ = ["PoolAcquireLeakRule", "ResourceRequestLeakRule",
           "TransactionLeakRule", "UnreachableYieldRule",
           "HandleEscapeRule", "SpanLeakRule", "RULES", "cached_cfg",
           "function_cfg"]


@dataclass(frozen=True)
class Claim:
    """One unresolved acquisition, keyed by the local variable name."""

    var: str
    line: int
    col: int
    desc: str


#: Process-wide CFG memo shared by every rule family (FLW and RACE),
#: so ``repro lint`` + ``repro racecheck`` build each function's CFG
#: once per parse.  Keyed by ``id(function)`` with the function node
#: pinned in the value: the parsed trees live in the runner's source
#: cache, so ids stay valid; the identity check guards against id
#: reuse after a tree is dropped, and the size cap bounds memory on
#: huge one-shot runs.
_CFG_CACHE: dict[int, tuple] = {}
_CFG_CACHE_MAX = 8192


def cached_cfg(function: FunctionNode) -> ControlFlowGraph:
    """The (memoized) control-flow graph of ``function``."""
    entry = _CFG_CACHE.get(id(function))
    if entry is not None and entry[0] is function:
        return entry[1]
    if len(_CFG_CACHE) >= _CFG_CACHE_MAX:
        _CFG_CACHE.clear()
    cfg = build_cfg(function)
    _CFG_CACHE[id(function)] = (function, cfg)
    return cfg


def function_cfg(context: LintContext,
                 function: FunctionNode) -> ControlFlowGraph:
    """The FLW rules' accessor, kept for API compatibility; the memo
    is now process-wide (see :data:`_CFG_CACHE`)."""
    return cached_cfg(function)


# ------------------------------------------------------- AST matchers
def _call_attr(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _callee_tail(call: ast.Call) -> Optional[str]:
    """Last segment of the callee's dotted name (``Pool`` for
    ``module.Pool(...)``), or None for computed callees."""
    dotted = qualified_name(call.func)
    if dotted is None:
        return None
    return dotted.rsplit(".", 1)[-1]


def _is_constructor_like(call: ast.Call) -> bool:
    tail = _callee_tail(call)
    return bool(tail) and tail[0].isupper()


def _single_name_target(stmt: ast.AST) -> Optional[ast.Name]:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0]
    if isinstance(stmt, ast.AnnAssign) and \
            isinstance(stmt.target, ast.Name) and stmt.value is not None:
        return stmt.target
    return None


def _assigned_value(stmt: ast.AST) -> Optional[ast.AST]:
    if isinstance(stmt, ast.Assign):
        return stmt.value
    if isinstance(stmt, ast.AnnAssign):
        return stmt.value
    return None


def _names_in(node: ast.AST) -> Iterator[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id


# ------------------------------------------------ shared pairing core
class _PairingProblem(DataflowProblem):
    """Gen/kill for acquire/release pairing.

    ``match_acquire`` decides whether an assigned value is an
    acquisition — the only ingredient FLW001 and FLW002 do not share.
    ``call_oracle(call, path) -> "pure"|"impure"|"unknown"`` (optional)
    lets proven-pure calls keep the claim alive instead of settling it.
    """

    def __init__(self, match_acquire, call_oracle=None, path=None):
        self.match_acquire = match_acquire
        self.call_oracle = call_oracle
        self.path = path

    def gen(self, node: CFGNode) -> frozenset:
        stmt = node.stmt
        target = _single_name_target(stmt) if stmt is not None else None
        if target is None:
            return frozenset()
        desc = self.match_acquire(_assigned_value(stmt))
        if desc is None:
            return frozenset()
        return frozenset({Claim(target.id, stmt.lineno,
                                stmt.col_offset, desc)})

    def kill(self, node: CFGNode, facts: frozenset) -> frozenset:
        if not facts:
            return frozenset()
        live = {claim.var for claim in facts}
        dead_vars: set[str] = set()
        for expr in node_expressions(node):
            dead_vars |= _settled_vars(expr, live,
                                       call_oracle=self.call_oracle,
                                       path=self.path)
        # Rebinding the variable also ends the old claim.
        stmt = node.stmt
        if stmt is not None:
            target = _single_name_target(stmt)
            if target is not None and target.id in live:
                dead_vars.add(target.id)
        return frozenset(claim for claim in facts
                         if claim.var in dead_vars)


def _settled_vars(expr: ast.AST, live: set[str],
                  call_oracle=None, path=None) -> set[str]:
    """Variables whose claim ends at this statement fragment — by
    release, ownership transfer, or escape (see module docstring)."""
    settled: set[str] = set()
    if isinstance(expr, ast.Return) and expr.value is not None:
        settled |= set(_names_in(expr.value)) & live
    if isinstance(expr, ast.Delete):
        settled |= {target.id for target in expr.targets
                    if isinstance(target, ast.Name)} & live
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Call):
            arg_names = {arg.id for arg in sub.args
                         if isinstance(arg, ast.Name)}
            arg_names |= {kw.value.id for kw in sub.keywords
                          if isinstance(kw.value, ast.Name)}
            if not arg_names & live:
                continue
            # release(...), constructor transfer, or escape — all end
            # this function's proof obligation for those vars.  A call
            # the oracle proves pure does none of those: it cannot
            # release, cannot take ownership, and the claim stays this
            # function's to discharge.  Constructor-like calls are
            # exempt — ownership transfer is the sanctioned idiom even
            # though allocation itself is effect-free.
            if call_oracle is not None and \
                    not _is_constructor_like(sub) and \
                    call_oracle(sub, path) == "pure":
                continue
            settled |= arg_names & live
        elif isinstance(sub, (ast.Assign, ast.AnnAssign)):
            value = _assigned_value(sub)
            if value is None or not isinstance(value, ast.Name) or \
                    value.id not in live:
                continue
            targets = sub.targets if isinstance(sub, ast.Assign) \
                else [sub.target]
            if any(isinstance(t, (ast.Attribute, ast.Subscript))
                   for t in targets):
                settled.add(value.id)
    return settled


class _FlowRule(Rule):
    """Base for the FLW/OBS flow rules: optionally carries the purity
    oracle ``repro check`` wires in (``None`` for standalone lint —
    the conservative mode)."""

    def __init__(self, call_oracle=None):
        self.call_oracle = call_oracle


class _PairingRule(_FlowRule):
    """Shared driver: solve the pairing problem per function, report
    claims alive at exit.  Subclasses supply the acquire matcher (and
    may swap in a problem subclass with extra kill sites)."""

    problem_factory = _PairingProblem
    leak_verb = "released"

    def match_acquire(self, value: Optional[ast.AST]) -> Optional[str]:
        raise NotImplementedError

    def _has_acquire_site(self, function: FunctionNode) -> bool:
        for node in own_nodes(function):
            if _single_name_target(node) is not None and \
                    self.match_acquire(_assigned_value(node)) is not None:
                return True
        return False

    def check(self, context: LintContext) -> None:
        problem = self.problem_factory(self.match_acquire,
                                       call_oracle=self.call_oracle,
                                       path=context.path)
        for function in iter_functions(context.tree):
            if not self._has_acquire_site(function):
                continue
            cfg = function_cfg(context, function)
            result = solve_forward(cfg, problem)
            for claim in sorted(result.at_exit,
                                key=lambda c: (c.line, c.col, c.var)):
                anchor = ast.copy_location(ast.Pass(), function)
                anchor.lineno = claim.line
                anchor.col_offset = claim.col
                self.report(
                    context, anchor,
                    f"{claim.desc} result {claim.var!r} (line "
                    f"{claim.line}) can reach the end of "
                    f"{function.name!r} without being {self.leak_verb}")


class PoolAcquireLeakRule(_PairingRule):
    """FLW001: a pooled connection borrowed via ``pool.acquire()`` must
    be released on every path, exception edges included."""

    rule_id = "FLW001"
    description = "pool.acquire() result not released on every path"
    hint = "release the connection in a finally: block"

    def match_acquire(self, value):
        call = value.value if isinstance(value, ast.YieldFrom) else value
        if isinstance(call, ast.Call) and _call_attr(call) == "acquire":
            receiver = qualified_name(call.func.value) or "pool"
            return f"{receiver}.acquire()"
        return None


class ResourceRequestLeakRule(_PairingRule):
    """FLW002: a ``Resource.request()`` claim must be released on every
    path — an unreleased claim holds (or queues for) a slot forever."""

    rule_id = "FLW002"
    description = "Resource.request() without release on some path"
    hint = "wrap the wait and the work in try/finally: release(req) " \
           "(releasing an ungranted request cancels it)"

    def match_acquire(self, value):
        call = value.value if isinstance(value, ast.YieldFrom) else value
        if isinstance(call, ast.Call) and _call_attr(call) == "request":
            receiver = qualified_name(call.func.value) or "resource"
            return f"{receiver}.request()"
        return None


# ------------------------------------------------------- scoped spans
class _SpanProblem(_PairingProblem):
    """Pairing facts for scoped spans: a receiver-position
    ``v.end()`` also settles the claim (the shared core only settles
    argument-position uses)."""

    def kill(self, node: CFGNode, facts: frozenset) -> frozenset:
        dead = super().kill(node, facts)
        if len(dead) == len(facts):
            return dead
        live = {claim.var for claim in facts}
        ended: set[str] = set()
        for expr in node_expressions(node):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and \
                        isinstance(sub.func, ast.Attribute) and \
                        sub.func.attr == "end" and \
                        isinstance(sub.func.value, ast.Name) and \
                        sub.func.value.id in live:
                    ended.add(sub.func.value.id)
        if not ended:
            return dead
        return frozenset(set(dead) |
                         {claim for claim in facts if claim.var in ended})


class SpanLeakRule(_PairingRule):
    """OBS001: a scoped span from ``tracer.span()`` must be closed on
    every path.  The ``with`` form discharges the obligation
    structurally; a bare assignment must reach ``end()`` (or transfer
    ownership) on every path, exception edges included.  Flow spans
    from ``tracer.open_span()`` are exempt by design — their ``end()``
    happens in another process."""

    rule_id = "OBS001"
    description = "tracer.span() opened without end() on every path"
    hint = "use 'with tracer.span(...):', end() in a finally: block, " \
           "or tracer.open_span() for cross-process handoffs"
    problem_factory = _SpanProblem
    leak_verb = "ended"

    def match_acquire(self, value):
        call = value.value if isinstance(value, ast.YieldFrom) else value
        if isinstance(call, ast.Call) and _call_attr(call) == "span":
            receiver = qualified_name(call.func.value)
            if receiver is not None and \
                    receiver.rsplit(".", 1)[-1].lower().endswith("tracer"):
                return f"{receiver}.span()"
        return None


# ------------------------------------------------------- transactions
@dataclass(frozen=True)
class TxnClaim:
    receiver: str
    line: int
    col: int


class _TransactionProblem(DataflowProblem):
    """Gen on ``X.begin()``, kill on ``X.commit()``/``X.rollback()``
    with the same receiver chain."""

    def gen(self, node: CFGNode) -> frozenset:
        claims = set()
        for expr in node_expressions(node):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and \
                        _call_attr(sub) == "begin":
                    receiver = qualified_name(sub.func.value)
                    if receiver is not None:
                        claims.add(TxnClaim(receiver, sub.lineno,
                                            sub.col_offset))
        return frozenset(claims)

    def kill(self, node: CFGNode, facts: frozenset) -> frozenset:
        if not facts:
            return frozenset()
        receivers = {claim.receiver for claim in facts}
        ended: set[str] = set()
        for expr in node_expressions(node):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and \
                        _call_attr(sub) in ("commit", "rollback"):
                    receiver = qualified_name(sub.func.value)
                    if receiver in receivers:
                        ended.add(receiver)
        return frozenset(claim for claim in facts
                         if claim.receiver in ended)


class TransactionLeakRule(_FlowRule):
    """FLW003: a ``begin`` that can reach function exit with neither
    ``commit`` nor ``rollback`` on that path."""

    rule_id = "FLW003"
    description = "transaction begin without commit/rollback on some path"
    hint = "commit on success and rollback in an except/finally block"

    @staticmethod
    def _has_begin(function: FunctionNode) -> bool:
        return any(isinstance(node, ast.Call) and
                   _call_attr(node) == "begin"
                   for node in own_nodes(function))

    def check(self, context: LintContext) -> None:
        problem = _TransactionProblem()
        for function in iter_functions(context.tree):
            if not self._has_begin(function):
                continue
            cfg = function_cfg(context, function)
            result = solve_forward(cfg, problem)
            for claim in sorted(result.at_exit,
                                key=lambda c: (c.line, c.col,
                                               c.receiver)):
                anchor = ast.Pass()
                anchor.lineno = claim.line
                anchor.col_offset = claim.col
                self.report(
                    context, anchor,
                    f"transaction begun on {claim.receiver!r} (line "
                    f"{claim.line}) can reach the end of "
                    f"{function.name!r} without commit or rollback")


# --------------------------------------------------- unreachable yield
class UnreachableYieldRule(_FlowRule):
    """FLW004: a ``yield`` the CFG proves unreachable (every path
    returns or raises first).  The ``yield`` still turns the function
    into a generator, so the dead statement silently changes the
    function's calling convention — a classic refactor leftover."""

    rule_id = "FLW004"
    description = "unreachable yield in a generator"
    hint = "delete the dead yield, or restore the path that reaches it"

    def check(self, context: LintContext) -> None:
        for function in iter_functions(context.tree):
            if not is_generator(function):
                continue
            cfg = function_cfg(context, function)
            reachable = cfg.reachable()
            for node in cfg.nodes:
                if node.index in reachable:
                    continue
                for expr in node_expressions(node):
                    for sub in ast.walk(expr):
                        if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                            self.report(
                                context, sub,
                                f"yield in {function.name!r} is "
                                f"unreachable: every path returns or "
                                f"raises before line {sub.lineno}")


# ------------------------------------------------------ handle escapes
class HandleEscapeRule(_FlowRule):
    """FLW005: an acquired handle passed to an arbitrary call or stored
    into a container leaves the function with no owner on record —
    nobody can prove it is ever released."""

    rule_id = "FLW005"
    description = "acquired handle escapes without ownership transfer"
    hint = "return the handle, wrap it in an owning object, or " \
           "release it here"

    #: Callee attribute names that settle the claim instead of
    #: escaping it.
    SANCTIONED = frozenset(("release",))

    def check(self, context: LintContext) -> None:
        for function in iter_functions(context.tree):
            handles = self._acquired_vars(function)
            if not handles:
                continue
            for node in own_nodes(function):
                self._check_node(context, function, node, handles)

    @staticmethod
    def _acquired_vars(function: FunctionNode) -> set[str]:
        acquired: set[str] = set()
        for node in own_nodes(function):
            target = _single_name_target(node)
            if target is None:
                continue
            value = _assigned_value(node)
            call = value.value if isinstance(value, ast.YieldFrom) \
                else value
            if isinstance(call, ast.Call) and \
                    _call_attr(call) in ("acquire", "request"):
                acquired.add(target.id)
        return acquired

    def _check_node(self, context, function, node, handles) -> None:
        if isinstance(node, ast.Call):
            if _is_constructor_like(node) or \
                    _call_attr(node) in self.SANCTIONED:
                return
            if self.call_oracle is not None and \
                    self.call_oracle(node, context.path) == "pure":
                # A proven-pure callee cannot retain the handle: the
                # value never escapes this function's ownership.
                return
            passed = [arg for arg in node.args
                      if isinstance(arg, ast.Name) and
                      arg.id in handles]
            passed += [kw.value for kw in node.keywords
                       if isinstance(kw.value, ast.Name) and
                       kw.value.id in handles]
            callee = qualified_name(node.func) or "<computed callee>"
            for arg in passed:
                self.report(
                    context, node,
                    f"handle {arg.id!r} escapes {function.name!r} via "
                    f"call to {callee}() without ownership transfer")
        elif isinstance(node, ast.Assign):
            value = node.value
            if not (isinstance(value, ast.Name) and value.id in handles):
                return
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self.report(
                        context, node,
                        f"handle {value.id!r} escapes {function.name!r} "
                        f"into a container without ownership transfer")


RULES = (PoolAcquireLeakRule, ResourceRequestLeakRule,
         TransactionLeakRule, UnreachableYieldRule, HandleEscapeRule,
         SpanLeakRule)

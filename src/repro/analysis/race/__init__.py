"""simrace: interprocedural yield-point atomicity analysis plus the
sim-time race sanitizer.

Two prongs against the same bug class — a cooperative sim process
reads shared state, yields (every ``yield`` is a preemption point, and
``Process.interrupt`` can throw *into* one), then acts on the stale
read:

* **Static** (:mod:`.callgraph`, :mod:`.shared`, :mod:`.rules`): a
  project-wide call graph with interprocedural may-yield summaries, a
  shared-state inventory seeded from ``sim.process(...)`` call sites,
  and the RACE001–RACE005 rules riding the flow plane's CFG/dataflow
  solver.  Surfaced via ``python -m repro racecheck``.
* **Dynamic** (:mod:`.sanitizer`): an opt-in
  :class:`~.sanitizer.RaceSanitizer` hooked into the kernel that
  instruments chosen shared objects and reports stale write-backs at
  sim time.  Surfaced via ``--sanitize`` on ``repro chaos`` and
  ``repro trace``.
"""

from .callgraph import FunctionInfo, ProjectModel, build_project_model
from .rules import RACE_RULES, race_rules
from .sanitizer import RaceReport, RaceSanitizer, instrument_cluster
from .shared import SharedStateInventory, build_inventory

__all__ = ["FunctionInfo", "ProjectModel", "build_project_model",
           "RACE_RULES", "race_rules", "RaceReport", "RaceSanitizer",
           "SharedStateInventory", "build_inventory",
           "instrument_cluster"]

"""Project-wide call graph and interprocedural may-yield summaries.

The kernel's delegation idiom makes yield points *interprocedural*:
``yield from pool.acquire(...)`` suspends the calling process exactly
when ``acquire`` (or something it delegates to) contains a plain
``yield``.  A function therefore **may-yield** when

* it contains a plain ``yield`` expression (it always hands an Event
  to the kernel), or
* it contains ``yield from g(...)`` where some resolvable ``g``
  may-yield (least fixpoint over the call graph — a recursion cycle
  with no plain yield stays non-yielding), or
* it contains ``yield from <unresolvable>`` (a computed callee or a
  generator-valued variable) — conservatively treated as yielding.

Call-site resolution is name/attribute based, in decreasing
precision:

1. ``f(...)`` — the module-level ``f`` of the same module, else every
   project function named ``f``;
2. ``self.m(...)`` — method ``m`` of the enclosing class, else every
   project function named ``m`` (the dynamic-dispatch fallback);
3. ``obj.m(...)`` / ``a.b.m(...)`` — every project function named
   ``m`` (union over possible receivers);
4. anything else (subscripts, calls-of-calls) — unresolved.

The same resolution feeds root reachability for the shared-state
inventory (:mod:`.shared`), where over-approximation errs toward
calling more state "shared" — the safe direction for a race checker.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..visitor import own_nodes

__all__ = ["FunctionInfo", "ModuleInfo", "ProjectModel",
           "build_project_model"]


@dataclass
class FunctionInfo:
    """One function or method in the scanned project."""

    path: str                     # normalized absolute path
    module: str                   # display name, e.g. "proxy"
    cls: Optional[str]            # enclosing class, None for functions
    name: str
    node: ast.AST                 # the FunctionDef / AsyncFunctionDef
    #: Resolved callees, as FunctionInfo keys (filled by the builder).
    callees: set = field(default_factory=set)
    may_yield: bool = False

    @property
    def key(self) -> tuple:
        return (self.path, self.cls or "", self.name,
                self.node.lineno)

    @property
    def qualname(self) -> str:
        """Stable display name for tests: ``module.Class.method``."""
        if self.cls:
            return f"{self.module}.{self.cls}.{self.name}"
        return f"{self.module}.{self.name}"


@dataclass
class ModuleInfo:
    """Per-file symbol tables."""

    path: str
    name: str
    tree: ast.Module
    #: module-level ``def`` name -> FunctionInfo
    functions: dict = field(default_factory=dict)
    #: class name -> {method name -> FunctionInfo}
    classes: dict = field(default_factory=dict)
    #: every FunctionInfo defined in this file (any nesting)
    all_functions: list = field(default_factory=list)


def _norm(path: str) -> str:
    return os.path.abspath(path).replace(os.sep, "/")


def _module_display_name(path: str) -> str:
    base = os.path.basename(path)
    return base[:-3] if base.endswith(".py") else base


def _collect_functions(module: ModuleInfo) -> None:
    """Index every function with its enclosing class (if any)."""

    def visit(node: ast.AST, cls: Optional[str], top_level: bool):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(module.path, module.name, cls,
                                    child.name, child)
                module.all_functions.append(info)
                if cls is not None:
                    module.classes.setdefault(cls, {})
                    if child.name not in module.classes[cls]:
                        module.classes[cls][child.name] = info
                elif top_level and child.name not in module.functions:
                    module.functions[child.name] = info
                # Nested defs belong to no class namespace of their own.
                visit(child, None, False)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name, False)
            else:
                visit(child, cls, top_level)

    visit(module.tree, None, True)


class ProjectModel:
    """The resolved project: functions, call edges, yield summaries.

    Built once per racecheck run by :func:`build_project_model`; the
    RACE rules and the shared-state inventory are its clients.
    """

    def __init__(self, modules: list[ModuleInfo]):
        self.modules: dict[str, ModuleInfo] = {m.path: m
                                               for m in modules}
        self.functions: dict[tuple, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        #: id(FunctionDef node) -> FunctionInfo, for rule lookups on
        #: the shared parsed trees.
        self._by_node: dict[int, FunctionInfo] = {}
        #: id(YieldFrom node) -> does delegating through it preempt?
        self._yf_preempts: dict[int, bool] = {}
        #: method/function bare name -> writes shared-looking state
        #: somewhere in the project (RACE002's mutating-call test).
        self._mutating_names: set[str] = set()
        for module in modules:
            for info in module.all_functions:
                self.functions[info.key] = info
                self.by_name.setdefault(info.name, []).append(info)
                self._by_node[id(info.node)] = info
        self._resolve_calls()
        self._solve_may_yield()
        self._classify_mutators()

    # -- lookups -----------------------------------------------------------
    def module_for(self, path: str) -> Optional[ModuleInfo]:
        return self.modules.get(_norm(path))

    def function_for_node(self, node: ast.AST) -> Optional[FunctionInfo]:
        return self._by_node.get(id(node))

    def yieldfrom_preempts(self, node: ast.YieldFrom) -> bool:
        """Whether ``yield from <node.value>`` is a preemption point.
        Unknown nodes (not seen at build time) are conservatively
        preempting."""
        return self._yf_preempts.get(id(node), True)

    def method_mutates(self, name: str) -> bool:
        """Whether *some* project function named ``name`` writes
        instance state — the dynamic-dispatch answer to "could this
        call mutate the object it is invoked on?"."""
        return name in self._mutating_names

    def summary(self) -> dict[str, bool]:
        """``qualname -> may_yield`` for every function (tests assert
        this exactly)."""
        return {info.qualname: info.may_yield
                for info in self.functions.values()}

    # -- call resolution ---------------------------------------------------
    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> Optional[list]:
        """FunctionInfos a call may dispatch to; ``None`` when the
        callee is entirely unresolvable (not even a name to go on)."""
        func = call.func
        module = self.modules.get(caller.path)
        if isinstance(func, ast.Name):
            if module is not None and func.id in module.functions:
                return [module.functions[func.id]]
            return self.by_name.get(func.id, [])
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and \
                    func.value.id == "self" and caller.cls is not None \
                    and module is not None:
                methods = module.classes.get(caller.cls, {})
                if func.attr in methods:
                    return [methods[func.attr]]
            return self.by_name.get(func.attr, [])
        return None

    def _resolve_calls(self) -> None:
        for info in self.functions.values():
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                targets = self.resolve_call(node, info)
                for target in targets or ():
                    info.callees.add(target.key)

    # -- may-yield fixpoint ------------------------------------------------
    def _solve_may_yield(self) -> None:
        delegations: dict[tuple, list[tuple]] = {}
        worklist: list[tuple] = []
        for info in self.functions.values():
            direct = False
            edges: list[tuple] = []
            for node in own_nodes(info.node):
                if isinstance(node, ast.Yield):
                    direct = True
                elif isinstance(node, ast.YieldFrom):
                    targets = None
                    if isinstance(node.value, ast.Call):
                        targets = self.resolve_call(node.value, info)
                    if not targets:
                        # Computed delegatee or bare generator
                        # variable: assume it suspends.
                        direct = True
                        self._yf_preempts[id(node)] = True
                    else:
                        edges.extend(t.key for t in targets)
            delegations[info.key] = edges
            if direct:
                info.may_yield = True
                worklist.append(info.key)
        # Least fixpoint: propagate may-yield backwards over the
        # delegation edges only (a plain call to a generator builds an
        # object; only ``yield from`` suspends the caller).
        dependants: dict[tuple, list[tuple]] = {}
        for key, edges in delegations.items():
            for target in edges:
                dependants.setdefault(target, []).append(key)
        while worklist:
            key = worklist.pop()
            for dependant in dependants.get(key, ()):
                info = self.functions[dependant]
                if not info.may_yield:
                    info.may_yield = True
                    worklist.append(dependant)
        # Second pass: classify every resolvable yield-from site.
        for info in self.functions.values():
            for node in own_nodes(info.node):
                if not isinstance(node, ast.YieldFrom) or \
                        id(node) in self._yf_preempts:
                    continue
                targets = self.resolve_call(node.value, info) \
                    if isinstance(node.value, ast.Call) else None
                self._yf_preempts[id(node)] = bool(targets) and any(
                    self.functions[t.key].may_yield for t in targets)

    # -- mutation classification ------------------------------------------
    def _classify_mutators(self) -> None:
        collection_mutators = _COLLECTION_MUTATORS
        for info in self.functions.values():
            if info.name in self._mutating_names:
                continue
            for node in own_nodes(info.node):
                if isinstance(node, (ast.Assign, ast.AugAssign,
                                     ast.AnnAssign)):
                    targets = node.targets \
                        if isinstance(node, ast.Assign) \
                        else [node.target]
                    if any(isinstance(t, (ast.Attribute, ast.Subscript))
                           for t in targets):
                        self._mutating_names.add(info.name)
                        break
                elif isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in collection_mutators:
                    self._mutating_names.add(info.name)
                    break

    # -- reachability ------------------------------------------------------
    def reachable_from(self, root: FunctionInfo) -> set:
        """Keys of every function reachable from ``root`` over the
        (over-approximated) call edges, root included."""
        seen = {root.key}
        stack = [root.key]
        while stack:
            info = self.functions[stack.pop()]
            for callee in info.callees:
                if callee not in seen:
                    seen.add(callee)
                    stack.append(callee)
        return seen

    def process_roots(self) -> list[tuple]:
        """``(FunctionInfo, multi_instance)`` for every generator
        registered at a ``*.process(gen(...))`` call site.

        ``multi_instance`` is True when the registration happens
        inside a loop — one site then spawns several concurrent
        processes of the same root (e.g. the driver's user loop) —
        or when the same root is registered at two distinct sites.
        """
        roots: dict[tuple, bool] = {}
        sites: dict[tuple, int] = {}
        for info in self.functions.values():
            loops = [node for node in own_nodes(info.node)
                     if isinstance(node, (ast.For, ast.While))]
            in_loop_ids: set[int] = set()
            for loop in loops:
                for sub in ast.walk(loop):
                    in_loop_ids.add(id(sub))
            for node in own_nodes(info.node):
                if not (isinstance(node, ast.Call) and
                        isinstance(node.func, ast.Attribute) and
                        node.func.attr == "process" and node.args):
                    continue
                generator = node.args[0]
                if not isinstance(generator, ast.Call):
                    continue
                targets = self.resolve_call(generator, info) or ()
                for target in targets:
                    multi = id(node) in in_loop_ids
                    roots[target.key] = roots.get(target.key,
                                                  False) or multi
                    sites[target.key] = sites.get(target.key, 0) + 1
        return [(self.functions[key],
                 multi or sites.get(key, 0) >= 2)
                for key, multi in sorted(roots.items())]


#: Method names that mutate the standard containers in place — the
#: conservative fallback when a call's receiver class is unknown.
_COLLECTION_MUTATORS = frozenset((
    "append", "appendleft", "add", "discard", "remove", "pop",
    "popleft", "clear", "update", "extend", "insert", "put",
    "setdefault",
))


def build_project_model(paths: Iterable[str],
                        loader=None) -> ProjectModel:
    """Parse ``paths`` (files) and build the resolved project model.

    ``loader(path) -> (source, tree or None)`` lets the runner share
    its parse cache; the default reads and parses each file.  Files
    that do not parse are skipped here — the per-file lint pass still
    reports them as PARSE findings.
    """
    modules: list[ModuleInfo] = []
    for path in paths:
        if loader is not None:
            _source, tree = loader(path)
        else:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                tree = None
        if tree is None:
            continue
        module = ModuleInfo(_norm(path), _module_display_name(path),
                            tree)
        _collect_functions(module)
        modules.append(module)
    return ProjectModel(modules)

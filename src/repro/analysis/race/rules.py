"""RACE rules: stale-read-across-yield atomicity violations.

All five rules share one premise: in the cooperative kernel every
``yield`` is a preemption point (and ``Process.interrupt`` can throw
*into* one), so knowledge about shared state (see :mod:`.shared`)
gathered before a yield is stale after it.  The first two rules ride
the flow plane's dataflow solver with the ``transform`` hook flipping
a "crossed a yield" flag on each fact; the rest are structural.

* **RACE001** — a shared attribute is read (into a local), a yield
  intervenes, and the attribute is written back without re-reading
  it: the classic lost update.
* **RACE002** — check-then-act: a branch tests shared state, a yield
  intervenes, and the branch body acts on the tested object (writes
  it, or calls something mutating on it).  Re-reading the state
  between the yield and the act — e.g. a poll loop whose header
  re-tests every iteration — refreshes the check and suppresses the
  finding.
* **RACE003** — iterating a shared collection with a yield inside the
  loop body: the collection can change under the iterator.  Iterating
  a copy (``list(shared)``) is the sanctioned fix and does not fire.
* **RACE004** — interrupt-unsafe publication: a shared write between
  ``try:`` and the first yield of a ``finally``-guarded region, with
  no restoring write in the ``finally``.  An interrupt landing in the
  yield unwinds to the cleanup, leaving the half-published write
  visible forever.
* **RACE005** — a may-yield call inside a region FLW003 proved must
  be atomic (an open ``begin``/``commit`` pairing): the transaction
  is open across a preemption.

Findings carry the *both-locations* payload (read + conflicting
write/yield) that :mod:`..sarif` renders as ``relatedLocations``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from ..visitor import LintContext, Rule, is_generator, qualified_name
from ..flow.cfg import CFGNode, node_expressions
from ..flow.dataflow import DataflowProblem, solve_forward
from ..flow.rules import (_assigned_value, _single_name_target,
                          _TransactionProblem, cached_cfg)
from .callgraph import _COLLECTION_MUTATORS, ProjectModel
from .shared import SharedStateInventory

__all__ = ["RACE_RULES", "race_rules", "StaleWriteBackRule",
           "CheckThenActRule", "SharedIterationRule",
           "InterruptPublicationRule", "AtomicRegionYieldRule"]

_OPAQUE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
           ast.ClassDef)


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk without descending into *nested* defs/classes/lambdas
    (the root itself is walked even when it is a function)."""
    root = node
    stack = [node]
    while stack:
        sub = stack.pop()
        yield sub
        if sub is not root and isinstance(sub, _OPAQUE):
            continue
        stack.extend(ast.iter_child_nodes(sub))


def _functions_with_classes(tree: ast.Module):
    """Every function in the module with its enclosing class name."""

    def visit(node: ast.AST, cls: Optional[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                yield child, cls
                yield from visit(child, None)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, child.name)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


class _FunctionView:
    """One function's race-relevant view: shared accesses and
    preemption points, resolved against the project model."""

    def __init__(self, function, cls: Optional[str],
                 model: ProjectModel, inventory: SharedStateInventory):
        self.function = function
        self.cls = cls
        self.model = model
        self.inventory = inventory

    # -- shared-chain classification --------------------------------------
    def chain_if_shared(self, attr: ast.Attribute) -> Optional[str]:
        chain = qualified_name(attr)
        if chain is None:
            return None
        on_self = isinstance(attr.value, ast.Name) and \
            attr.value.id == "self"
        cls = self.cls if on_self else None
        if on_self and cls is None:
            return None
        if self.inventory.is_shared(attr.attr, cls):
            return chain
        return None

    def shared_loads(self, expr: ast.AST):
        """``(chain, Attribute)`` for every shared read in ``expr``."""
        for sub in _walk_own(expr):
            if isinstance(sub, ast.Attribute) and \
                    isinstance(sub.ctx, ast.Load):
                chain = self.chain_if_shared(sub)
                if chain is not None:
                    yield chain, sub

    def shared_writes(self, expr: ast.AST):
        """``(chain, Attribute)`` for every shared store/delete."""
        for sub in _walk_own(expr):
            if isinstance(sub, ast.Attribute) and \
                    isinstance(sub.ctx, (ast.Store, ast.Del)):
                chain = self.chain_if_shared(sub)
                if chain is not None:
                    yield chain, sub

    # -- per-CFG-node accessors -------------------------------------------
    def loads_at(self, node: CFGNode):
        for expr in node_expressions(node):
            yield from self.shared_loads(expr)

    def writes_at(self, node: CFGNode):
        for expr in node_expressions(node):
            yield from self.shared_writes(expr)

    def preempts(self, node: CFGNode) -> bool:
        """Whether executing this node can suspend the process."""
        for expr in node_expressions(node):
            for sub in _walk_own(expr):
                if isinstance(sub, ast.Yield):
                    return True
                if isinstance(sub, ast.YieldFrom) and \
                        self.model.yieldfrom_preempts(sub):
                    return True
        return False

    def node_preemption_in(self, stmts) -> Optional[ast.AST]:
        """First preemption point (by line) inside a statement list."""
        best = None
        for stmt in stmts:
            for sub in _walk_own(stmt):
                if isinstance(sub, ast.Yield) or (
                        isinstance(sub, ast.YieldFrom) and
                        self.model.yieldfrom_preempts(sub)):
                    if best is None or sub.lineno < best.lineno:
                        best = sub
        return best


# --------------------------------------------------------- fact types
@dataclass(frozen=True)
class _Stale:
    """A local holding a shared read; crossed when yield_line > 0."""

    var: str
    chain: str
    line: int
    col: int
    yield_line: int = 0


@dataclass(frozen=True)
class _Check:
    """A branch condition over shared state."""

    chain: str
    line: int
    col: int
    yield_line: int = 0


def _cross(facts: frozenset, line: int) -> frozenset:
    return frozenset(
        fact if fact.yield_line else replace(fact, yield_line=line)
        for fact in facts)


class _CrossingProblem(DataflowProblem):
    """Shared transform: mark surviving facts at preemption nodes."""

    def __init__(self, view: _FunctionView):
        self.view = view

    def transform(self, node: CFGNode, facts: frozenset) -> frozenset:
        if not facts or not self.view.preempts(node):
            return facts
        line = node.stmt.lineno if node.stmt is not None else 0
        return _cross(facts, line)

    def _touched_chains(self, node: CFGNode) -> set:
        touched = {chain for chain, _ in self.view.loads_at(node)}
        touched |= {chain for chain, _ in self.view.writes_at(node)}
        return touched


class _StaleReadProblem(_CrossingProblem):
    def gen(self, node: CFGNode) -> frozenset:
        stmt = node.stmt
        target = _single_name_target(stmt) if stmt is not None else None
        if target is None:
            return frozenset()
        value = _assigned_value(stmt)
        if value is None:
            return frozenset()
        return frozenset(
            _Stale(target.id, chain, attr.lineno, attr.col_offset)
            for chain, attr in self.view.shared_loads(value))

    def kill(self, node: CFGNode, facts: frozenset) -> frozenset:
        if not facts:
            return frozenset()
        touched = self._touched_chains(node)
        target = _single_name_target(node.stmt) \
            if node.stmt is not None else None
        rebound = target.id if target is not None else None
        return frozenset(fact for fact in facts
                         if fact.chain in touched
                         or fact.var == rebound)


class _CheckProblem(_CrossingProblem):
    def gen(self, node: CFGNode) -> frozenset:
        stmt = node.stmt
        if not isinstance(stmt, (ast.If, ast.While)):
            return frozenset()
        return frozenset(
            _Check(chain, attr.lineno, attr.col_offset)
            for chain, attr in self.view.shared_loads(stmt.test))

    def kill(self, node: CFGNode, facts: frozenset) -> frozenset:
        if not facts:
            return frozenset()
        touched = self._touched_chains(node)
        return frozenset(fact for fact in facts
                         if fact.chain in touched)


# ----------------------------------------------------------- rule base
class _RaceRule(Rule):
    """Project-aware rule: constructed with the resolved model.

    ``purity`` (a :class:`~..taint.purity.PuritySummaries`, wired in
    by ``repro check``) upgrades the name-union mutation heuristics to
    precise call resolution: a call every resolved target of which is
    proven pure stops counting as a state-changing act."""

    def __init__(self, model: Optional[ProjectModel] = None,
                 inventory: Optional[SharedStateInventory] = None,
                 purity=None):
        self.model = model
        self.inventory = inventory
        self.purity = purity

    def check(self, context: LintContext) -> None:
        if self.model is None or self.inventory is None:
            return  # not wired to a project: nothing to prove
        for function, cls in _functions_with_classes(context.tree):
            if not is_generator(function):
                continue
            view = _FunctionView(function, cls, self.model,
                                 self.inventory)
            self.check_function(context, view)

    def check_function(self, context: LintContext,
                       view: _FunctionView) -> None:
        raise NotImplementedError

    def report_pair(self, context: LintContext, node: ast.AST,
                    message: str, related: tuple) -> None:
        context.report(node, self.rule_id, message, hint=self.hint,
                       related=related)


def _read_loc(context, fact, chain) -> tuple:
    return (context.path, fact.line, fact.col,
            f"'{chain}' read here")


def _yield_loc(context, line: int) -> tuple:
    return (context.path, line, 0, "yield point crossed here")


class StaleWriteBackRule(_RaceRule):
    rule_id = "RACE001"
    description = "shared attribute read, yielded across, then " \
                  "written back without re-read (lost update)"
    hint = "re-read the attribute after the yield (and re-validate), " \
           "or restructure so read and write share one atomic step"

    def check_function(self, context, view) -> None:
        if not any(True for _ in view.shared_loads(view.function)):
            return
        cfg = cached_cfg(view.function)
        result = solve_forward(cfg, _StaleReadProblem(view))
        seen = set()
        for node in cfg.nodes:
            writes = list(view.writes_at(node))
            if not writes:
                continue
            entering = result.entering(node)
            for chain, wnode in writes:
                for fact in sorted(entering,
                                   key=lambda f: (f.line, f.col)):
                    if fact.chain != chain or not fact.yield_line:
                        continue
                    key = (wnode.lineno, wnode.col_offset, chain)
                    if key in seen:
                        continue
                    seen.add(key)
                    self.report_pair(
                        context, wnode,
                        f"shared {chain!r} read at line {fact.line} "
                        f"is written back after a yield at line "
                        f"{fact.yield_line} without re-reading it",
                        related=(_read_loc(context, fact, chain),
                                 _yield_loc(context,
                                            fact.yield_line)))
                    break


def _related_chains(act: str, checked: str) -> bool:
    """Does acting on ``act`` invalidate a check of ``checked``?"""
    if act == checked:
        return True
    return act.startswith(checked + ".") or \
        checked.startswith(act + ".")


class CheckThenActRule(_RaceRule):
    rule_id = "RACE002"
    description = "branch on shared state, then act after a yield " \
                  "without re-checking"
    hint = "re-test the condition after the yield, or move the act " \
           "into the same atomic step as the check"

    def check_function(self, context, view) -> None:
        if not any(isinstance(node, (ast.If, ast.While))
                   for node in _walk_own(view.function)):
            return
        if not any(True for _ in view.shared_loads(view.function)):
            return
        cfg = cached_cfg(view.function)
        result = solve_forward(cfg, _CheckProblem(view))
        seen = set()
        for node in cfg.nodes:
            acts = self._acts_at(view, node)
            if not acts:
                continue
            entering = result.entering(node)
            for act_chain, anode, what in acts:
                for fact in sorted(entering,
                                   key=lambda f: (f.line, f.col)):
                    if not fact.yield_line or \
                            not _related_chains(act_chain, fact.chain):
                        continue
                    key = (anode.lineno, anode.col_offset, fact.chain)
                    if key in seen:
                        continue
                    seen.add(key)
                    self.report_pair(
                        context, anode,
                        f"{fact.chain!r} was checked at line "
                        f"{fact.line}, but a yield at line "
                        f"{fact.yield_line} precedes this {what} — "
                        f"the check may be stale",
                        related=(_read_loc(context, fact, fact.chain),
                                 _yield_loc(context,
                                            fact.yield_line)))
                    break

    def _acts_at(self, view, node: CFGNode) -> list:
        """``(chain, node, kind)`` for each state-changing action."""
        acts = [(chain, wnode, "write")
                for chain, wnode in view.writes_at(node)]
        for expr in node_expressions(node):
            for sub in _walk_own(expr):
                if not (isinstance(sub, ast.Call) and
                        isinstance(sub.func, ast.Attribute)):
                    continue
                receiver = qualified_name(sub.func.value)
                if receiver is None:
                    continue
                name = sub.func.attr
                if name in _COLLECTION_MUTATORS or \
                        view.model.method_mutates(name):
                    if self.purity is not None and \
                            self._proven_pure(view, sub):
                        continue
                    acts.append((receiver, sub,
                                 f"mutating call {name}()"))
        return acts

    def _proven_pure(self, view, call: ast.Call) -> bool:
        """Precise override of the name-union heuristic: when purity
        summaries prove every resolved target of this call pure (and
        yield-free), it is not an act — e.g. a class whose ``update``
        method only *reads* state no longer trips the collection-
        mutator fallback."""
        caller = view.model.function_for_node(view.function)
        return self.purity.call_verdict(call, caller=caller) == "pure"


_VIEW_METHODS = frozenset(("values", "items", "keys"))


class SharedIterationRule(_RaceRule):
    rule_id = "RACE003"
    description = "iteration over a shared collection spans a yield"
    hint = "iterate a snapshot instead: list(shared) / tuple(shared)"

    def _iter_chain(self, view, iter_expr) -> Optional[str]:
        if isinstance(iter_expr, ast.Attribute):
            return view.chain_if_shared(iter_expr)
        if isinstance(iter_expr, ast.Call) and \
                isinstance(iter_expr.func, ast.Attribute) and \
                iter_expr.func.attr in _VIEW_METHODS and \
                isinstance(iter_expr.func.value, ast.Attribute):
            chain = view.chain_if_shared(iter_expr.func.value)
            if chain is not None:
                return f"{chain}.{iter_expr.func.attr}()"
        return None

    def check_function(self, context, view) -> None:
        for node in _walk_own(view.function):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            chain = self._iter_chain(view, node.iter)
            if chain is None:
                continue
            preemption = view.node_preemption_in(node.body)
            if preemption is None:
                continue
            self.report_pair(
                context, node,
                f"iterating shared {chain!r} across a yield at line "
                f"{preemption.lineno} — the collection can change "
                f"under the iterator",
                related=((context.path, node.iter.lineno,
                          node.iter.col_offset,
                          f"'{chain}' iterated here"),
                         _yield_loc(context, preemption.lineno)))


class InterruptPublicationRule(_RaceRule):
    rule_id = "RACE004"
    description = "shared write between try: and its first yield is " \
                  "not restored by the finally"
    hint = "publish after the last yield, or roll the write back in " \
           "the finally block"

    def check_function(self, context, view) -> None:
        for node in _walk_own(view.function):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            preemption = view.node_preemption_in(node.body)
            if preemption is None:
                continue
            restored = {chain for stmt in node.finalbody
                        for chain, _ in view.shared_writes(stmt)}
            for stmt in node.body:
                for chain, wnode in view.shared_writes(stmt):
                    if wnode.lineno >= preemption.lineno or \
                            chain in restored:
                        continue
                    self.report_pair(
                        context, wnode,
                        f"shared {chain!r} is written before the "
                        f"first yield (line {preemption.lineno}) of "
                        f"a finally-guarded region; an interrupt "
                        f"leaves the write published with the "
                        f"operation half done",
                        related=((context.path, wnode.lineno,
                                  wnode.col_offset,
                                  f"'{chain}' published here"),
                                 _yield_loc(context,
                                            preemption.lineno)))


class AtomicRegionYieldRule(_RaceRule):
    rule_id = "RACE005"
    description = "yield point inside an open begin/commit region"
    hint = "commit (or roll back) before yielding, or move the " \
           "yield outside the transaction"

    def check_function(self, context, view) -> None:
        if not any(isinstance(node, ast.Call) and
                   isinstance(node.func, ast.Attribute) and
                   node.func.attr == "begin"
                   for node in _walk_own(view.function)):
            return
        cfg = cached_cfg(view.function)
        result = solve_forward(cfg, _TransactionProblem())
        best: dict = {}
        for node in cfg.nodes:
            if node.stmt is None or not view.preempts(node):
                continue
            for claim in result.entering(node):
                key = (claim.receiver, claim.line, claim.col)
                if key not in best or \
                        node.stmt.lineno < best[key][0]:
                    best[key] = (node.stmt.lineno, node.stmt)
        for (receiver, line, col), (yline, stmt) in \
                sorted(best.items()):
            anchor = ast.Pass()
            anchor.lineno = yline
            anchor.col_offset = stmt.col_offset
            self.report_pair(
                context, anchor,
                f"transaction begun on {receiver!r} at line {line} "
                f"is still open across this yield — the region "
                f"FLW003 proves atomic is preempted here",
                related=((context.path, line, col,
                          f"'{receiver}.begin()' here"),
                         _yield_loc(context, yline)))


RACE_RULES = (StaleWriteBackRule, CheckThenActRule,
              SharedIterationRule, InterruptPublicationRule,
              AtomicRegionYieldRule)


def race_rules(model: ProjectModel,
               inventory: Optional[SharedStateInventory] = None,
               purity=None) -> list:
    """One instance of every RACE rule, wired to ``model`` (and,
    under ``repro check``, to the purity summaries)."""
    from .shared import build_inventory
    if inventory is None:
        inventory = build_inventory(model)
    return [cls(model, inventory, purity=purity) for cls in RACE_RULES]

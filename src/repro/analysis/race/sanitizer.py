"""Dynamic prong: a sim-time race sanitizer for instrumented objects.

The static RACE rules prove what *may* go wrong; the sanitizer watches
what *does*.  Chosen shared objects (the connection pool, the proxy's
routing table, replication positions, ...) get a shim subclass whose
``__getattribute__``/``__setattr__`` route reads and writes of the
instrumented fields through the sanitizer, tagged with the currently
active sim process and its *resumption epoch* (bumped by the kernel
hook in ``Process._step`` each time the process re-enters).

What gets reported — **stale write-back / lost update**, the dynamic
twin of RACE001: process A writes field F, and

1. A last read F in an *earlier* epoch (i.e. A yielded at least once
   since reading the value it is presumably acting on), and
2. F's version counter moved since that read (some other process
   wrote F in between).

Both conditions are required.  Condition 1 alone would flag every
poll loop (pollers re-read each epoch and never trip it); condition 2
alone would flag every unconflicted write.  A write with no prior
read by the writer is a *blind* write (initialisation, publication)
and is never a lost update.  This deliberately tighter-than-literal
semantics is what lets a correct drill run report-free, which the CI
sanitizer-smoke gate depends on.

Reports carry sim time, both process names, and the ``label.field``
path; each is also emitted as a ``race.stale_write`` instant span so
traces show where in the timeline the race sat.  Instrumentation
never changes scheduling or values — with zero reports, a sanitized
drill's recovery report is byte-identical to the unsanitized run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["RaceReport", "RaceSanitizer", "instrument_cluster"]


@dataclass(frozen=True)
class RaceReport:
    """One detected stale write-back."""

    time: float        # sim time of the stale write
    field_path: str    # "<label>.<field>", e.g. "pool.available"
    writer: str        # process performing the stale write
    other: str         # process whose intervening write is lost
    read_time: float   # sim time the writer last read the field
    message: str = ""

    def render(self) -> str:
        return (f"[t={self.time:.6f}] RACE {self.field_path}: "
                f"{self.writer!r} writes a value derived from its "
                f"read at t={self.read_time:.6f}, overwriting "
                f"{self.other!r}'s intervening update")


@dataclass
class _FieldState:
    """Version history of one instrumented field on one object."""

    version: int = 0
    last_writer: str = "<setup>"
    #: per-process last-read bookkeeping:
    #: name -> (epoch_at_read, version_at_read, sim_time_at_read)
    reads: dict = field(default_factory=dict)


class RaceSanitizer:
    """Opt-in dynamic race detector for the cooperative kernel.

    Usage::

        sanitizer = RaceSanitizer()
        sanitizer.attach(sim)            # installs the kernel hook
        sanitizer.instrument(pool, ("available", "busy"), "pool")
        ...run the simulation...
        for report in sanitizer.reports: ...
    """

    def __init__(self):
        self.sim = None
        self.reports: list[RaceReport] = []
        #: process name -> resumption epoch (monotone per process)
        self._epochs: dict = {}
        #: id(obj) -> {field -> _FieldState}
        self._state: dict = {}
        #: id(obj) -> (label, frozenset(fields)); also keeps the
        #: instrumented objects alive so ids stay unambiguous
        self._instrumented: dict = {}
        self._keepalive: list = []
        self._shim_classes: dict = {}

    # -- wiring ------------------------------------------------------------
    def attach(self, sim) -> "RaceSanitizer":
        """Install this sanitizer on ``sim`` (kernel resumption hook)."""
        self.sim = sim
        sim.sanitizer = self
        return self

    def on_resume(self, process) -> None:
        """Kernel hook: ``process`` is about to re-enter its generator."""
        self._epochs[process.name] = \
            self._epochs.get(process.name, 0) + 1

    # -- instrumentation ---------------------------------------------------
    def instrument(self, obj: Any, fields, label: str) -> Any:
        """Route reads/writes of ``fields`` on ``obj`` through the
        sanitizer by swapping in a shim subclass.  Returns ``obj``.

        Only works for ordinary (non-``__slots__``) classes; the
        object's behaviour is otherwise unchanged.
        """
        fields = frozenset(fields)
        shim = self._shim_class(type(obj))
        object.__setattr__(obj, "__class__", shim)
        self._instrumented[id(obj)] = (label, fields)
        self._keepalive.append(obj)
        states = self._state.setdefault(id(obj), {})
        for name in fields:
            states.setdefault(name, _FieldState())
        return obj

    def _shim_class(self, original: type) -> type:
        shim = self._shim_classes.get(original)
        if shim is not None:
            return shim
        sanitizer = self

        def __getattribute__(inner_self, name):
            value = object.__getattribute__(inner_self, name)
            entry = sanitizer._instrumented.get(id(inner_self))
            if entry is not None and name in entry[1]:
                sanitizer._on_read(inner_self, name)
            return value

        def __setattr__(inner_self, name, value):
            entry = sanitizer._instrumented.get(id(inner_self))
            if entry is not None and name in entry[1]:
                sanitizer._on_write(inner_self, name)
            object.__setattr__(inner_self, name, value)

        shim = type(original.__name__, (original,), {
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
            "__module__": original.__module__,
        })
        self._shim_classes[original] = shim
        return shim

    # -- event handlers ----------------------------------------------------
    def _active(self) -> Optional[str]:
        if self.sim is None:
            return None
        process = self.sim.active_process
        return process.name if process is not None else None

    def _on_read(self, obj, name: str) -> None:
        reader = self._active()
        if reader is None:
            return
        state = self._state[id(obj)].setdefault(name, _FieldState())
        state.reads[reader] = (self._epochs.get(reader, 0),
                               state.version, self.sim.now)

    def _on_write(self, obj, name: str) -> None:
        writer = self._active()
        state = self._state[id(obj)].setdefault(  # simtaint: blessed=object-identity-keys-never-serialized
            name, _FieldState())
        if writer is None:
            state.version += 1
            state.last_writer = "<setup>"
            return
        record = state.reads.get(writer)
        if record is not None:
            read_epoch, read_version, read_time = record
            stale = read_epoch < self._epochs.get(writer, 0)
            conflicted = read_version < state.version
            if stale and conflicted:
                self._report(obj, name, writer, state, read_time)
        state.version += 1
        state.last_writer = writer
        # The write consumes the read that informed it.  Without this
        # a blind writer (one that never reads the field, e.g. the SQL
        # thread publishing positions) would inherit a phantom read
        # from its own previous write and be flagged; a genuine lost
        # update needs a fresh read before the next stale write.
        state.reads.pop(writer, None)

    def _report(self, obj, name: str, writer: str,
                state: _FieldState, read_time: float) -> None:
        label = self._instrumented[id(obj)][0]  # simtaint: blessed=object-identity-keys-never-serialized
        report = RaceReport(
            time=self.sim.now,
            field_path=f"{label}.{name}",
            writer=writer,
            other=state.last_writer,
            read_time=read_time,
        )
        self.reports.append(report)
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.instant(f"race.stale_write:{label}.{name}",
                           category="race", writer=writer,
                           other=state.last_writer,
                           read_time=read_time)

    # -- summaries ---------------------------------------------------------
    def summary(self) -> dict:
        """JSON-ready digest for CLI output."""
        return {
            "instrumented": sorted(
                label for label, _ in self._instrumented.values()),
            "reportCount": len(self.reports),
            "reports": [
                {"time": report.time,
                 "fieldPath": report.field_path,
                 "writer": report.writer,
                 "other": report.other,
                 "readTime": report.read_time}
                for report in self.reports],
        }


def instrument_cluster(sanitizer: RaceSanitizer, pool=None,
                       proxy=None, manager=None) -> None:
    """Instrument the canonical drill/experiment shared surfaces:
    the connection pool's counters, the proxy's routing table and the
    replication manager's master/slave membership plus every slave's
    replication positions — exactly the state the static inventory
    calls shared."""
    if pool is not None:
        sanitizer.instrument(
            pool, ("total_borrows", "total_wait_time", "timeouts"),
            "pool")
    if proxy is not None:
        sanitizer.instrument(
            proxy, ("master", "slaves", "_evicted", "_cursor",
                    "reads_routed", "writes_routed", "sticky_reads"),
            "proxy")
    if manager is not None:
        sanitizer.instrument(manager, ("master", "slaves"), "manager")
        for slave in manager.slaves:
            sanitizer.instrument(
                slave, ("applied_position", "start_position"),
                f"slave.{slave.name}")

"""Shared-state inventory: which attributes are raceable.

An attribute is *shared* when it can be touched by more than one
registered sim process and is mutated under at least one of them —
precisely the state a yield point can tear.  Seeding:

1. **Process roots** come from ``*.process(gen(...))`` call sites
   (:meth:`~.callgraph.ProjectModel.process_roots`); a site inside a
   loop counts as multiple concurrent instances of the same root.
2. **Reachability** tags every function the root can call (the same
   over-approximated call edges the yield summaries use).
3. **Accesses**: within tagged functions, ``self.a`` maps to the
   enclosing class precisely; ``obj.a`` (parameters, collaborators)
   maps to every class that *defines* ``a`` (assigns ``self.a``
   somewhere) — the name-based join matching the resolver's
   dynamic-dispatch fallback.

``(class, attr)`` is shared when its accessing roots have combined
multiplicity >= 2 (two distinct roots, or one multi-instance root)
and at least one tagged function writes it.  Everything else —
``__init__``-only fields, per-process scratch, constants — stays
private, which is what keeps the RACE rules' false-positive rate at a
usable level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from ..visitor import own_nodes
from .callgraph import _COLLECTION_MUTATORS, FunctionInfo, ProjectModel

__all__ = ["SharedStateInventory", "build_inventory"]


@dataclass
class _AttrRecord:
    roots: set = field(default_factory=set)
    multi_instance: bool = False
    written: bool = False


class SharedStateInventory:
    """Queryable result: is ``(class, attr)`` raceable shared state?"""

    def __init__(self):
        #: ``(class_name, attr) -> _AttrRecord``
        self._records: dict[tuple, _AttrRecord] = {}
        #: attr -> class names defining it (``self.attr = ...`` sites)
        self.defining_classes: dict[str, set] = {}

    # -- queries -----------------------------------------------------------
    def is_shared(self, attr: str, cls: Optional[str] = None) -> bool:
        """Shared as seen from an access site.

        ``cls`` is the enclosing class for ``self.attr`` accesses
        (precise lookup); ``None`` for accesses through an arbitrary
        receiver, which match any class sharing that attribute name.
        """
        if cls is not None:
            return self._shared(self._records.get((cls, attr)))
        return any(self._shared(record)
                   for (_cls, name), record in self._records.items()
                   if name == attr)

    def shared_pairs(self) -> set:
        """Every shared ``(class, attr)`` — tests assert this."""
        return {pair for pair, record in self._records.items()
                if self._shared(record)}

    def roots_of(self, cls: str, attr: str) -> set:
        record = self._records.get((cls, attr))
        return set(record.roots) if record is not None else set()

    @staticmethod
    def _shared(record: Optional[_AttrRecord]) -> bool:
        if record is None or not record.written:
            return False
        if len(record.roots) >= 2:
            return True
        return bool(record.roots) and record.multi_instance

    # -- construction ------------------------------------------------------
    def _record(self, cls: str, attr: str) -> _AttrRecord:
        return self._records.setdefault((cls, attr), _AttrRecord())

    def note_access(self, cls: Optional[str], attr: str, root_key,
                    multi: bool, is_write: bool) -> None:
        classes = [cls] if cls is not None else sorted(
            self.defining_classes.get(attr, ()))
        for owner in classes:
            record = self._record(owner, attr)
            record.roots.add(root_key)
            record.multi_instance = record.multi_instance or multi
            record.written = record.written or is_write


def _self_attr_writes(function: ast.AST):
    """``attr`` names stored on ``self`` anywhere in the function."""
    for node in own_nodes(function):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    yield target.attr


def _attribute_accesses(function: ast.AST):
    """``(attr, receiver_is_self, is_write)`` for every direct
    attribute access in the function body.  A collection-mutator call
    on an attribute (``self.items.discard(x)``) counts as a write —
    set/list-typed shared state is mutated exactly that way."""
    for node in own_nodes(function):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _COLLECTION_MUTATORS and \
                isinstance(node.func.value, ast.Attribute):
            inner = node.func.value
            on_self = isinstance(inner.value, ast.Name) and \
                inner.value.id == "self"
            yield inner.attr, on_self, True
        if not isinstance(node, ast.Attribute):
            continue
        on_self = isinstance(node.value, ast.Name) and \
            node.value.id == "self"
        is_write = isinstance(node.ctx, (ast.Store, ast.Del))
        yield node.attr, on_self, is_write


def build_inventory(model: ProjectModel) -> SharedStateInventory:
    inventory = SharedStateInventory()
    # 1. Which classes define which attributes (any method counts —
    #    __init__ establishes the field even if processes mutate it).
    for info in model.functions.values():
        if info.cls is None:
            continue
        for attr in _self_attr_writes(info.node):
            inventory.defining_classes.setdefault(attr,
                                                  set()).add(info.cls)
    # 2. Tag functions with the roots that reach them, then record
    #    every attribute access made under a process.
    for root, multi in model.process_roots():
        for key in model.reachable_from(root):
            info: FunctionInfo = model.functions[key]
            for attr, on_self, is_write in \
                    _attribute_accesses(info.node):
                cls = info.cls if on_self else None
                if on_self and cls is None:
                    continue  # 'self' outside a class: skip
                inventory.note_access(cls, attr, root.key, multi,
                                      is_write)
    return inventory

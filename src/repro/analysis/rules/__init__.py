"""Rule implementations, grouped by family (DET / SIM / SQL)."""

from . import determinism, simsafety, sqlcheck

__all__ = ["determinism", "simsafety", "sqlcheck"]

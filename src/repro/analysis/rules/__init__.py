"""Rule implementations, grouped by family (DET / SIM / SQL / OBS)."""

from . import determinism, obsnames, simsafety, sqlcheck

__all__ = ["determinism", "obsnames", "simsafety", "sqlcheck"]

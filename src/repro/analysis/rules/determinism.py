"""DET rules: every source of nondeterminism is banned in ``src/repro``.

The reproduction's replication-delay measurements are microsecond
scale; any wall-clock read, OS entropy, global RNG state or
memory-address-dependent iteration order silently breaks the
guarantee that the same seed produces byte-identical results.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..visitor import LintContext, Rule, qualified_name

__all__ = ["ImportResolver", "WallClockRule", "StdlibRandomRule",
           "OsEntropyRule", "NumpyGlobalRngRule", "SetIterationRule",
           "IdOrderingRule", "RULES"]


class ImportResolver:
    """Resolve local names through the module's imports.

    ``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``; ``from time import time as wall``
    makes ``wall`` resolve to ``time.time``.
    """

    def __init__(self, tree: ast.Module):
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and \
                    not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a Name/Attribute chain, with
        the leading segment mapped through the import table."""
        dotted = qualified_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        mapped = self._aliases.get(head)
        if mapped is None:
            return dotted
        return f"{mapped}.{rest}" if rest else mapped


class _CallRule(Rule):
    """Base for rules that ban calls to specific dotted names."""

    def check(self, context: LintContext) -> None:
        resolver = ImportResolver(context.tree)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                resolved = resolver.resolve(node.func)
                if resolved is not None:
                    self.check_call(context, node, resolved)

    def check_call(self, context: LintContext, node: ast.Call,
                   resolved: str) -> None:
        raise NotImplementedError


class WallClockRule(_CallRule):
    """DET001: no wall-clock reads — simulated time is ``sim.now``."""

    rule_id = "DET001"
    description = "wall-clock time read in simulation code"
    hint = "use Simulator.now (simulated seconds) instead of the " \
           "host clock"

    BANNED = frozenset((
        "time.time", "time.time_ns", "time.monotonic",
        "time.monotonic_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.clock_gettime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    ))

    def check_call(self, context, node, resolved):
        if resolved in self.BANNED:
            self.report(context, node,
                        f"call to {resolved}() reads the host clock")


class StdlibRandomRule(Rule):
    """DET002: the stdlib ``random`` module is global, unseeded state;
    all draws must come from RandomStreams."""

    rule_id = "DET002"
    description = "stdlib random module used instead of RandomStreams"
    hint = "draw from a named repro.sim.rng.RandomStreams stream"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        self.report(context, node,
                                    "import of the stdlib random module")
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level and \
                        node.module.split(".")[0] == "random":
                    self.report(context, node,
                                "import from the stdlib random module")


class OsEntropyRule(_CallRule):
    """DET003: no OS entropy sources."""

    rule_id = "DET003"
    description = "OS entropy source (urandom/uuid/secrets)"
    hint = "derive values from a named RandomStreams stream"

    BANNED = frozenset(("os.urandom", "uuid.uuid1", "uuid.uuid4"))

    def check_call(self, context, node, resolved):
        if resolved in self.BANNED or resolved.startswith("secrets."):
            self.report(context, node,
                        f"call to {resolved}() draws OS entropy")


class NumpyGlobalRngRule(_CallRule):
    """DET004: no numpy global-state RNG and no unseeded generators."""

    rule_id = "DET004"
    description = "numpy global or unseeded RNG"
    hint = "build generators via RandomStreams (SeedSequence-derived)"

    #: Constructors that are fine as long as they are seeded — the
    #: RandomStreams implementation itself uses these.
    ALLOWED = frozenset((
        "numpy.random.Generator", "numpy.random.PCG64",
        "numpy.random.SeedSequence", "numpy.random.BitGenerator",
        "numpy.random.Philox", "numpy.random.SFC64",
    ))

    def check_call(self, context, node, resolved):
        if not resolved.startswith("numpy.random."):
            return
        if resolved in self.ALLOWED:
            return
        if resolved == "numpy.random.default_rng":
            unseeded = not node.args or (
                isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None)
            if unseeded:
                self.report(context, node,
                            "numpy.random.default_rng() without a seed "
                            "is entropy-seeded")
            return
        self.report(context, node,
                    f"{resolved}() uses numpy's global RNG state")


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and \
        isinstance(node.func, ast.Name) and \
        node.func.id in ("set", "frozenset")


class SetIterationRule(Rule):
    """DET005: iterating a set visits elements in hash order, which
    varies across processes (PYTHONHASHSEED) for str keys — poison for
    anything feeding the event queue or metrics aggregation."""

    rule_id = "DET005"
    description = "iteration over a set (hash order)"
    hint = "iterate sorted(...) of the set, or use a list/dict"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) and \
                    _is_set_expression(node.iter):
                self.report(context, node.iter,
                            "for-loop iterates a set in hash order")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for comp in node.generators:
                    if _is_set_expression(comp.iter):
                        self.report(context, comp.iter,
                                    "comprehension iterates a set in "
                                    "hash order")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("list", "tuple") and \
                    len(node.args) == 1 and \
                    _is_set_expression(node.args[0]):
                self.report(context, node,
                            f"{node.func.id}() of a set captures hash "
                            f"order")


def _lambda_calls_id(node: ast.Lambda) -> bool:
    return any(isinstance(sub, ast.Call)
               and isinstance(sub.func, ast.Name) and sub.func.id == "id"
               for sub in ast.walk(node.body))


class IdOrderingRule(Rule):
    """DET006: ordering by ``id()`` is memory-address ordering."""

    rule_id = "DET006"
    description = "ordering keyed on id() (memory addresses)"
    hint = "sort on a stable field (name, sequence number, time)"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            is_sort = (isinstance(node.func, ast.Name)
                       and node.func.id == "sorted") or \
                      (isinstance(node.func, ast.Attribute)
                       and node.func.attr == "sort")
            if not is_sort:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                if isinstance(value, ast.Name) and value.id == "id":
                    self.report(context, node,
                                "sort keyed directly on id()")
                elif isinstance(value, ast.Lambda) and \
                        _lambda_calls_id(value):
                    self.report(context, node,
                                "sort key lambda calls id()")


RULES = (WallClockRule, StdlibRandomRule, OsEntropyRule,
         NumpyGlobalRngRule, SetIterationRule, IdOrderingRule)

"""OBS rules: observability call sites must stay greppable.

The analysis plane (``repro.obs.analyze``) joins spans and metrics *by
name* — ``repl.ship`` spans to ``repl.relay`` spans, gauge
``slave.<name>.relative_delay_ms`` to the waterfall population.  A
metric or span whose name is computed from opaque runtime values can
never be joined (or grepped) reliably, so every name argument must
carry at least one literal fragment: a string constant, a literal
concatenation, an f-string with a constant part (``f"{prefix}.cpu"``
is fine — the ``.cpu`` tail is greppable), or a module-level string
constant.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..visitor import LintContext, Rule, qualified_name

__all__ = ["MetricNameLiteralRule", "RULES"]

#: method name -> receiver tails it applies to (lower-cased substring
#: match on the last segment of the receiver chain).
_METRIC_METHODS = ("counter", "gauge", "histogram")
_SPAN_METHODS = ("span", "open_span", "instant")


def _has_literal_fragment(node: ast.AST,
                          constants: dict[str, str]) -> bool:
    """True when the expression contains at least one compile-time
    string fragment an analyst could grep for."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str)
    if isinstance(node, ast.JoinedStr):
        return any(isinstance(part, ast.Constant)
                   and isinstance(part.value, str) and part.value
                   for part in node.values)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _has_literal_fragment(node.left, constants) or \
            _has_literal_fragment(node.right, constants)
    if isinstance(node, ast.Name):
        return node.id in constants
    return False


def _name_argument(call: ast.Call) -> Optional[ast.AST]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


class MetricNameLiteralRule(Rule):
    """OBS002: metric/span names must contain a literal fragment."""

    rule_id = "OBS002"
    description = "metric or span name built entirely from runtime " \
                  "values"
    hint = "anchor the name with a literal part (constant, " \
           "f\"{prefix}.suffix\", or a module-level NAME constant) " \
           "so traces stay greppable and joinable"

    def check(self, context: LintContext) -> None:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and
                    isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            receiver = qualified_name(node.func.value)
            if receiver is None:
                continue
            tail = receiver.rsplit(".", 1)[-1].lower()
            if method in _METRIC_METHODS:
                if "metrics" not in tail and "registry" not in tail:
                    continue
            elif method in _SPAN_METHODS:
                if not tail.endswith("tracer"):
                    continue
            else:
                continue
            name = _name_argument(node)
            if name is None:
                continue
            if not _has_literal_fragment(name,
                                         context.module_constants):
                self.report(
                    context, name,
                    f"{receiver}.{method}() name has no literal "
                    f"fragment — it cannot be grepped or joined "
                    f"against")


RULES = (MetricNameLiteralRule,)

"""SIM rules: simulation processes must stay inside the simulation.

A *sim process* is a generator function that yields kernel events
(detected by at least one ``yield`` of a call to an event factory such
as ``sim.timeout(...)`` or ``sim.event()``, or of a variable assigned
from one).  Inside such a function, real time, real I/O and non-event
yields all break the discrete-event abstraction: the kernel would
either block the whole simulation or crash at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..visitor import (LintContext, Rule, iter_functions, own_nodes,
                       qualified_name)
from .determinism import ImportResolver

__all__ = ["is_sim_process", "RealSleepRule", "RealIoRule",
           "NonEventYieldRule", "DoubleTriggerRule", "RULES"]

#: Simulator / Resource methods whose return value is an Event the
#: kernel knows how to wait on.
EVENT_FACTORIES = frozenset((
    "timeout", "event", "process", "any_of", "all_of",
    "acquire", "request", "get", "put", "wait",
))


def _yields_of(function: ast.AST) -> Iterator[ast.Yield]:
    for node in own_nodes(function):
        if isinstance(node, ast.Yield):
            yield node


def _event_factory_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and \
        isinstance(node.func, ast.Attribute) and \
        node.func.attr in EVENT_FACTORIES


def is_sim_process(function: ast.AST) -> bool:
    """True when the generator provably yields kernel events."""
    event_vars: set[str] = set()
    for node in own_nodes(function):
        if isinstance(node, ast.Assign) and \
                _event_factory_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    event_vars.add(target.id)
    for yielded in _yields_of(function):
        value = yielded.value
        if value is None:
            continue
        if _event_factory_call(value):
            return True
        if isinstance(value, ast.Name) and value.id in event_vars:
            return True
        # `yield a | b` / `yield a & b` — AnyOf/AllOf composition.
        if isinstance(value, ast.BinOp) and \
                isinstance(value.op, (ast.BitOr, ast.BitAnd)):
            for side in (value.left, value.right):
                if _event_factory_call(side) or (
                        isinstance(side, ast.Name)
                        and side.id in event_vars):
                    return True
    return False


def sim_processes(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for function in iter_functions(tree):
        if is_sim_process(function):
            yield function


class _SimProcessRule(Rule):
    """Base for rules that inspect the body of each sim process."""

    def check(self, context: LintContext) -> None:
        resolver = ImportResolver(context.tree)
        for function in sim_processes(context.tree):
            self.check_process(context, function, resolver)

    def check_process(self, context: LintContext,
                      function: ast.FunctionDef,
                      resolver: ImportResolver) -> None:
        raise NotImplementedError


class RealSleepRule(_SimProcessRule):
    """SIM001: ``time.sleep`` freezes the whole simulation."""

    rule_id = "SIM001"
    description = "real sleep inside a simulation process"
    hint = "yield sim.timeout(delay) instead of sleeping"

    def check_process(self, context, function, resolver):
        for node in own_nodes(function):
            if isinstance(node, ast.Call) and \
                    resolver.resolve(node.func) == "time.sleep":
                self.report(
                    context, node,
                    f"time.sleep() inside sim process "
                    f"{function.name!r} blocks the event loop")


class RealIoRule(_SimProcessRule):
    """SIM002: no real I/O (files, sockets, subprocesses) in a sim
    process — the simulation must be a pure function of its seed."""

    rule_id = "SIM002"
    description = "real I/O inside a simulation process"
    hint = "model the interaction as simulated events/resources"

    IO_PREFIXES = ("socket.", "subprocess.", "urllib.", "http.client.",
                   "requests.", "shutil.", "asyncio.")
    IO_CALLS = frozenset((
        "open", "input", "os.system", "os.popen", "os.fork",
        "socket.socket", "subprocess.run", "subprocess.Popen",
    ))

    def check_process(self, context, function, resolver):
        for node in own_nodes(function):
            if not isinstance(node, ast.Call):
                continue
            resolved = resolver.resolve(node.func)
            if resolved is None:
                continue
            if resolved in self.IO_CALLS or \
                    resolved.startswith(self.IO_PREFIXES):
                self.report(
                    context, node,
                    f"{resolved}() performs real I/O inside sim "
                    f"process {function.name!r}")


class NonEventYieldRule(_SimProcessRule):
    """SIM003: yielding anything but an Event kills the process at
    runtime (the kernel raises SimulationError); literals are provably
    not events, so flag them statically."""

    rule_id = "SIM003"
    description = "yield of a provably non-Event value"
    hint = "yield an Event (e.g. sim.timeout(...)); use `return` to " \
           "deliver a value"

    NON_EVENT_NODES = (ast.Constant, ast.JoinedStr, ast.List, ast.Tuple,
                       ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                       ast.DictComp, ast.GeneratorExp)

    def check_process(self, context, function, resolver):
        for yielded in _yields_of(function):
            value = yielded.value
            if value is None:
                self.report(
                    context, yielded,
                    f"bare yield in sim process {function.name!r} "
                    f"yields None, not an Event")
            elif isinstance(value, self.NON_EVENT_NODES):
                kind = type(value).__name__
                self.report(
                    context, yielded,
                    f"sim process {function.name!r} yields a {kind}, "
                    f"which is never an Event")


class DoubleTriggerRule(Rule):
    """SIM004: triggering the same event twice raises at runtime; a
    second ``succeed()``/``fail()`` on the same name with no
    intervening rebinding or branching is provable statically.

    Applies to every function (not only sim processes): callbacks and
    helpers trigger events too.
    """

    rule_id = "SIM004"
    description = "event triggered twice on a straight-line path"
    hint = "an Event fires once; create a fresh event or guard on " \
           "event.triggered"

    TRIGGERS = frozenset(("succeed", "fail"))

    def check(self, context: LintContext) -> None:
        for function in iter_functions(context.tree):
            self._scan_block(context, function.body)

    def _trigger_target(self, stmt: ast.stmt) -> Optional[str]:
        """``"ev"`` for a statement of the form ``ev.succeed(...)``."""
        if not (isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)):
            return None
        func = stmt.value.func
        if isinstance(func, ast.Attribute) and func.attr in self.TRIGGERS:
            return qualified_name(func.value)
        return None

    def _scan_block(self, context: LintContext,
                    body: list[ast.stmt]) -> None:
        triggered: dict[str, int] = {}
        for stmt in body:
            target = self._trigger_target(stmt)
            if target is not None:
                if target in triggered:
                    self.report(
                        context, stmt,
                        f"event {target!r} already triggered on line "
                        f"{triggered[target]} is triggered again")
                else:
                    triggered[target] = stmt.lineno
                continue
            if isinstance(stmt, ast.Assign):
                for node in stmt.targets:
                    name = qualified_name(node)
                    if name is not None:
                        triggered.pop(name, None)
                continue
            # Any control flow (if/loop/try/with) may rebind or guard:
            # stop proving across it, but scan its blocks on their own.
            if isinstance(stmt, (ast.If, ast.For, ast.While, ast.With,
                                 ast.Try, ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                triggered.clear()
                for field in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field, None)
                    if inner:
                        self._scan_block(context, inner)
                for handler in getattr(stmt, "handlers", ()):
                    self._scan_block(context, handler.body)


RULES = (RealSleepRule, RealIoRule, NonEventYieldRule, DoubleTriggerRule)

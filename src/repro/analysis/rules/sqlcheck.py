"""SQL rules: every SQL string literal must parse with ``repro.sql``
and reference real tables/columns.

Candidate strings are plain or f-string literals whose text starts
with a SQL statement keyword (docstrings are skipped).  F-string
placeholders are substituted before parsing: a placeholder naming a
module-level string constant (``{HEARTBEAT_TABLE}``) gets that
constant's text; anything else (runtime values like ``{event}``)
becomes the literal ``0``, which is valid in every value position the
workload builders use.

Table/column names are checked against the Cloudstone schema
(``workloads/cloudstone/schema.py``) plus any ``CREATE TABLE``
statements appearing earlier in the same file (so e.g. the heartbeat
module's own table is in scope for its inserts and selects).
"""

from __future__ import annotations

import ast
import dataclasses
import re
from typing import Iterator, Optional

from ..visitor import LintContext, Rule

__all__ = ["SqlParseRule", "SqlTableRule", "SqlColumnRule",
           "extract_sql_literals", "cloudstone_catalog", "RULES"]

#: A string is "SQL-looking" when it has the *shape* of a statement,
#: not merely a leading keyword — bare kind tags like ``"insert"`` and
#: error messages like ``"COMMIT without open transaction"`` must not
#: match.
_SQL_PREFIX = re.compile(
    r"^\s*(?:"
    r"SELECT\s+.+?\s+FROM\s+\S+|"
    r"INSERT\s+INTO\s+\S+|"
    r"UPDATE\s+\S+\s+SET\s+|"
    r"DELETE\s+FROM\s+\S+|"
    r"CREATE\s+(?:TABLE|DATABASE|(?:UNIQUE\s+)?INDEX)\s+\S+|"
    r"DROP\s+TABLE\s+\S+|"
    r"USE\s+\w+\s*$|"
    r"(?:BEGIN|COMMIT|ROLLBACK)\s*$"
    r")", re.IGNORECASE | re.DOTALL)


@dataclasses.dataclass(frozen=True)
class SqlLiteral:
    """One SQL-looking string literal found in a file."""

    node: ast.AST       # the Constant or JoinedStr node
    text: str           # with f-string placeholders substituted
    substituted: bool   # True when a runtime placeholder became "0"


def _docstring_nodes(tree: ast.Module) -> set[int]:
    """ids of Constant nodes that are docstrings."""
    nodes: set[int] = set()
    for scope in ast.walk(tree):
        if isinstance(scope, (ast.Module, ast.ClassDef, ast.FunctionDef,
                              ast.AsyncFunctionDef)):
            body = scope.body
            if body and isinstance(body[0], ast.Expr) and \
                    isinstance(body[0].value, ast.Constant) and \
                    isinstance(body[0].value.value, str):
                nodes.add(id(body[0].value))
    return nodes


def extract_sql_literals(context: LintContext) -> Iterator[SqlLiteral]:
    """SQL-looking string literals, in source order."""
    docstrings = _docstring_nodes(context.tree)
    candidates = []
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, str) and id(node) not in docstrings:
            candidates.append((node.lineno, node.col_offset, node,
                               node.value, False))
        elif isinstance(node, ast.JoinedStr):
            text, substituted = _render_fstring(node, context)
            candidates.append((node.lineno, node.col_offset, node, text,
                               substituted))
    candidates.sort(key=lambda item: (item[0], item[1]))
    seen_fstring_parts: set[int] = set()
    for _line, _col, node, text, substituted in candidates:
        if isinstance(node, ast.JoinedStr):
            # Constant pieces of an f-string also appear in ast.walk;
            # remember them so they are not reported twice.
            for piece in node.values:
                seen_fstring_parts.add(id(piece))
        elif id(node) in seen_fstring_parts:
            continue
        if _SQL_PREFIX.match(text):
            yield SqlLiteral(node, text, substituted)


def _render_fstring(node: ast.JoinedStr,
                    context: LintContext) -> tuple[str, bool]:
    parts: list[str] = []
    substituted = False
    for piece in node.values:
        if isinstance(piece, ast.Constant):
            parts.append(str(piece.value))
        elif isinstance(piece, ast.FormattedValue):
            value = piece.value
            if isinstance(value, ast.Name) and \
                    value.id in context.module_constants:
                parts.append(context.module_constants[value.id])
            elif isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("0")
                substituted = True
    return "".join(parts), substituted


# ------------------------------------------------------------- catalogs
_CATALOG_CACHE: Optional[dict[str, frozenset[str]]] = None


def cloudstone_catalog() -> dict[str, frozenset[str]]:
    """table name -> column names, parsed from the Cloudstone schema."""
    global _CATALOG_CACHE
    if _CATALOG_CACHE is None:
        from ...workloads.cloudstone.schema import SCHEMA_STATEMENTS
        catalog: dict[str, frozenset[str]] = {}
        _extend_catalog(catalog, SCHEMA_STATEMENTS)
        _CATALOG_CACHE = catalog
    return dict(_CATALOG_CACHE)


def _extend_catalog(catalog: dict, statements) -> None:
    from ...sql import ast as sql_ast
    from ...sql import parse
    for text in statements:
        try:
            statement = parse(text)
        except Exception:
            continue
        if isinstance(statement, sql_ast.CreateTableStatement):
            catalog[statement.table] = frozenset(
                column.name for column in statement.columns)


def _column_refs(node) -> Iterator:
    """Every ColumnRef reachable inside a repro.sql AST node."""
    from ...sql import ast as sql_ast
    if isinstance(node, sql_ast.ColumnRef):
        yield node
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        values = [getattr(node, f.name)
                  for f in dataclasses.fields(node)]
    elif isinstance(node, (tuple, list)):
        values = list(node)
    else:
        return
    for value in values:
        yield from _column_refs(value)


class _SqlRule(Rule):
    """Base: parse each SQL literal once, feed subclasses the result,
    and grow a file-local catalog from CREATE TABLE statements."""

    def check(self, context: LintContext) -> None:
        if context.config.sql_excluded(context.path):
            return
        from ...sql import ast as sql_ast
        catalog = cloudstone_catalog()
        for literal in extract_sql_literals(context):
            try:
                from ...sql import parse
                statement = parse(literal.text)
            except Exception as error:
                self.on_parse_error(context, literal, error)
                continue
            if isinstance(statement, sql_ast.CreateTableStatement):
                catalog[statement.table] = frozenset(
                    column.name for column in statement.columns)
            self.on_statement(context, literal, statement, catalog)

    def on_parse_error(self, context, literal, error) -> None:
        pass

    def on_statement(self, context, literal, statement, catalog) -> None:
        pass


class SqlParseRule(_SqlRule):
    """SQL001: the literal must parse with the in-repo SQL dialect."""

    rule_id = "SQL001"
    description = "SQL literal does not parse"
    hint = "repro.sql.parse() must accept every statement the " \
           "simulated servers receive"

    def on_parse_error(self, context, literal, error):
        if literal.substituted:
            # A runtime placeholder was replaced by "0"; if that lands
            # in an identifier position the parse failure is ours, not
            # the code's — stay silent rather than guess.
            return
        excerpt = " ".join(literal.text.split())
        if len(excerpt) > 60:
            excerpt = excerpt[:57] + "..."
        self.report(context, literal.node,
                    f"SQL does not parse ({error}): {excerpt!r}")


def _statement_tables(statement) -> tuple[dict[str, str], list]:
    """(alias -> table) map and the list of referenced table names."""
    from ...sql import ast as sql_ast
    aliases: dict[str, str] = {}
    tables: list[str] = []

    def add(table: Optional[str], alias: Optional[str]) -> None:
        if table is None:
            return
        tables.append(table)
        aliases[alias or table] = table

    if isinstance(statement, sql_ast.SelectStatement):
        add(statement.table, statement.alias)
        for join in statement.joins:
            add(join.table, join.alias)
    elif isinstance(statement, (sql_ast.InsertStatement,
                                sql_ast.UpdateStatement,
                                sql_ast.DeleteStatement,
                                sql_ast.CreateIndexStatement)):
        add(statement.table, None)
    return aliases, tables


class SqlTableRule(_SqlRule):
    """SQL002: referenced tables must exist in the schema."""

    rule_id = "SQL002"
    description = "SQL references an unknown table"
    hint = "add the table to the schema or fix the name"

    def on_statement(self, context, literal, statement, catalog):
        _aliases, tables = _statement_tables(statement)
        for table in tables:
            if table not in catalog:
                self.report(context, literal.node,
                            f"unknown table {table!r} (known: "
                            f"{', '.join(sorted(catalog))})")


class SqlColumnRule(_SqlRule):
    """SQL003: referenced columns must exist on their table."""

    rule_id = "SQL003"
    description = "SQL references an unknown column"
    hint = "fix the column name or update the schema"

    def on_statement(self, context, literal, statement, catalog):
        from ...sql import ast as sql_ast
        aliases, tables = _statement_tables(statement)
        known_tables = [t for t in tables if t in catalog]
        if not known_tables:
            return  # SQL002 already covers unknown tables

        def check_column(name: str, table: Optional[str],
                         where: str) -> None:
            if table is not None:
                resolved = aliases.get(table, table)
                if resolved not in catalog:
                    return  # unknown alias/table: SQL002's problem
                if name not in catalog[resolved]:
                    self.report(
                        context, literal.node,
                        f"column {name!r} does not exist on table "
                        f"{resolved!r} ({where})")
            elif not any(name in catalog[t] for t in known_tables):
                self.report(
                    context, literal.node,
                    f"column {name!r} does not exist on "
                    f"{' or '.join(repr(t) for t in known_tables)} "
                    f"({where})")

        if isinstance(statement, sql_ast.InsertStatement):
            for name in statement.columns:
                check_column(name, statement.table, "INSERT columns")
            return
        if isinstance(statement, sql_ast.UpdateStatement):
            for name, expr in statement.assignments:
                check_column(name, statement.table, "SET clause")
                for ref in _column_refs(expr):
                    check_column(ref.name, ref.table or statement.table,
                                 "SET expression")
            for ref in _column_refs(statement.where):
                check_column(ref.name, ref.table, "WHERE clause")
            return
        if isinstance(statement, sql_ast.CreateIndexStatement):
            for name in statement.columns:
                check_column(name, statement.table, "index columns")
            return
        for ref in _column_refs(statement):
            check_column(ref.name, ref.table, "statement")


RULES = (SqlParseRule, SqlTableRule, SqlColumnRule)

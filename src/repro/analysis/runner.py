"""Run the rules over files and format the findings."""

from __future__ import annotations

import ast
import json
import time
from collections import Counter
from dataclasses import dataclass, field
import os
from typing import Iterable, Optional, Sequence

from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding
from .visitor import LintContext, Rule, all_rules

__all__ = ["LintStats", "SourceCache", "lint_source", "lint_file",
           "lint_paths", "racecheck_paths", "taintcheck_paths",
           "check_paths", "format_findings_text",
           "format_findings_json"]


@dataclass
class LintStats:
    """Per-run accounting: what each rule found and what it cost.

    ``python -m repro lint --stats`` prints this so lint cost stays
    visible in CI logs — a rule whose wall-time balloons gets caught
    in review, not six months later.
    """

    files: int = 0
    findings_per_rule: Counter = field(default_factory=Counter)
    seconds_per_rule: dict = field(default_factory=dict)
    total_seconds: float = 0.0
    #: parse-cache accounting: files parsed fresh vs trees reused.
    #: Lint and racecheck share one :class:`SourceCache`, so running
    #: both in one process parses each file exactly once.
    parses: int = 0
    parse_reuses: int = 0
    #: purity-oracle accounting (``repro check`` only): call sites the
    #: FLW/RACE analyzers asked about, split into resolved (a definite
    #: pure/impure verdict — previously every one was conservative)
    #: vs still-conservative (unknown callee).
    calls_resolved: int = 0
    calls_conservative: int = 0

    def observe(self, rule_id: str, findings: int,
                seconds: float) -> None:
        self.findings_per_rule[rule_id] += findings
        self.seconds_per_rule[rule_id] = \
            self.seconds_per_rule.get(rule_id, 0.0) + seconds

    def render(self) -> str:
        lines = [f"simlint stats: {self.files} file"
                 f"{'s' if self.files != 1 else ''}, "
                 f"{self.total_seconds * 1000:.0f} ms total"]
        lines.append(f"  parse cache: {self.parses} parsed, "
                     f"{self.parse_reuses} reused")
        consulted = self.calls_resolved + self.calls_conservative
        if consulted:
            share = 100.0 * self.calls_resolved / consulted
            lines.append(
                f"  purity oracle: {self.calls_resolved}/{consulted} "
                f"call sites resolved ({share:.0f}%), "
                f"{self.calls_conservative} conservative")
        for rule_id in sorted(self.seconds_per_rule):
            lines.append(
                f"  {rule_id}: {self.findings_per_rule[rule_id]} "
                f"finding{'s' if self.findings_per_rule[rule_id] != 1 else ''}"
                f", {self.seconds_per_rule[rule_id] * 1000:.1f} ms")
        return "\n".join(lines)


class SourceCache:
    """Parsed sources shared across rule families.

    Lint, flow and racecheck all need the same files' ASTs; racecheck
    additionally needs its project model's trees to be *the same
    objects* linting later visits (its node lookups are by identity).
    The cache keys on path and validates with a stat signature, so a
    file edited between runs re-parses while everything else reuses
    the tree from the first pass.
    """

    def __init__(self):
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _signature(path: str):
        status = os.stat(path)
        return status.st_mtime_ns, status.st_size

    def load(self, path: str):
        """``(source, tree | None, error | None)`` for ``path``; the
        ``error`` is a ready-to-emit PARSE :class:`Finding`."""
        try:
            signature = self._signature(path)
        except OSError:
            signature = None
        entry = self._entries.get(path)
        if entry is not None and entry[0] == signature \
                and signature is not None:
            self.hits += 1
            return entry[1], entry[2], entry[3]
        self.misses += 1
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        tree, error = None, None
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            error = Finding(path, exc.lineno or 1, exc.offset or 0,
                            "PARSE",
                            f"file does not parse: {exc.msg}")
        self._entries[path] = (signature, source, tree, error)
        return source, tree, error

    def loader(self, path: str):
        """Adapter matching ``build_project_model``'s loader hook."""
        source, tree, _error = self.load(path)
        return source, tree


#: The process-wide cache every entry point shares.
_SOURCE_CACHE = SourceCache()


def _enabled_rules(config: LintConfig, rules: Optional[Sequence[Rule]],
                   path: Optional[str] = None) -> list[Rule]:
    candidates = rules if rules is not None else all_rules()
    if path is None:
        return [rule for rule in candidates
                if config.rule_enabled(rule.rule_id)]
    return [rule for rule in candidates
            if config.rule_enabled_at(rule.rule_id, path)]


def lint_source(source: str, path: str = "<string>",
                config: LintConfig = DEFAULT_CONFIG,
                rules: Optional[Sequence[Rule]] = None,
                stats: Optional[LintStats] = None,
                tree: Optional[ast.Module] = None) -> list[Finding]:
    """Lint one file's text; ``path`` is used in findings, for the
    per-path ignores and for the SQL-exclusion patterns.  Pass a
    pre-parsed ``tree`` to skip the parse (the cache does)."""
    if tree is None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [Finding(path, error.lineno or 1, error.offset or 0,
                            "PARSE",
                            f"file does not parse: {error.msg}")]
        if stats is not None:
            stats.parses += 1
    context = LintContext(path, source, tree, config)
    if stats is not None:
        stats.files += 1
    for rule in _enabled_rules(config, rules, path=path):
        before = len(context.findings)
        # Wall-clock here measures the linter itself, not simulation
        # behaviour; the determinism rule does not apply to it.
        started = time.perf_counter()  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
        rule.check(context)
        if stats is not None:
            stats.observe(rule.rule_id, len(context.findings) - before,
                          time.perf_counter() - started)  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    return sorted(context.findings)


def lint_file(path: str, config: LintConfig = DEFAULT_CONFIG,
              rules: Optional[Sequence[Rule]] = None,
              stats: Optional[LintStats] = None) -> list[Finding]:
    hits_before = _SOURCE_CACHE.hits
    source, tree, error = _SOURCE_CACHE.load(path)
    if stats is not None:
        if _SOURCE_CACHE.hits > hits_before:
            stats.parse_reuses += 1
        elif error is None:
            stats.parses += 1
    if error is not None:
        return [error]
    return lint_source(source, path=path, config=config,
                       rules=rules, stats=stats, tree=tree)


def _python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    if not os.path.isdir(path):
        # A missing path must not pass silently: in CI a renamed
        # directory would otherwise turn the lint step into a no-op.
        raise FileNotFoundError(f"lint path does not exist: {path}")
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(paths: Optional[Iterable[str]] = None,
               config: LintConfig = DEFAULT_CONFIG,
               rules: Optional[Sequence[Rule]] = None,
               stats: Optional[LintStats] = None) -> list[Finding]:
    """Lint every ``*.py`` file under ``paths`` (default: the config's
    paths), findings sorted by location."""
    findings: list[Finding] = []
    started = time.perf_counter()  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    resolved_rules = list(rules) if rules is not None else all_rules()
    for path in (paths if paths is not None else config.paths):
        for filename in _python_files(path):
            findings.extend(lint_file(filename, config=config,
                                      rules=resolved_rules,
                                      stats=stats))
    if stats is not None:
        stats.total_seconds = \
            time.perf_counter() - started  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    return sorted(findings)


def racecheck_paths(paths: Optional[Iterable[str]] = None,
                    config: LintConfig = DEFAULT_CONFIG,
                    stats: Optional[LintStats] = None) -> list[Finding]:
    """Run the interprocedural RACE rules over ``paths``.

    Builds one project-wide model (call graph, yield summaries,
    shared-state inventory) across every file, then checks each file
    with the RACE001–RACE005 rules.  Parses are shared with
    :func:`lint_paths` through the process-wide :class:`SourceCache`,
    so ``lint`` + ``racecheck`` in one process is a single parse pass.
    """
    from .race import build_project_model, race_rules

    started = time.perf_counter()  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    filenames = _project_files(paths, config)
    misses_before = _SOURCE_CACHE.misses
    model = build_project_model(filenames,
                                loader=_SOURCE_CACHE.loader)
    if stats is not None:
        stats.parses += _SOURCE_CACHE.misses - misses_before
    findings = _lint_model_files(filenames, race_rules(model),
                                 config, stats)
    if stats is not None:
        stats.total_seconds = \
            time.perf_counter() - started  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    return findings


def _project_files(paths: Optional[Iterable[str]],
                   config: LintConfig) -> list:
    return [filename
            for path in (paths if paths is not None else config.paths)
            for filename in _python_files(path)]


def _lint_model_files(filenames, rules, config, stats) -> list:
    """Per-file pass shared by racecheck/taintcheck/check: lint each
    file with ``rules`` over the cached trees."""
    findings: list[Finding] = []
    for filename in filenames:
        hits_before = _SOURCE_CACHE.hits
        source, tree, error = _SOURCE_CACHE.load(filename)
        if stats is not None:
            if _SOURCE_CACHE.hits > hits_before:
                stats.parse_reuses += 1
            elif error is None:
                stats.parses += 1
        if error is not None:
            findings.append(error)
            continue
        findings.extend(lint_source(source, path=filename,
                                    config=config, rules=rules,
                                    stats=stats, tree=tree))
    return sorted(findings)


def taintcheck_paths(paths: Optional[Iterable[str]] = None,
                     config: LintConfig = DEFAULT_CONFIG,
                     stats: Optional[LintStats] = None) -> list[Finding]:
    """Run the interprocedural TNT taint rules over ``paths``.

    Builds one project model, computes the taint summaries fixpoint,
    then checks each file with the TNT001–TNT005 rules.  Shares the
    process-wide parse cache with :func:`lint_paths` and
    :func:`racecheck_paths`.
    """
    from .race import build_project_model
    from .taint import taint_rules

    started = time.perf_counter()  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    filenames = _project_files(paths, config)
    misses_before = _SOURCE_CACHE.misses
    model = build_project_model(filenames,
                                loader=_SOURCE_CACHE.loader)
    if stats is not None:
        stats.parses += _SOURCE_CACHE.misses - misses_before
    findings = _lint_model_files(filenames, taint_rules(model),
                                 config, stats)
    if stats is not None:
        stats.total_seconds = \
            time.perf_counter() - started  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    return findings


def check_paths(paths: Optional[Iterable[str]] = None,
                config: LintConfig = DEFAULT_CONFIG,
                stats: Optional[LintStats] = None) -> dict:
    """The ``repro check`` umbrella: lint + flow + race + taint in one
    pass over one shared parse cache and one project model.

    Returns ``{"simlint": [...], "simrace": [...], "simtaint": [...]}``
    (each sorted).  Unlike the standalone subcommands, the FLW pairing
    rules and RACE002 run with the purity oracle wired in: calls
    proven pure-and-yield-free stop being conservative settle/act
    points, and the resolved/conservative fraction lands in
    ``stats``.
    """
    from .flow import rules as flowrules
    from .race import build_project_model, race_rules
    from .rules import determinism, obsnames, simsafety, sqlcheck
    from .taint import build_purity, taint_rules

    started = time.perf_counter()  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    filenames = _project_files(paths, config)
    misses_before = _SOURCE_CACHE.misses
    model = build_project_model(filenames,
                                loader=_SOURCE_CACHE.loader)
    if stats is not None:
        stats.parses += _SOURCE_CACHE.misses - misses_before
    purity = build_purity(model)

    def oracle(call, path):
        return purity.call_verdict(
            call, resolver=purity.resolver_for(path))

    lint_rules: list = []
    for module in (determinism, simsafety, sqlcheck, obsnames):
        lint_rules.extend(cls() for cls in module.RULES)
    lint_rules.extend(cls(call_oracle=oracle)
                      for cls in flowrules.RULES)
    results = {
        "simlint": _lint_model_files(filenames, lint_rules, config,
                                     stats),
        "simrace": _lint_model_files(
            filenames, race_rules(model, purity=purity), config,
            stats),
        "simtaint": _lint_model_files(filenames, taint_rules(model),
                                      config, stats),
    }
    if stats is not None:
        stats.calls_resolved += purity.stats.resolved
        stats.calls_conservative += purity.stats.conservative
        stats.total_seconds = \
            time.perf_counter() - started  # simlint: disable=DET001  # simtaint: blessed=analyzer-wall-time
    return results


def format_findings_text(findings: Sequence[Finding],
                         tool: str = "simlint") -> str:
    if not findings:
        return f"{tool}: no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"{tool}: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def format_findings_json(findings: Sequence[Finding]) -> str:
    return json.dumps({
        "count": len(findings),
        "findings": [finding.as_dict() for finding in findings],
    }, indent=2)

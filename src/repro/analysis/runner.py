"""Run the rules over files and format the findings."""

from __future__ import annotations

import ast
import json
import os
from typing import Iterable, Optional, Sequence

from .config import DEFAULT_CONFIG, LintConfig
from .findings import Finding
from .visitor import LintContext, Rule, all_rules

__all__ = ["lint_source", "lint_file", "lint_paths",
           "format_findings_text", "format_findings_json"]


def _enabled_rules(config: LintConfig,
                   rules: Optional[Sequence[Rule]]) -> list[Rule]:
    return [rule for rule in (rules if rules is not None else all_rules())
            if config.rule_enabled(rule.rule_id)]


def lint_source(source: str, path: str = "<string>",
                config: LintConfig = DEFAULT_CONFIG,
                rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    """Lint one file's text; ``path`` is used in findings and for the
    SQL-exclusion patterns."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(path, error.lineno or 1, error.offset or 0,
                        "PARSE", f"file does not parse: {error.msg}")]
    context = LintContext(path, source, tree, config)
    for rule in _enabled_rules(config, rules):
        rule.check(context)
    return sorted(context.findings)


def lint_file(path: str, config: LintConfig = DEFAULT_CONFIG,
              rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path=path, config=config,
                           rules=rules)


def _python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    if not os.path.isdir(path):
        # A missing path must not pass silently: in CI a renamed
        # directory would otherwise turn the lint step into a no-op.
        raise FileNotFoundError(f"lint path does not exist: {path}")
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def lint_paths(paths: Optional[Iterable[str]] = None,
               config: LintConfig = DEFAULT_CONFIG,
               rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    """Lint every ``*.py`` file under ``paths`` (default: the config's
    paths), findings sorted by location."""
    findings: list[Finding] = []
    resolved_rules = _enabled_rules(config, rules)
    for path in (paths if paths is not None else config.paths):
        for filename in _python_files(path):
            findings.extend(lint_file(filename, config=config,
                                      rules=resolved_rules))
    return sorted(findings)


def format_findings_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "simlint: no findings"
    lines = [finding.render() for finding in findings]
    lines.append(f"simlint: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)


def format_findings_json(findings: Sequence[Finding]) -> str:
    return json.dumps({
        "count": len(findings),
        "findings": [finding.as_dict() for finding in findings],
    }, indent=2)

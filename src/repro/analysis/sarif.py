"""SARIF 2.1.0 output for simlint findings.

The Static Analysis Results Interchange Format is what GitHub code
scanning consumes (``github/codeql-action/upload-sarif``): uploading a
run makes every finding annotate the PR diff at its file/line.  Only
the schema subset GitHub reads is emitted — one ``run`` with a tool
descriptor (every known rule, so rule metadata renders even for rules
with zero findings this run) and one ``result`` per finding.

Columns: simlint stores 0-based columns (as ``ast`` reports them);
SARIF regions are 1-based, so ``startColumn = column + 1``.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from .findings import Finding
from .visitor import Rule

__all__ = ["SARIF_VERSION", "SARIF_SCHEMA_URI", "format_findings_sarif",
           "format_merged_sarif", "sarif_run"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_TOOL_URI = ("https://github.com/paper-repro/icde2012-replication"
             "#static-analysis--determinism-guarantees")


def _artifact_uri(path: str) -> str:
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def _rule_descriptor(rule: Rule) -> dict:
    descriptor = {
        "id": rule.rule_id,
        "shortDescription": {"text": rule.description},
    }
    if rule.hint:
        descriptor["help"] = {"text": rule.hint}
    return descriptor


def _physical_location(path: str, line: int, column: int) -> dict:
    return {
        "artifactLocation": {
            "uri": _artifact_uri(path),
            "uriBaseId": "%SRCROOT%",
        },
        "region": {
            "startLine": max(line, 1),
            "startColumn": column + 1,
        },
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    message = finding.message
    if finding.hint:
        message += f" (hint: {finding.hint})"
    result = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": message},
        "locations": [{
            "physicalLocation": _physical_location(
                finding.path, finding.line, finding.column),
        }],
    }
    if finding.related:
        # The RACE rules carry both halves of a race (the stale read
        # and the yield it crossed); code scanning renders these as
        # secondary annotations on the same alert.
        result["relatedLocations"] = [{
            "physicalLocation": _physical_location(rpath, rline, rcol),
            "message": {"text": rmessage},
        } for rpath, rline, rcol, rmessage in finding.related]
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    return result


def sarif_run(tool_name: str, findings: Sequence[Finding],
              rules: Sequence[Rule],
              tool_version: str = "1.0.0") -> dict:
    """One SARIF ``run`` object for one tool's findings."""
    descriptors = [_rule_descriptor(rule) for rule in rules]
    rule_index = {descriptor["id"]: position
                  for position, descriptor in enumerate(descriptors)}
    return {
        "tool": {
            "driver": {
                "name": tool_name,
                "informationUri": _TOOL_URI,
                "version": tool_version,
                "rules": descriptors,
            },
        },
        "columnKind": "utf16CodeUnits",
        "results": [_result(finding, rule_index)
                    for finding in findings],
    }


def _document(runs: Sequence[dict]) -> str:
    return json.dumps({
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": list(runs),
    }, indent=2)


def format_findings_sarif(findings: Sequence[Finding],
                          rules: Optional[Sequence[Rule]] = None,
                          tool_version: str = "1.0.0",
                          tool_name: str = "simlint") -> str:
    """One SARIF 2.1.0 document (a JSON string) for a lint run."""
    if rules is None:
        from .visitor import all_rules
        rules = all_rules()
    return _document([sarif_run(tool_name, findings, rules,
                                tool_version)])


def format_merged_sarif(runs: Sequence[tuple],
                        tool_version: str = "1.0.0") -> str:
    """One document with one ``run`` per tool — what ``repro check``
    emits so a single code-scanning upload carries every analyzer.

    ``runs`` is ``[(tool_name, findings, rules), ...]``; run order is
    preserved (lint, race, taint).
    """
    return _document([sarif_run(name, findings, rules, tool_version)
                      for name, findings, rules in runs])

"""simtaint: interprocedural determinism-taint analysis.

Three layers:

* :mod:`.purity` — per-function side-effect summaries (mutates-params,
  writes-globals/attributes, performs-I/O, nondet) as a least fixpoint
  over the project call graph; consumed by the TNT rules and fed back
  into the FLW/RACE analyzers for precision.
* :mod:`.engine` — the taint lattice: five nondeterminism kinds, tag
  propagation through expressions and the CFG dataflow solver, and
  flow-insensitive per-function taint summaries (return taint,
  parameter passthrough, parameter→sink flows).
* :mod:`.rules` — the five TNT rules with ``# simtaint:
  blessed=REASON`` pragma support and taint-path related locations.
"""

from .engine import (FunctionTaint, Tag, TaintProblem, TaintSummaries,
                     expr_taint)
from .purity import (Effects, PuritySummaries, PurityStats,
                     build_purity)
from .rules import TAINT_RULES, taint_rules

__all__ = ["Effects", "PuritySummaries", "PurityStats", "build_purity",
           "FunctionTaint", "Tag", "TaintProblem", "TaintSummaries",
           "expr_taint", "TAINT_RULES", "taint_rules"]

"""Determinism-taint lattice: tags, sources, sanitizers, summaries.

The taint domain is small and concrete: a value is tainted when it
may depend on one of five nondeterminism **kinds** —

``wallclock``
    a host-clock read (the DET001 table: ``time.time`` & friends);
``random``
    an unseeded RNG / OS-entropy draw (``random.*`` module state,
    ``uuid.uuid4``, ``secrets``, un-seeded ``random.Random()``);
``env``
    a process-environment read (``os.environ``, ``os.getenv``);
``id``
    a memory address (``id()``);
``unordered``
    a ``set``/``frozenset`` whose iteration order is hash order.

Tags travel through expressions, assignments (the CFG dataflow pass
in :class:`TaintProblem`) and function boundaries (the flow-
insensitive :class:`TaintSummaries` fixpoint: what a function's
return value carries, which parameters pass through to the return,
and which parameters flow into which sink categories).  **Sanitizers**
erase taint: ``sorted()`` (and ``len``/``min``/``max``) erase
``unordered``; a *seeded* ``random.Random(seed)`` never produces the
``random`` kind; the ``# simtaint: blessed=REASON`` pragma is handled
by the rules layer.

Every tag remembers where its source is (``path``/``line``/``col``)
plus a bounded ``via`` chain of intermediate hops, which the TNT
rules surface as SARIF related locations — the reviewer sees the
whole taint path, not just the sink.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

from ..rules.determinism import ImportResolver, WallClockRule
from ..visitor import own_nodes
from ..race.callgraph import FunctionInfo, ProjectModel
from .purity import _is_nondet_call, resolve_targets

__all__ = ["Tag", "SinkHit", "KINDS", "NONDET_KINDS", "TaintContext",
           "expr_taint", "TaintProblem", "FunctionTaint",
           "TaintSummaries", "sink_category", "SINK_SCHEDULE",
           "SINK_TELEMETRY", "SINK_ARTIFACT"]

#: The five taint kinds, in severity/reporting order.
KINDS = ("wallclock", "random", "env", "id", "unordered")

#: Value-nondeterminism kinds (everything but iteration order).
NONDET_KINDS = frozenset(("wallclock", "random", "env", "id"))

#: Longest ``via`` chain a tag carries; deeper hops are elided so the
#: summary fixpoint terminates on recursive call cycles.
_MAX_VIA = 3


class Tag(NamedTuple):
    """One taint mark: which kind, where it was born, how it got here.

    ``via`` is a tuple of ``(path, line, col, note)`` hops from source
    toward the present use, oldest first, capped at :data:`_MAX_VIA`.
    """

    kind: str
    path: str
    line: int
    col: int
    desc: str
    via: tuple = ()

    def hop(self, path: str, line: int, col: int, note: str) -> "Tag":
        """The same taint observed one call-boundary later."""
        via = self.via + ((self.path, self.line, self.col, self.desc),)
        return Tag(self.kind, path, line, col, note, via[-_MAX_VIA:])


# ------------------------------------------------------------ sinks
SINK_SCHEDULE = "schedule"
SINK_TELEMETRY = "telemetry"
SINK_ARTIFACT = "artifact"

#: Receiver-method names that feed the kernel event queue.
_SCHEDULE_ATTRS = frozenset(("timeout", "schedule", "_schedule"))
#: Bare constructors that carry a delay into the kernel.
_SCHEDULE_NAMES = frozenset(("Timeout",))

#: Tracer / metrics entry points: names and values become artifact
#: bytes via the exporters.
_TELEMETRY_ATTRS = frozenset((
    "span", "open_span", "instant", "set_attribute",
    "inc", "observe", "counter", "gauge", "histogram",
))

#: Replication payloads and artifact writers.
_ARTIFACT_ATTRS = frozenset(("write", "writerow", "send", "writelines"))
_ARTIFACT_CALLS = frozenset(("json.dump", "json.dumps"))
_ARTIFACT_NAMES = frozenset(("ExperimentResult",))


def sink_category(call: ast.Call,
                  resolver: Optional[ImportResolver]) -> Optional[str]:
    """The sink category a call feeds, or ``None``.

    ``.set(...)`` is deliberately *not* matched even though gauges use
    it — the name is too generic (events, dict-like APIs); gauge
    values still reach the rules through ``observe``/``inc`` and the
    exporter ``write`` calls.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in _SCHEDULE_ATTRS:
            return SINK_SCHEDULE
        if func.attr in _TELEMETRY_ATTRS:
            return SINK_TELEMETRY
        if func.attr in _ARTIFACT_ATTRS:
            return SINK_ARTIFACT
        if func.attr == "append" and _receiver_mentions(
                func.value, ("binlog", "log", "events")):
            return SINK_ARTIFACT
    elif isinstance(func, ast.Name):
        if func.id in _SCHEDULE_NAMES:
            return SINK_SCHEDULE
        if func.id in _ARTIFACT_NAMES:
            return SINK_ARTIFACT
    if resolver is not None:
        resolved = resolver.resolve(func)
        if resolved in _ARTIFACT_CALLS:
            return SINK_ARTIFACT
    return None


def _receiver_mentions(node: ast.AST, needles: tuple) -> bool:
    parts = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr.lower())
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id.lower())
    return any(needle in part for part in parts for needle in needles)


class SinkHit(NamedTuple):
    """A recorded parameter→sink flow inside a summarized function."""

    category: str
    path: str
    line: int
    col: int
    desc: str


# ------------------------------------------------------ taint context
@dataclass
class TaintContext:
    """Everything :func:`expr_taint` needs to classify one file."""

    path: str
    resolver: ImportResolver
    model: ProjectModel
    caller: Optional[FunctionInfo] = None
    #: FunctionInfo.key -> FunctionTaint, from :class:`TaintSummaries`.
    summaries: dict = field(default_factory=dict)


_UNORDERED_SANITIZERS = frozenset(("sorted", "len", "min", "max"))

_ENV_ATTRS = frozenset(("os.environ", "os.environb"))
_ENV_CALLS = frozenset(("os.getenv",))


def _is_set_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and \
        isinstance(node.func, ast.Name) and \
        node.func.id in ("set", "frozenset")


def _source_tag(ctx: TaintContext, node: ast.AST, kind: str,
                desc: str) -> Tag:
    return Tag(kind, ctx.path, node.lineno, node.col_offset, desc)


def _call_source_tags(call: ast.Call, ctx: TaintContext) -> frozenset:
    """Tags a call introduces by itself (independent of arguments)."""
    resolved = ctx.resolver.resolve(call.func)
    tags = set()
    if resolved is not None:
        if resolved in WallClockRule.BANNED:
            tags.add(_source_tag(ctx, call, "wallclock",
                                 f"{resolved}()"))
        elif resolved in _ENV_CALLS or \
                resolved.startswith("os.environ."):
            tags.add(_source_tag(ctx, call, "env", f"{resolved}()"))
        elif resolved == "id":
            tags.add(_source_tag(ctx, call, "id", "id()"))
        elif _is_nondet_call(resolved, call):
            tags.add(_source_tag(ctx, call, "random",
                                 f"{resolved}()"))
    if isinstance(call.func, ast.Name) and \
            call.func.id in ("set", "frozenset"):
        tags.add(_source_tag(ctx, call, "unordered",
                             f"{call.func.id}() (hash order)"))
    return frozenset(tags)


def expr_taint(expr: Optional[ast.AST], env: dict,
               ctx: TaintContext) -> frozenset:
    """All :class:`Tag`\\ s the value of ``expr`` may carry.

    ``env`` maps variable name -> frozenset[Tag].  The walk is a
    *may* union over sub-expressions; unknown calls conservatively
    propagate their argument/receiver taint (a pure function of a
    nondet input is still nondet).
    """
    if expr is None:
        return frozenset()
    if isinstance(expr, ast.Name):
        return env.get(expr.id, frozenset())
    if isinstance(expr, ast.Attribute):
        resolved = ctx.resolver.resolve(expr)
        if resolved in _ENV_ATTRS:
            return frozenset({_source_tag(ctx, expr, "env", resolved)})
        return expr_taint(expr.value, env, ctx)
    if isinstance(expr, (ast.Set, ast.SetComp)):
        tags = {_source_tag(
            ctx, expr, "unordered",
            "set literal" if isinstance(expr, ast.Set)
            else "set comprehension")}
        tags.update(_children_taint(expr, env, ctx))
        return frozenset(tags)
    if isinstance(expr, ast.Call):
        return _call_taint(expr, env, ctx)
    if isinstance(expr, ast.Compare):
        return _compare_taint(expr, env, ctx)
    if isinstance(expr, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
        return _comprehension_taint(expr, env, ctx)
    if isinstance(expr, ast.Lambda):
        return frozenset()   # its body runs elsewhere
    if isinstance(expr, ast.Constant):
        return frozenset()
    return _children_taint(expr, env, ctx)


def _children_taint(expr: ast.AST, env: dict,
                    ctx: TaintContext) -> frozenset:
    tags: set = set()
    for child in ast.iter_child_nodes(expr):
        tags.update(expr_taint(child, env, ctx))
    return frozenset(tags)


def _compare_taint(expr: ast.Compare, env: dict,
                   ctx: TaintContext) -> frozenset:
    """Membership tests are order-free: ``x in seen`` is deterministic
    however ``seen`` hashes, so an ``in``/``not in`` comparator sheds
    its ``unordered`` kind (other kinds survive — comparing against a
    wall-clock reading is still clock-dependent)."""
    tags: set = set(expr_taint(expr.left, env, ctx))
    for op, comparator in zip(expr.ops, expr.comparators):
        sub = expr_taint(comparator, env, ctx)
        if isinstance(op, (ast.In, ast.NotIn)):
            sub = frozenset(t for t in sub if t.kind != "unordered")
        tags.update(sub)
    return frozenset(tags)


#: Collection mutators that return ``None``: the *call expression*
#: carries no taint even when the receiver does (``seen.add(r)``
#: inside a filter must not re-taint the comprehension).
_NONE_RETURNING_MUTATORS = frozenset((
    "add", "append", "extend", "insert", "update", "discard",
    "remove", "clear", "sort", "reverse",
))


def _comprehension_taint(expr, env: dict, ctx: TaintContext) -> frozenset:
    tags: set = set(_children_taint(expr, env, ctx))
    for comp in expr.generators:
        iter_tags = expr_taint(comp.iter, env, ctx)
        if _is_set_literal(comp.iter) or \
                any(t.kind == "unordered" for t in iter_tags):
            tags.add(_source_tag(ctx, comp.iter, "unordered",
                                 "iteration over a set"))
    return frozenset(tags)


def _args_taint(call: ast.Call, env: dict,
                ctx: TaintContext) -> frozenset:
    tags: set = set()
    for arg in call.args:
        tags.update(expr_taint(arg, env, ctx))
    for keyword in call.keywords:
        tags.update(expr_taint(keyword.value, env, ctx))
    return frozenset(tags)


def _call_taint(call: ast.Call, env: dict,
                ctx: TaintContext) -> frozenset:
    func = call.func
    # Sanitizers first: sorted() pins an order, len/min/max collapse
    # the collection to an order-free scalar.  Other kinds survive —
    # sorted() of wall-clock readings is still wall-clock data.
    if isinstance(func, ast.Name) and \
            func.id in _UNORDERED_SANITIZERS:
        return frozenset(t for t in _args_taint(call, env, ctx)
                         if t.kind != "unordered")
    if isinstance(func, ast.Attribute) and \
            func.attr in _NONE_RETURNING_MUTATORS:
        return frozenset()
    tags: set = set(_call_source_tags(call, ctx))
    # A seeded Random(seed) constructor is the sanctioned RNG path:
    # no source tag was added above, and we deliberately do not
    # propagate argument taint out of it (the seed is config).
    resolved = ctx.resolver.resolve(func)
    if resolved in ("random.Random", "numpy.random.default_rng") and \
            (call.args or call.keywords) and \
            not any(t.kind == "random" for t in tags):
        return frozenset(tags)
    targets = resolve_targets(ctx.model, call, ctx.caller)
    if targets:
        interproc = _project_call_taint(call, env, ctx, targets)
        if interproc is not None:
            return frozenset(tags | interproc)
    # Unknown callee: conservative pass-through of receiver + args.
    if isinstance(func, ast.Attribute):
        tags.update(expr_taint(func.value, env, ctx))
    tags.update(_args_taint(call, env, ctx))
    return frozenset(tags)


def _project_call_taint(call: ast.Call, env: dict, ctx: TaintContext,
                        targets: list) -> Optional[frozenset]:
    """Return-value taint of a call resolved into the project, using
    the summaries; ``None`` when no target is summarized (fall back to
    the conservative pass-through)."""
    summarized = [ctx.summaries[t.key] for t in targets
                  if t.key in ctx.summaries]
    if not summarized:
        return None
    tags: set = set()
    for target, summary in zip(
            [t for t in targets if t.key in ctx.summaries],
            summarized):
        for orig in summary.returns:
            tags.add(orig.hop(ctx.path, call.lineno, call.col_offset,
                              f"returned by {target.qualname}()"))
        for index in summary.passthrough:
            entry = _call_argument(call, index, target)
            if entry is not None:
                tags.update(expr_taint(entry, env, ctx))
    return frozenset(tags)


def _call_argument(call: ast.Call, index: int,
                   target: FunctionInfo) -> Optional[ast.AST]:
    """The caller expression bound to callee parameter ``index``
    (receiver counts as parameter 0 for a method call)."""
    if target.cls is not None and isinstance(call.func, ast.Attribute):
        if index == 0:
            return call.func.value
        index -= 1
    if 0 <= index < len(call.args):
        arg = call.args[index]
        if not isinstance(arg, ast.Starred):
            return arg
    return None


def call_arguments(call: ast.Call, target: FunctionInfo) -> list:
    """``(callee_param_index, caller_expr)`` pairs for a call site."""
    pairs = []
    offset = 0
    if target.cls is not None and isinstance(call.func, ast.Attribute):
        pairs.append((0, call.func.value))
        offset = 1
    for position, arg in enumerate(call.args):
        if not isinstance(arg, ast.Starred):
            pairs.append((position + offset, arg))
    return pairs


# ------------------------------------------------- CFG dataflow problem
def _assign_targets(stmt: ast.AST) -> list:
    """``(name, value_expr)`` pairs a statement binds (Name targets
    only; tuple targets fan the whole RHS taint onto each element)."""
    pairs: list = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            pairs.extend(_target_names(target, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        pairs.extend(_target_names(stmt.target, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            pairs.append((stmt.target.id, stmt.value))
    return pairs


def _target_names(target: ast.AST, value: ast.AST) -> list:
    if isinstance(target, ast.Name):
        return [(target.id, value)]
    if isinstance(target, (ast.Tuple, ast.List)):
        pairs = []
        for element in target.elts:
            pairs.extend(_target_names(element, value))
        return pairs
    return []


def _value_mentions(value: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == name
               for sub in ast.walk(value))


def env_of(facts: frozenset) -> dict:
    """Rebuild the var -> tags map from solver facts."""
    env: dict = {}
    for var, tag in facts:
        env.setdefault(var, set()).add(tag)
    return {var: frozenset(tags) for var, tags in env.items()}


class TaintProblem:
    """Forward may-taint propagation for one function's CFG.

    Facts are ``(var, Tag)`` pairs.  Rebinding a variable kills its
    old tags *unless* the right-hand side mentions it (``x = x + 1``
    keeps the taint flowing); the actual propagation lives in
    :meth:`transform` because it needs the incoming facts — the
    solver contract requires it to be monotone and idempotent, and a
    pure union of RHS-derived tags is both.
    """

    def __init__(self, ctx: TaintContext):
        self.ctx = ctx

    def initial(self) -> frozenset:
        return frozenset()

    def gen(self, node) -> frozenset:
        return frozenset()

    def kill(self, node, facts: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return frozenset()
        dead: set = set()
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            for name, value in _assign_targets(stmt):
                if not _value_mentions(value, name):
                    dead.update(f for f in facts if f[0] == name)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name) and \
                        not _value_mentions(stmt.iter, sub.id):
                    dead.update(f for f in facts if f[0] == sub.id)
        return frozenset(dead)

    def transform(self, node, facts: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return facts
        env = env_of(facts)
        born: set = set()
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for name, value in _assign_targets(stmt):
                for tag in expr_taint(value, env, self.ctx):
                    born.add((name, tag))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_tags = set(expr_taint(stmt.iter, env, self.ctx))
            if _is_set_literal(stmt.iter) or \
                    any(t.kind == "unordered" for t in iter_tags):
                iter_tags.add(_source_tag(self.ctx, stmt.iter,
                                          "unordered",
                                          "iteration over a set"))
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    for tag in iter_tags:
                        born.add((sub.id, tag))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is None or \
                        not isinstance(item.optional_vars, ast.Name):
                    continue
                for tag in expr_taint(item.context_expr, env, self.ctx):
                    born.add((item.optional_vars.id, tag))
        if not born:
            return facts
        return facts | frozenset(born)


# --------------------------------------------------- function summaries
@dataclass
class FunctionTaint:
    """What escapes one function: return taint, parameter passthrough
    to the return, and parameter→sink flows."""

    #: Tags (in the callee's own file) the return value may carry.
    returns: frozenset = frozenset()
    #: Parameter indices whose taint reaches the return value.
    passthrough: frozenset = frozenset()
    #: param index -> frozenset[SinkHit] inside this function
    #: (transitively through further project calls).
    param_sinks: dict = field(default_factory=dict)

    def fingerprint(self) -> tuple:
        return (self.returns, self.passthrough,
                tuple(sorted((i, tuple(sorted(hits)))
                             for i, hits in self.param_sinks.items())))


_PARAM = "param"


def _param_tag(path: str, node: ast.AST, index: int,
               name: str) -> Tag:
    return Tag(f"{_PARAM}:{index}", path, node.lineno, node.col_offset,
               f"parameter {name!r}")


def _param_index(tag: Tag) -> Optional[int]:
    if tag.kind.startswith(f"{_PARAM}:"):
        return int(tag.kind.split(":", 1)[1])
    return None


class TaintSummaries:
    """Flow-insensitive per-function taint summaries, iterated to a
    fixpoint over the project call graph.

    Flow-insensitivity is the right cost point here: the summary only
    answers "*may* the return / a sink depend on X", and the precise
    flow-sensitive verdict is re-derived per function by the rules on
    the CFG solver.  Convergence is guaranteed by the capped ``via``
    chains (tag sets are then finite) plus a global round bound.
    """

    #: Safety valve — far beyond any real call-graph diameter.
    MAX_ROUNDS = 25

    def __init__(self, model: ProjectModel):
        self.model = model
        self._resolvers = {path: ImportResolver(module.tree)
                           for path, module in model.modules.items()}
        self.by_key: dict = {key: FunctionTaint()
                             for key in model.functions}
        self._solve()

    def resolver_for(self, path: str) -> Optional[ImportResolver]:
        return self._resolvers.get(path)

    def context_for(self, info: FunctionInfo) -> TaintContext:
        return TaintContext(info.path, self._resolvers[info.path],
                            self.model, caller=info,
                            summaries=self.by_key)

    def summary(self, info: FunctionInfo) -> FunctionTaint:
        return self.by_key[info.key]

    # -- fixpoint -----------------------------------------------------
    def _solve(self) -> None:
        order = sorted(self.by_key)
        for _round in range(self.MAX_ROUNDS):
            changed = False
            for key in order:
                info = self.model.functions[key]
                updated = self._summarize(info)
                if updated.fingerprint() != \
                        self.by_key[key].fingerprint():
                    self.by_key[key] = updated
                    changed = True
            if not changed:
                break

    def _param_names(self, info: FunctionInfo) -> list:
        args = info.node.args
        return [a.arg for a in args.posonlyargs + args.args]

    def _summarize(self, info: FunctionInfo) -> FunctionTaint:
        ctx = self.context_for(info)
        env: dict = {}
        for index, name in enumerate(self._param_names(info)):
            env[name] = frozenset({_param_tag(info.path, info.node,
                                              index, name)})
        returns: set = set(self.by_key[info.key].returns)
        passthrough: set = set(self.by_key[info.key].passthrough)
        param_sinks: dict = {
            i: set(hits)
            for i, hits in self.by_key[info.key].param_sinks.items()}
        statements = sorted(
            (node for node in own_nodes(info.node)
             if isinstance(node, (ast.Assign, ast.AnnAssign,
                                  ast.AugAssign, ast.For, ast.AsyncFor,
                                  ast.Return, ast.Call, ast.With,
                                  ast.AsyncWith))),
            key=lambda n: (n.lineno, n.col_offset))
        # Two source-order passes handle use-before-def in loops; the
        # outer project fixpoint supplies cross-call convergence.
        for _pass in range(2):
            for stmt in statements:
                self._summarize_stmt(stmt, env, ctx, info, returns,
                                     passthrough, param_sinks)
        return FunctionTaint(
            frozenset(returns), frozenset(passthrough),
            {i: frozenset(hits)
             for i, hits in sorted(param_sinks.items()) if hits})

    def _bind(self, env: dict, name: str, tags: frozenset) -> None:
        env[name] = env.get(name, frozenset()) | tags

    def _summarize_stmt(self, stmt, env, ctx, info, returns,
                        passthrough, param_sinks) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            for name, value in _assign_targets(stmt):
                self._bind(env, name, expr_taint(value, env, ctx))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            tags = expr_taint(stmt.iter, env, ctx)
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    self._bind(env, sub.id, tags)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    self._bind(env, item.optional_vars.id,
                               expr_taint(item.context_expr, env, ctx))
        elif isinstance(stmt, ast.Return):
            for tag in expr_taint(stmt.value, env, ctx):
                index = _param_index(tag)
                if index is not None:
                    passthrough.add(index)
                else:
                    returns.add(tag)
        elif isinstance(stmt, ast.Call):
            self._summarize_call(stmt, env, ctx, info, param_sinks)

    def _summarize_call(self, call, env, ctx, info,
                        param_sinks) -> None:
        # Direct sink: a parameter's taint reaches a sink call here.
        category = sink_category(call, ctx.resolver)
        if category is not None:
            for tag in _args_taint(call, env, ctx):
                index = _param_index(tag)
                if index is None:
                    continue
                param_sinks.setdefault(index, set()).add(SinkHit(
                    category, info.path, call.lineno, call.col_offset,
                    f"{info.qualname}() feeds it into a {category} "
                    f"sink"))
            return
        # Transitive: a parameter is handed to a callee whose own
        # summary records a parameter→sink flow.
        targets = resolve_targets(self.model, call, info) or ()
        for target in targets:
            callee = self.by_key.get(target.key)
            if callee is None or not callee.param_sinks:
                continue
            for callee_index, entry in call_arguments(call, target):
                hits = callee.param_sinks.get(callee_index)
                if not hits:
                    continue
                for tag in expr_taint(entry, env, ctx):
                    index = _param_index(tag)
                    if index is None:
                        continue
                    for hit in sorted(hits):
                        param_sinks.setdefault(index, set()).add(hit)

"""Per-function purity/side-effect summaries over the call graph.

Every function in the project gets an :class:`Effects` record —
*mutates-params* (which positional parameters it writes through,
aliasing included), *writes-globals*, *writes-attributes* (stores on
objects it did not allocate), *performs-I/O*, *nondet* (draws from a
nondeterministic source) and *opaque-calls* (calls something the
resolver cannot see through).  Effects are computed as a least
fixpoint over the :class:`~..race.callgraph.ProjectModel` call graph:
a function inherits the effects of everything it may call, with
callee parameter mutations mapped back through the call's argument
list onto the caller's own parameters.

The summaries serve two clients:

* the taint rules (:mod:`.rules`) treat a call to a nondet function
  as a taint source even when the ``time.time()`` is three helpers
  deep, and
* the existing analyzers (FLW pairing, RACE002) consult
  :meth:`PuritySummaries.call_verdict` so calls *proven* pure stop
  being conservative mutation/escape points — the precision gain
  ``--stats`` reports as resolved vs conservative call sites.

Resolution errs toward impurity: an unresolvable callee makes the
caller opaque, and a named-but-unknown callee is pure only when it is
on the whitelist of order-safe stdlib/builtin functions below.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from ..rules.determinism import ImportResolver, NumpyGlobalRngRule, \
    WallClockRule
from ..visitor import own_nodes, qualified_name
from ..race.callgraph import (_COLLECTION_MUTATORS, FunctionInfo,
                              ProjectModel)

__all__ = ["Effects", "PurityStats", "PuritySummaries",
           "build_purity", "classify_external", "resolve_targets"]


# ------------------------------------------------- precise resolution
#: Method names shared with builtin container/string/file types.  The
#: race call graph's name-based fallback resolves ``x.append(...)`` to
#: *every* project method named ``append`` — sound for may-yield
#: (an extra callee errs safe) but ruinous for taint and purity, where
#: it would route every list append through ``Binlog.append``'s
#: artifact sink and its I/O effects.
_GENERIC_METHODS = frozenset((
    "append", "add", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "get", "setdefault", "keys",
    "values", "items", "copy", "sort", "reverse", "count", "index",
    "join", "split", "strip", "format", "read", "write", "close",
    "send", "put",
))


def _mentions_class(node: ast.AST, cls: str) -> bool:
    """Does the receiver chain name the class (``binlog.append`` for
    class ``Binlog``)?"""
    needle = cls.lower()
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute) and needle in node.attr.lower():
            return True
        node = node.value
    return isinstance(node, ast.Name) and needle in node.id.lower()


def resolve_targets(model: ProjectModel, call: ast.Call,
                    caller: Optional[FunctionInfo]) -> Optional[list]:
    """``model.resolve_call`` with a precision gate.

    Calls to a :data:`_GENERIC_METHODS` name only resolve to a class's
    method when the receiver gives evidence of the class: ``self``
    inside the class itself, or a receiver path that mentions the
    class name.  Everything else resolves exactly as the race call
    graph does.
    """
    if caller is None:
        return None
    func = call.func
    # A parameter shadows any same-named project function: calling a
    # callable argument (``def run_on_cpu(self, job): ... job()``)
    # must not dispatch to some module's ``def job``.
    if isinstance(func, ast.Name) and \
            func.id in _param_names(caller.node):
        return []
    targets = model.resolve_call(call, caller)
    if not targets or not isinstance(func, ast.Attribute) or \
            func.attr not in _GENERIC_METHODS:
        return targets
    kept = []
    for target in targets:
        if target.cls is None:
            continue
        if isinstance(func.value, ast.Name) and \
                func.value.id == "self" and caller.cls == target.cls:
            kept.append(target)
        elif _mentions_class(func.value, target.cls):
            kept.append(target)
    return kept


# --------------------------------------------------------------- effects
@dataclass
class Effects:
    """One function's side-effect summary (grows monotonically during
    the fixpoint; frozen only conceptually)."""

    mutates_params: set = field(default_factory=set)
    writes_globals: bool = False
    writes_attributes: bool = False
    performs_io: bool = False
    nondet: bool = False
    opaque_calls: bool = False

    @property
    def pure(self) -> bool:
        """No observable effect: safe to treat as a value computation."""
        return not (self.mutates_params or self.writes_globals
                    or self.writes_attributes or self.performs_io
                    or self.nondet or self.opaque_calls)

    def mutates(self) -> bool:
        """Could this function change state its caller can see?"""
        return bool(self.mutates_params) or self.writes_globals \
            or self.writes_attributes or self.opaque_calls

    def absorb(self, other: "Effects") -> bool:
        """Union in ``other``'s non-parameter effects; True if grown."""
        grew = False
        for flag in ("writes_globals", "writes_attributes",
                     "performs_io", "nondet", "opaque_calls"):
            if getattr(other, flag) and not getattr(self, flag):
                setattr(self, flag, True)
                grew = True
        return grew

    def describe(self) -> str:
        """Stable short form for tests: e.g. ``mutates(0) io``."""
        parts = []
        if self.mutates_params:
            indices = ",".join(str(i)
                               for i in sorted(self.mutates_params))
            parts.append(f"mutates({indices})")
        for flag, label in (("writes_globals", "globals"),
                            ("writes_attributes", "attrs"),
                            ("performs_io", "io"),
                            ("nondet", "nondet"),
                            ("opaque_calls", "opaque")):
            if getattr(self, flag):
                parts.append(label)
        return " ".join(parts) if parts else "pure"


# ------------------------------------------------- external call policy
#: Builtins / stdlib calls that compute a value with no side effect and
#: no order dependence worth modeling here.  Resolution falls back to
#: this table when a named callee is not defined in the project.
PURE_EXTERNALS = frozenset((
    "len", "sorted", "min", "max", "abs", "round", "sum", "range",
    "enumerate", "zip", "map", "filter", "reversed", "list", "tuple",
    "dict", "set", "frozenset", "str", "repr", "format", "int",
    "float", "bool", "bytes", "divmod", "pow", "hash", "ord", "chr",
    "isinstance", "issubclass", "hasattr", "getattr", "callable",
    "type", "iter", "next", "all", "any", "vars", "slice",
))

#: Dotted-prefix whitelist: ``math.sqrt`` etc. are value computations.
PURE_PREFIXES = ("math.", "operator.", "bisect.", "itertools.",
                 "statistics.", "json.loads", "os.path.", "re.",
                 "textwrap.", "string.", "copy.", "functools.reduce")

#: Known in-place mutators of their first argument.
MUTATOR_EXTERNALS = frozenset((
    "heapq.heappush", "heapq.heappop", "heapq.heapify",
    "heapq.heapreplace", "heapq.heappushpop", "bisect.insort",
    "bisect.insort_left", "bisect.insort_right", "random.shuffle",
))

#: Dotted-prefix I/O classification (``os.path.`` is carved out by the
#: pure table above, which is consulted first).
IO_PREFIXES = ("os.", "sys.", "io.", "subprocess.", "shutil.",
               "socket.", "logging.", "pathlib.")

IO_CALLS = frozenset(("open", "print", "input"))

#: Nondeterminism sources, shared with the taint engine: wall clocks
#: (the DET001 table), OS entropy, the stdlib/numpy global RNGs and
#: environment reads.
NONDET_CALLS = frozenset(WallClockRule.BANNED) | frozenset((
    "os.urandom", "uuid.uuid1", "uuid.uuid4", "os.getenv", "id",
))

_SEEDED_RNG_CONSTRUCTORS = frozenset((
    "random.Random", "numpy.random.default_rng",
))


def _is_nondet_call(resolved: str, call: ast.Call) -> bool:
    """Whether a call to ``resolved`` draws from a nondet source."""
    if resolved in NONDET_CALLS:
        return True
    if resolved.startswith("secrets."):
        return True
    if resolved in _SEEDED_RNG_CONSTRUCTORS:
        # Seeded construction is the sanctioned path; the bare form
        # seeds from OS entropy.
        return not call.args and not call.keywords
    if resolved == "random.SystemRandom":
        return True
    if resolved.startswith("random."):
        # Module-level functions share the global, unseeded state.
        return resolved != "random.Random"
    if resolved.startswith("numpy.random."):
        return resolved not in NumpyGlobalRngRule.ALLOWED
    return False


def classify_external(resolved: Optional[str],
                      call: ast.Call) -> Optional[Effects]:
    """Effects of a call that does not resolve into the project.

    Returns ``None`` when the name is unknown (the caller becomes
    opaque); otherwise an :class:`Effects` for the known stdlib /
    builtin behaviour.
    """
    if resolved is None:
        return None
    if _is_nondet_call(resolved, call):
        return Effects(nondet=True)
    if resolved in PURE_EXTERNALS:
        return Effects()
    if any(resolved == p or resolved.startswith(p)
           for p in PURE_PREFIXES):
        return Effects()
    if resolved in MUTATOR_EXTERNALS:
        return Effects(mutates_params={0})
    if resolved in IO_CALLS or \
            any(resolved.startswith(p) for p in IO_PREFIXES):
        return Effects(performs_io=True)
    tail = resolved.rsplit(".", 1)[-1]
    if tail[:1].isupper():
        # Constructor-like: allocation, not mutation of arguments.
        return Effects()
    return None


# ------------------------------------------------------- stats plumbing
@dataclass
class PurityStats:
    """Resolved vs conservative call-site accounting for ``--stats``."""

    resolved: int = 0
    conservative: int = 0

    def note(self, verdict: str) -> None:
        if verdict == "unknown":
            self.conservative += 1
        else:
            self.resolved += 1

    def render(self) -> str:
        total = self.resolved + self.conservative
        if not total:
            return "purity: no call sites consulted"
        share = 100.0 * self.resolved / total
        return (f"purity: {self.resolved}/{total} call sites resolved "
                f"({share:.0f}%), {self.conservative} conservative")


# ----------------------------------------------------- direct extraction
def _param_names(node: ast.AST) -> list:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(a.arg for a in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def _head_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` a chain of attributes/subscripts hangs off."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


_FRESH_VALUES = (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.Constant,
                 ast.ListComp, ast.DictComp, ast.SetComp,
                 ast.GeneratorExp)


class _FunctionFacts:
    """One function's locally-visible purity ingredients."""

    def __init__(self, info: FunctionInfo, resolver: ImportResolver,
                 model: ProjectModel):
        self.info = info
        self.direct = Effects()
        #: ``(callee_key, argmap)`` — argmap maps callee parameter
        #: index -> caller parameter indices the argument aliases
        #: (empty set when the argument is a fresh local; ``None``
        #: when it is anything else, i.e. reachable state).
        self.edges: list = []
        self._extract(resolver, model)

    # -- alias sets ---------------------------------------------------
    def _build_aliases(self, node: ast.AST):
        params = _param_names(node)
        aliases = {name: frozenset({i})
                   for i, name in enumerate(params)}
        fresh: set = set()
        assigned: set = set()
        for sub in own_nodes(node):
            if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        assigned.add(target.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for name in ast.walk(sub.target):
                    if isinstance(name, ast.Name):
                        assigned.add(name.id)
        # Propagate "may alias parameter i" through simple name-to-name
        # assignments until stable (flow-insensitive union keeps the
        # conservative direction: a rebound alias stays an alias).
        changed = True
        while changed:
            changed = False
            for sub in own_nodes(node):
                if not isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    continue
                value = sub.value
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                name_targets = [t.id for t in targets
                                if isinstance(t, ast.Name)]
                if not name_targets:
                    continue
                if isinstance(value, ast.Name):
                    source = aliases.get(value.id, frozenset())
                    for name in name_targets:
                        known = aliases.get(name, frozenset())
                        if not source <= known:
                            aliases[name] = known | source
                            changed = True
                elif isinstance(value, _FRESH_VALUES) or (
                        isinstance(value, ast.Call)
                        and _constructor_like(value)):
                    fresh.update(name_targets)
        # A name that is both fresh-assigned and a param alias must be
        # treated as the alias (conservative).
        fresh -= {name for name, ids in aliases.items() if ids}
        return aliases, fresh, assigned

    # -- extraction ---------------------------------------------------
    def _classify_store(self, head: Optional[str], aliases, fresh,
                        assigned) -> None:
        if head is None:
            self.direct.writes_attributes = True
            return
        if head in aliases and aliases[head]:
            self.direct.mutates_params.update(aliases[head])
        elif head in fresh:
            pass  # mutating an object this function allocated
        elif head in assigned:
            # A local rebound from non-fresh state (e.g. ``x =
            # self.pool``): mutating it mutates reachable state.
            self.direct.writes_attributes = True
        else:
            # Module-level / imported object.
            self.direct.writes_globals = True

    def _extract(self, resolver: ImportResolver,
                 model: ProjectModel) -> None:
        node = self.info.node
        aliases, fresh, assigned = self._build_aliases(node)
        for sub in own_nodes(node):
            if isinstance(sub, ast.Global):
                self.direct.writes_globals = True
            elif isinstance(sub, (ast.Assign, ast.AugAssign,
                                  ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute,
                                           ast.Subscript)):
                        self._classify_store(
                            _head_name(target), aliases, fresh,
                            assigned)
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    if isinstance(target, (ast.Attribute,
                                           ast.Subscript)):
                        self._classify_store(
                            _head_name(target), aliases, fresh,
                            assigned)
            elif isinstance(sub, ast.Call):
                self._extract_call(sub, resolver, model, aliases,
                                   fresh, assigned)

    def _extract_call(self, call: ast.Call, resolver: ImportResolver,
                      model: ProjectModel, aliases, fresh,
                      assigned) -> None:
        targets = resolve_targets(model, call, self.info)
        # In-place collection mutation through a receiver chain —
        # unless the receiver gives evidence of a project class, in
        # which case the resolved method's own summary governs.
        if not targets and isinstance(call.func, ast.Attribute) and \
                call.func.attr in _COLLECTION_MUTATORS:
            self._classify_store(_head_name(call.func.value), aliases,
                                 fresh, assigned)
            return
        if targets:
            method = any(t.cls is not None for t in targets)
            argmap = _argument_map(call, aliases, fresh,
                                   method=method)
            for target in targets:
                self.edges.append((target.key, argmap))
            return
        resolved = resolver.resolve(call.func)
        external = classify_external(resolved, call)
        if external is None:
            self.direct.opaque_calls = True
            return
        self.direct.absorb(external)
        for index in external.mutates_params:
            entry = _argument_entry(call, index,
                                    method=isinstance(call.func,
                                                      ast.Attribute))
            self._note_mutated_argument(entry, aliases, fresh,
                                        assigned)

    def _note_mutated_argument(self, entry, aliases, fresh,
                               assigned) -> None:
        if entry is None:
            self.direct.writes_attributes = True
            return
        self._classify_store(_head_name(entry), aliases, fresh,
                             assigned)


def _constructor_like(call: ast.Call) -> bool:
    dotted = qualified_name(call.func)
    if dotted is None:
        return False
    tail = dotted.rsplit(".", 1)[-1]
    return bool(tail) and tail[:1].isupper()


def _argument_entry(call: ast.Call, index: int,
                    method: bool) -> Optional[ast.AST]:
    """The expression passed for callee parameter ``index``.

    For a method call through an attribute, parameter 0 is the
    receiver; positional arguments shift by one.
    """
    if method and isinstance(call.func, ast.Attribute):
        if index == 0:
            return call.func.value
        index -= 1
    if index < len(call.args):
        return call.args[index]
    return None


def _argument_map(call: ast.Call, aliases, fresh, method: bool) -> dict:
    """callee param index -> caller param indices (see _FunctionFacts
    edges).  Only as many positions as the call names are mapped."""
    argmap: dict = {}
    receiver_offset = 0
    if method and isinstance(call.func, ast.Attribute):
        argmap[0] = _entry_aliases(call.func.value, aliases, fresh)
        receiver_offset = 1
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        argmap[position + receiver_offset] = \
            _entry_aliases(arg, aliases, fresh)
    return argmap


def _entry_aliases(entry: ast.AST, aliases, fresh):
    """Caller-parameter indices an argument may alias; empty frozenset
    for fresh locals; ``None`` for reachable state (attributes...)."""
    if isinstance(entry, ast.Name):
        if entry.id in aliases and aliases[entry.id]:
            return frozenset(aliases[entry.id])
        if entry.id in fresh:
            return frozenset()
        return None
    if isinstance(entry, _FRESH_VALUES):
        return frozenset()
    return None


# ------------------------------------------------------------ summaries
class PuritySummaries:
    """Queryable fixpoint effects for every project function."""

    def __init__(self, model: ProjectModel):
        self.model = model
        self.stats = PurityStats()
        self._resolvers: dict = {
            path: ImportResolver(module.tree)
            for path, module in model.modules.items()}
        self._facts: dict = {}
        for info in model.functions.values():
            resolver = self._resolvers[info.path]
            self._facts[info.key] = _FunctionFacts(info, resolver,
                                                   model)
        self._solve()

    # -- fixpoint -----------------------------------------------------
    def _solve(self) -> None:
        # Round-robin to a least fixpoint: effects only grow, the
        # lattice is finite (five flags + a bounded param set), so the
        # loop terminates; recursion cycles with no direct effects
        # settle at pure.
        order = sorted(self._facts)
        changed = True
        while changed:
            changed = False
            for key in order:
                facts = self._facts[key]
                effects = facts.direct
                for callee_key, argmap in facts.edges:
                    callee = self._facts.get(callee_key)
                    if callee is None:
                        continue
                    if effects.absorb(callee.direct):
                        changed = True
                    for index in sorted(callee.direct.mutates_params):
                        mapped = argmap.get(index, None) \
                            if index in argmap else None
                        if mapped is None:
                            if not effects.writes_attributes:
                                effects.writes_attributes = True
                                changed = True
                        elif not mapped <= effects.mutates_params:
                            effects.mutates_params.update(mapped)
                            changed = True

    # -- queries ------------------------------------------------------
    def effects(self, info: FunctionInfo) -> Effects:
        return self._facts[info.key].direct

    def effects_by_qualname(self) -> dict:
        """``qualname -> describe()`` for exact test assertions."""
        return {info.qualname: self.effects(info).describe()
                for info in self.model.functions.values()}

    def resolver_for(self, path: str) -> Optional[ImportResolver]:
        from ..race.callgraph import _norm
        return self._resolvers.get(_norm(path))

    def _resolve_targets(self, call: ast.Call,
                         caller: Optional[FunctionInfo]):
        if caller is not None:
            return resolve_targets(self.model, call, caller)
        func = call.func
        if isinstance(func, ast.Name):
            return self.model.by_name.get(func.id, [])
        if isinstance(func, ast.Attribute):
            return self.model.by_name.get(func.attr, [])
        return None

    def call_verdict(self, call: ast.Call,
                     caller: Optional[FunctionInfo] = None,
                     resolver: Optional[ImportResolver] = None) -> str:
        """``"pure"`` / ``"impure"`` / ``"unknown"`` for a call site.

        *pure* additionally requires every resolved target to be
        yield-free — the contract the FLW/RACE clients rely on.  Every
        consultation is tallied in :attr:`stats`.
        """
        verdict = self._verdict(call, caller, resolver)
        self.stats.note(verdict)
        return verdict

    def _verdict(self, call, caller, resolver) -> str:
        targets = self._resolve_targets(call, caller)
        if targets:
            effects = [self._facts[t.key].direct for t in targets
                       if t.key in self._facts]
            if not effects:
                return "unknown"
            if all(e.pure for e in effects) and \
                    not any(t.may_yield for t in targets):
                return "pure"
            return "impure"
        if resolver is None and caller is not None:
            resolver = self._resolvers.get(caller.path)
        if resolver is None:
            return "unknown"
        external = classify_external(resolver.resolve(call.func), call)
        if external is None:
            return "unknown"
        return "pure" if external.pure else "impure"


def build_purity(model: ProjectModel) -> PuritySummaries:
    """Fixpoint purity summaries for ``model`` (one per check run)."""
    return PuritySummaries(model)

"""TNT rules: determinism-taint source→sink violations.

All five rules are thin views over one shared per-file analysis (the
expensive part — one CFG dataflow solve per function — runs once and
is memoized in ``context.cache``):

* **TNT001** — a nondeterministic value (any kind) flows into kernel
  event scheduling: delays/priorities derived from the host clock or
  entropy make the event order itself irreproducible.
* **TNT002** — a value-nondet kind (wallclock/random/env/id) flows
  into a metric or span name/value: artifacts stop being
  byte-identical per seed.
* **TNT003** — a value-nondet kind flows into a replication payload
  or artifact write (binlog append, exporter write, ExperimentResult).
* **TNT004** — unordered ``set``/``frozenset`` iteration reaches
  ordered output (telemetry or artifacts) without passing through
  ``sorted()`` — hash order varies per process.
* **TNT005** — a wall-clock value steers simulation logic: branches
  on it, or stores it into object/simulation state.

Sanctioned escapes: route the value through ``sorted()`` (TNT004), a
*seeded* ``random.Random(seed)``, or bless the line explicitly with
``# simtaint: blessed=REASON`` (on the sink line or the line where
the taint enters the function) — the reason is mandatory, so every
exemption is self-documenting.  ``# simlint: disable=TNT00x`` works
too, but carries no reason and is reserved for tooling-internal code.

Findings carry the taint path (source, intermediate call hops, and —
for interprocedural sinks — the callee's sink line) as related
locations, rendered by text/JSON/SARIF alike.
"""

from __future__ import annotations

import ast
import os
import re
from typing import NamedTuple, Optional

from ..visitor import LintContext, Rule, qualified_name
from ..flow.cfg import node_expressions
from ..flow.dataflow import solve_forward
from ..flow.rules import cached_cfg
from ..race.callgraph import ProjectModel
from .engine import (NONDET_KINDS, SINK_ARTIFACT, SINK_SCHEDULE,
                     SINK_TELEMETRY, TaintProblem, TaintSummaries,
                     call_arguments, env_of, expr_taint, sink_category,
                     _args_taint, _param_index)
from .purity import resolve_targets

__all__ = ["TAINT_RULES", "taint_rules", "NondetScheduleRule",
           "NondetTelemetryRule", "NondetArtifactRule",
           "UnorderedOutputRule", "WallClockSimLogicRule"]

#: ``# simtaint: blessed=REASON`` — the reason is required; a bare
#: ``blessed=`` does not match and the finding stands.
_BLESSED = re.compile(r"#\s*simtaint:\s*blessed=(\S+)")


def blessed_lines(source: str) -> dict:
    """line number -> blessing reason, for one file."""
    blessed: dict = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "simtaint" not in text:
            continue
        match = _BLESSED.search(text)
        if match:
            blessed[lineno] = match.group(1)
    return blessed


class _Hit(NamedTuple):
    """One pre-computed finding, before suppression filtering."""

    rule_id: str
    line: int
    col: int
    message: str
    related: tuple


def _rule_for(kind: str, category: str) -> Optional[str]:
    """The partition that prevents double-reporting: scheduling owns
    every kind; elsewhere ``unordered`` is TNT004's exclusively."""
    if category == SINK_SCHEDULE:
        return "TNT001"
    if kind == "unordered":
        return "TNT004"
    if kind not in NONDET_KINDS:
        return None
    if category == SINK_TELEMETRY:
        return "TNT002"
    if category == SINK_ARTIFACT:
        return "TNT003"
    return None


_SINK_NOUN = {SINK_SCHEDULE: "event scheduling",
              SINK_TELEMETRY: "telemetry",
              SINK_ARTIFACT: "an artifact/replication payload"}


def _rel(path: str) -> str:
    """Repo-relative rendering of a call-graph (absolute) path."""
    if os.path.isabs(path):
        relative = os.path.relpath(path)
        if not relative.startswith(".."):
            return relative
    return path


def _same_file(left: str, right: str) -> bool:
    return os.path.abspath(left) == os.path.abspath(right)


def _tag_related(context: LintContext, tag) -> tuple:
    related = [(_rel(tag.path), tag.line, tag.col,
                f"source: {tag.desc}")]
    for path, line, col, note in tag.via:
        related.append((_rel(path), line, col, f"via: {note}"))
    return tuple(related)


def _sink_desc(call: ast.Call) -> str:
    name = qualified_name(call.func)
    if name is None and isinstance(call.func, ast.Attribute):
        name = f"<expr>.{call.func.attr}"
    return f"{name or '<computed>'}()"


def _own_calls(expr: ast.AST):
    """Calls evaluated in this fragment, skipping nested defs."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class _FileAnalysis:
    """All TNT hits for one file, computed once per lint pass."""

    def __init__(self, context: LintContext, model: ProjectModel,
                 summaries: TaintSummaries):
        self.context = context
        self.model = model
        self.summaries = summaries
        self.blessed = blessed_lines(context.source)
        self.hits: list = []
        self._seen: set = set()
        module = model.module_for(context.path)
        if module is None:
            return
        # Module-level statements have no CFG; taint at module scope
        # is almost always constant-building and is left to the DET
        # rules.  Every function (any nesting) is analyzed.
        for info in module.all_functions:
            self._check_function(info)
        self.hits.sort(key=lambda h: (h.line, h.col, h.rule_id))

    # -- per function -------------------------------------------------
    def _check_function(self, info) -> None:
        ctx = self.summaries.context_for(info)
        cfg = cached_cfg(info.node)
        result = solve_forward(cfg, TaintProblem(ctx))
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            env = env_of(result.entering(node))
            for expr in node_expressions(node):
                if isinstance(expr, ast.withitem):
                    expr = expr.context_expr
                for call in _own_calls(expr):
                    self._check_sink_call(call, env, ctx, info)
            self._check_sim_logic(node, env, ctx)

    # -- sinks --------------------------------------------------------
    def _check_sink_call(self, call, env, ctx, info) -> None:
        category = sink_category(call, ctx.resolver)
        if category is not None:
            for tag in sorted(_args_taint(call, env, ctx)):
                if _param_index(tag) is not None:
                    continue  # the caller's caller gets the report
                rule_id = _rule_for(tag.kind, category)
                if rule_id is not None:
                    self._record(rule_id, call, tag, category,
                                 _sink_desc(call))
            return
        self._check_interproc_sinks(call, env, ctx, info)

    def _check_interproc_sinks(self, call, env, ctx, info) -> None:
        """A tainted argument handed to a callee whose summary says
        the parameter reaches a sink — report at this call site, with
        the callee's sink line as a related location."""
        targets = resolve_targets(self.model, call, info) or ()
        for target in targets:
            callee = self.summaries.by_key.get(target.key)
            if callee is None or not callee.param_sinks:
                continue
            for index, entry in call_arguments(call, target):
                sinks = callee.param_sinks.get(index)
                if not sinks:
                    continue
                for tag in sorted(expr_taint(entry, env, ctx)):
                    if _param_index(tag) is not None:
                        continue
                    for sink in sorted(sinks):
                        rule_id = _rule_for(tag.kind, sink.category)
                        if rule_id is None:
                            continue
                        extra = ((_rel(sink.path), sink.line, sink.col,
                                  f"sink: {sink.desc}"),)
                        self._record(rule_id, call, tag,
                                     sink.category,
                                     f"{target.qualname}()",
                                     extra_related=extra)

    # -- TNT005 -------------------------------------------------------
    def _check_sim_logic(self, node, env, ctx) -> None:
        stmt = node.stmt
        if isinstance(stmt, (ast.If, ast.While)):
            for tag in sorted(expr_taint(stmt.test, env, ctx)):
                if tag.kind == "wallclock":
                    self._record_simlogic(stmt.test, tag,
                                          "branches on it")
        elif isinstance(stmt, (ast.Assign, ast.AugAssign,
                               ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            if not any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in targets):
                return
            for tag in sorted(expr_taint(stmt.value, env, ctx)
                              if stmt.value is not None
                              else frozenset()):
                if tag.kind == "wallclock":
                    self._record_simlogic(stmt, tag,
                                          "stores it into state")

    # -- recording ----------------------------------------------------
    def _is_blessed(self, sink_line: int, tag) -> bool:
        """Blessed on the sink line, the (same-file) tag line, or any
        same-file hop of the taint path — blessing the original read
        sanctions everything that flows from it."""
        if sink_line in self.blessed:
            return True
        if _same_file(tag.path, self.context.path) and \
                tag.line in self.blessed:
            return True
        return any(_same_file(path, self.context.path)
                   and line in self.blessed
                   for path, line, _col, _note in tag.via)

    def _record(self, rule_id, call, tag, category, sink_desc,
                extra_related: tuple = ()) -> None:
        # One finding per (sink, kind): a value that is unordered via
        # two routes is still one problem at this sink.
        key = (rule_id, call.lineno, call.col_offset, tag.kind,
               sink_desc)
        if key in self._seen or self._is_blessed(call.lineno, tag):
            return
        self._seen.add(key)
        noun = _SINK_NOUN[category]
        if rule_id == "TNT004":
            message = (f"unordered iteration order from {tag.desc} "
                       f"(line {tag.line}) reaches {noun} via "
                       f"{sink_desc} without a sort")
        else:
            message = (f"nondeterministic {tag.kind} value from "
                       f"{tag.desc} (line {tag.line}) flows into "
                       f"{noun} via {sink_desc}")
        self.hits.append(_Hit(rule_id, call.lineno, call.col_offset,
                              message,
                              _tag_related(self.context, tag)
                              + extra_related))

    def _record_simlogic(self, node, tag, what) -> None:
        key = ("TNT005", node.lineno, node.col_offset)
        if key in self._seen or self._is_blessed(node.lineno, tag):
            return
        self._seen.add(key)
        self.hits.append(_Hit(
            "TNT005", node.lineno, node.col_offset,
            f"wall-clock value from {tag.desc} (line {tag.line}) "
            f"steers simulation logic — this code {what}",
            _tag_related(self.context, tag)))


# ------------------------------------------------------------ the rules
class _TaintRule(Rule):
    """One TNT view over the shared per-file analysis."""

    def __init__(self, model: Optional[ProjectModel] = None,
                 summaries: Optional[TaintSummaries] = None):
        self.model = model
        self.summaries = summaries

    def check(self, context: LintContext) -> None:
        if self.model is None or self.summaries is None:
            return  # not wired to a project: nothing to prove
        analysis = context.cache.get("simtaint")
        if analysis is None:
            analysis = _FileAnalysis(context, self.model,
                                     self.summaries)
            context.cache["simtaint"] = analysis
        for hit in analysis.hits:
            if hit.rule_id != self.rule_id:
                continue
            anchor = ast.Pass()
            anchor.lineno = hit.line
            anchor.col_offset = hit.col
            context.report(anchor, self.rule_id, hit.message,
                           hint=self.hint, related=hit.related)


class NondetScheduleRule(_TaintRule):
    rule_id = "TNT001"
    description = "nondeterministic value flows into event scheduling"
    hint = "derive delays/priorities from sim state or a seeded " \
           "RandomStreams stream, or bless with " \
           "'# simtaint: blessed=REASON'"


class NondetTelemetryRule(_TaintRule):
    rule_id = "TNT002"
    description = "nondeterministic value flows into a metric or span"
    hint = "use sim.now / seeded streams for telemetry values, or " \
           "bless with '# simtaint: blessed=REASON'"


class NondetArtifactRule(_TaintRule):
    rule_id = "TNT003"
    description = "nondeterministic value flows into an artifact or " \
                  "replication payload"
    hint = "artifacts must be a pure function of the seed; bless " \
           "deliberate env/clock reads with " \
           "'# simtaint: blessed=REASON'"


class UnorderedOutputRule(_TaintRule):
    rule_id = "TNT004"
    description = "unordered iteration reaches ordered output " \
                  "without a sort"
    hint = "pass the set through sorted(...) before it reaches " \
           "telemetry or artifacts"


class WallClockSimLogicRule(_TaintRule):
    rule_id = "TNT005"
    description = "wall-clock value steers simulation logic"
    hint = "simulation decisions must read Simulator.now, never the " \
           "host clock; bless tooling-internal timing with " \
           "'# simtaint: blessed=REASON'"


TAINT_RULES = (NondetScheduleRule, NondetTelemetryRule,
               NondetArtifactRule, UnorderedOutputRule,
               WallClockSimLogicRule)


def taint_rules(model: ProjectModel,
                summaries: Optional[TaintSummaries] = None) -> list:
    """One instance of every TNT rule, wired to ``model`` and one
    shared summaries fixpoint."""
    if summaries is None:
        summaries = TaintSummaries(model)
    return [cls(model, summaries) for cls in TAINT_RULES]

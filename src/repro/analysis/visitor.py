"""Rule framework: the lint context, the Rule base class, shared AST
helpers and the ``# simlint: disable=...`` suppression machinery."""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from .config import LintConfig
from .findings import Finding

__all__ = ["LintContext", "Rule", "all_rules", "qualified_name",
           "iter_functions", "own_nodes", "is_generator"]

#: ``# simlint: disable`` suppresses every rule on that line;
#: ``# simlint: disable=DET001,SQL002`` suppresses the listed rules.
_SUPPRESSION = re.compile(
    r"#\s*simlint:\s*disable(?:\s*=\s*(?P<rules>[\w,\s]+))?")


class LintContext:
    """Everything a rule needs about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: LintConfig):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.findings: list[Finding] = []
        #: Scratch space rules share within one file (e.g. the flow
        #: rules memoize each function's CFG here).
        self.cache: dict = {}
        self._suppressions = _parse_suppressions(source)
        #: module-level ``NAME = "literal"`` assignments, used by the
        #: SQL rules to resolve f-string placeholders like
        #: ``{HEARTBEAT_TABLE}`` to their actual text.
        self.module_constants = _module_string_constants(tree)

    def report(self, node: ast.AST, rule_id: str, message: str,
               hint: str = "", related: tuple = ()) -> None:
        """Record a finding unless the line suppresses the rule."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        if self.is_suppressed(line, rule_id):
            return
        self.findings.append(Finding(self.path, line, column, rule_id,
                                     message, hint, tuple(related)))

    def is_suppressed(self, line: int, rule_id: str) -> bool:
        rules = self._suppressions.get(line)
        if rules is None:
            return False
        return not rules or rule_id in rules or \
            any(rule_id.startswith(family) for family in rules)


class Rule:
    """One named check.  Subclasses set ``rule_id``/``description``
    and implement :meth:`check` to walk ``context.tree`` and call
    ``context.report`` for each violation."""

    rule_id: str = ""
    description: str = ""
    hint: str = ""

    def check(self, context: LintContext) -> None:
        raise NotImplementedError

    def report(self, context: LintContext, node: ast.AST,
               message: str) -> None:
        context.report(node, self.rule_id, message, hint=self.hint)


def all_rules() -> list[Rule]:
    """One instance of every known rule, DET/SIM/SQL/OBS then FLW."""
    from .flow import rules as flowrules
    from .rules import determinism, obsnames, simsafety, sqlcheck
    rules: list[Rule] = []
    for module in (determinism, simsafety, sqlcheck, obsnames,
                   flowrules):
        rules.extend(cls() for cls in module.RULES)
    return rules


# ----------------------------------------------------------- AST helpers
def qualified_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a Name/Attribute chain, e.g. ``time.time`` or
    ``np.random.default_rng``; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every (sync or async) function definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested function
    or class definitions (their yields/calls belong to *them*)."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def is_generator(function: ast.AST) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in own_nodes(function))


# ------------------------------------------------------------- internals
def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """line -> suppressed rule ids (empty set = suppress everything)."""
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "simlint" not in text:
            continue
        match = _SUPPRESSION.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = frozenset()
        else:
            suppressions[lineno] = frozenset(
                rule.strip() for rule in rules.split(",") if rule.strip())
    return suppressions


def _module_string_constants(tree: ast.Module) -> dict[str, str]:
    constants: dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.targets[0].id] = node.value.value
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name) and \
                isinstance(node.value, ast.Constant) and \
                isinstance(node.value.value, str):
            constants[node.target.id] = node.value.value
    return constants

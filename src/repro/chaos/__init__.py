"""Deterministic fault injection for the replication simulation.

The paper's operational hazards — master failure with an asynchronous
data-loss window (§II), partitions suspending synchronization,
instance-performance variation (§IV-A) — become *schedulable events*:
a :class:`FaultSchedule` drives a :class:`ChaosInjector` against a
live cluster, and :func:`run_drill` wraps the whole thing in a
measured recovery drill (``python -m repro chaos``).
"""

from .drill import (DrillConfig, DrillResult, FailoverController,
                    ReplicaHealthPolicy, default_schedule,
                    render_report_text, run_drill)
from .faults import FAULT_KINDS, Fault, FaultSchedule
from .injector import ChaosInjector

__all__ = [
    "Fault",
    "FaultSchedule",
    "FAULT_KINDS",
    "ChaosInjector",
    "DrillConfig",
    "DrillResult",
    "FailoverController",
    "ReplicaHealthPolicy",
    "default_schedule",
    "run_drill",
    "render_report_text",
]

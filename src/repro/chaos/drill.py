"""Fault drills: run a workload, break the cluster, measure recovery.

A drill is a scaled-down experiment cell (same phase structure, same
observability contract as ``run_experiment``) with three extra
actors:

* a :class:`~repro.chaos.injector.ChaosInjector` executing the fault
  schedule;
* a :class:`FailoverController` that polls master liveness and, on a
  crash, promotes the best eligible slave and re-points the proxy —
  measuring time-to-detect, time-to-recover and the *actual*
  data-loss window (§II's asynchronous-replication caveat);
* a :class:`ReplicaHealthPolicy` that evicts offline or too-stale
  slaves from read balancing and readmits them once they catch up.

The result is a :class:`RecoveryReport` — a canonical JSON document
(sorted keys, rounded floats, content digest) that is byte-identical
for a given seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from ..cloud.instance import CpuModel
from ..cloud.provisioner import Cloud
from ..cloud.regions import DEFAULT_CATALOG, MASTER_PLACEMENT
from ..db.errors import DatabaseError
from ..obs import Observability
from ..replication.failover import data_loss_window, promote
from ..replication.heartbeat import HeartbeatPlugin
from ..replication.manager import ReplicationManager
from ..replication.monitor import ClusterMonitor
from ..replication.pool import ConnectionPool
from ..replication.proxy import ReadWriteSplitProxy
from ..replication.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..sim import RandomStreams, Simulator
from ..workloads.cloudstone import (MIX_50_50, LoadGenerator, Phases,
                                    load_initial_data)
from .faults import Fault, FaultSchedule
from .injector import ChaosInjector

__all__ = ["DrillConfig", "DrillResult", "FailoverController",
           "ReplicaHealthPolicy", "default_schedule", "run_drill",
           "render_report_text"]

#: Slave placements, in attachment order: one local replica, one
#: cross-region replica (so partitions and latency surges bite), then
#: spares around the catalogue.
_SLAVE_ZONES = ("us-east-1a", "eu-west-1a", "us-east-1b", "us-west-1a",
                "eu-west-1b", "ap-southeast-1a")


@dataclass(frozen=True)
class DrillConfig:
    """One fault drill's knobs (defaults = the canonical drill)."""

    seed: int = 0
    n_users: int = 20
    n_slaves: int = 2
    data_size: int = 150
    think_time_mean: float = 5.0
    baseline_duration: float = 30.0
    phases: Phases = field(default_factory=lambda: Phases(
        ramp_up=10.0, steady=150.0, ramp_down=10.0))
    heartbeat_interval: float = 1.0
    monitor_period: float = 2.5
    #: Failover-controller liveness poll period (bounds detect time).
    detect_period: float = 0.5
    #: Health policy: staleness that evicts / readmits a slave.
    evict_behind_s: float = 5.0
    readmit_behind_s: float = 1.0
    health_period: float = 1.0
    retry: Optional[RetryPolicy] = DEFAULT_RETRY_POLICY
    #: None runs :func:`default_schedule`.
    schedule: Optional[FaultSchedule] = None
    #: Seconds allowed for post-drill replication drain before the
    #: consistency verdict.
    drain_timeout: float = 60.0


def default_schedule() -> FaultSchedule:
    """The canonical drill: every fault kind, master crash last.

    Times are relative to workload start (a 10/150/10 phase run).  The
    two ``repl-stall`` faults straddling the ``master-crash`` freeze
    both replication channels first, so commits acknowledged during
    the stall demonstrably die with the master — a reliably nonzero
    data-loss window.
    """
    return FaultSchedule([
        Fault(at=20.0, kind="latency", target="us-east-1|eu-west-1",
              duration=20.0, severity=120.0),
        Fault(at=30.0, kind="slave-slow", target="slave-1",
              duration=30.0, severity=0.35),
        Fault(at=70.0, kind="partition", target="us-east-1|eu-west-1",
              duration=15.0),
        Fault(at=95.0, kind="repl-stall", target="slave-2",
              duration=10.0),
        Fault(at=110.0, kind="slave-crash", target="slave-2",
              duration=15.0),
        Fault(at=128.0, kind="repl-stall", target="slave-1",
              duration=20.0),
        Fault(at=128.5, kind="repl-stall", target="slave-2",
              duration=20.0),
        # Off the controller's 0.5 s poll grid, so the reported
        # time-to-detect reflects the polling delay instead of a
        # same-instant coincidence.
        Fault(at=133.2, kind="master-crash"),
    ])


class FailoverController:
    """Detects a dead master and drives the promotion procedure."""

    def __init__(self, sim: Simulator, manager: ReplicationManager,
                 proxy: ReadWriteSplitProxy, period: float = 0.5):
        self.sim = sim
        self.manager = manager
        self.proxy = proxy
        self.period = period
        #: One dict per completed failover (a drill can have several).
        self.failovers: list[dict] = []
        self._process = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("failover controller already started")
        self._process = self.sim.process(self._run(),
                                         name="failover-controller")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def _eligible_candidate(self):
        candidates = [s for s in self.manager.slaves
                      if s.online and s.instance.running]
        if not candidates:
            return None
        return max(candidates,
                   key=lambda s: (s.received_position, s.name))

    def _run(self):
        from ..sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.period)
                dead = self.manager.master
                if dead is None or dead.online:
                    continue
                detected_at = self.sim.now
                candidate = self._eligible_candidate()
                if candidate is None:
                    # Nothing promotable yet (every slave down too);
                    # keep polling — a slave restart unblocks us.
                    continue
                with self.sim.tracer.span(
                        "chaos.failover", category="chaos",
                        track="chaos", candidate=candidate.name):
                    try:
                        new_master = yield from promote(self.manager,
                                                        candidate)
                    except DatabaseError:
                        # The candidate died (or the cluster changed)
                        # while draining; next poll picks a fresh one.
                        continue
                    self.proxy.set_master(new_master)
                lost = data_loss_window(dead, candidate)
                self.failovers.append({
                    "detected_at": detected_at,
                    "promoted": new_master.name,
                    "recovered_at": self.sim.now,
                    "lost_commits": lost,
                    "dead_binlog_head": dead.binlog.head_position,
                    "candidate_received": candidate.received_position,
                })
        except Interrupt:
            return


class ReplicaHealthPolicy:
    """Evicts stale/offline slaves from reads; readmits on recovery."""

    def __init__(self, sim: Simulator, manager: ReplicationManager,
                 proxy: ReadWriteSplitProxy, period: float = 1.0,
                 evict_behind_s: float = 5.0,
                 readmit_behind_s: float = 1.0):
        if readmit_behind_s > evict_behind_s:
            raise ValueError("readmit threshold must not exceed the "
                             "evict threshold (hysteresis)")
        self.sim = sim
        self.manager = manager
        self.proxy = proxy
        self.period = period
        self.evict_behind_s = evict_behind_s
        self.readmit_behind_s = readmit_behind_s
        self._process = None

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("health policy already started")
        self._process = self.sim.process(self._run(),
                                         name="replica-health")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def check_now(self) -> None:
        """One health pass over the cluster."""
        for slave in self.manager.slaves:
            if not slave.online or not slave.instance.running:
                self.proxy.evict(slave, reason="offline")
                continue
            behind = slave.seconds_behind_master()
            if behind > self.evict_behind_s:
                self.proxy.evict(slave, reason="stale")
            elif self.proxy.is_evicted(slave) \
                    and behind <= self.readmit_behind_s:
                self.proxy.readmit(slave)

    def _run(self):
        from ..sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.period)
                self.check_now()
        except Interrupt:
            return


@dataclass
class DrillResult:
    """The recovery report plus live handles for inspection."""

    report: dict
    manager: ReplicationManager
    generator: LoadGenerator
    injector: ChaosInjector
    controller: FailoverController
    monitor: ClusterMonitor
    proxy: ReadWriteSplitProxy
    observe: Optional[Observability] = None
    #: The SLO plane's handles, when the drill carried an SLO spec.
    live: Optional[object] = None
    #: Canonical incident timeline (``incidents.json`` payload), with
    #: the detection scorecard against the injected schedule.
    incidents: Optional[dict] = None
    #: The executed schedule and its sim-time origin (faults are
    #: relative to ``workload_start``).
    schedule: Optional[FaultSchedule] = None
    workload_start: float = 0.0


def _round(value: float, digits: int = 6) -> float:
    return round(float(value), digits)


def _build_report(config: DrillConfig, schedule: FaultSchedule,
                  injector: ChaosInjector,
                  controller: FailoverController,
                  monitor: ClusterMonitor, generator: LoadGenerator,
                  proxy: ReadWriteSplitProxy, pool: ConnectionPool,
                  workload_start: float, consistency: dict,
                  observe: Optional[Observability],
                  slo_section: Optional[dict] = None) -> dict:
    crash_times = [when for when, fault, action, _note in injector.log
                   if fault.kind == "master-crash" and action == "begin"]
    failover: Optional[dict] = None
    if controller.failovers:
        event = controller.failovers[0]
        crash_at = crash_times[0] if crash_times \
            else event["detected_at"]
        failover = {
            "crash_at": _round(crash_at),
            "detected_at": _round(event["detected_at"]),
            "time_to_detect_s": _round(event["detected_at"] - crash_at),
            "promoted": event["promoted"],
            "recovered_at": _round(event["recovered_at"]),
            "time_to_recover_s": _round(event["recovered_at"]
                                        - crash_at),
            "lost_commits": event["lost_commits"],
            "dead_binlog_head": event["dead_binlog_head"],
            "candidate_received": event["candidate_received"],
        }

    baseline_max = 0.0
    workload_max = 0.0
    per_slave_max: dict[str, float] = {}
    for sample in monitor.samples:
        in_baseline = sample.time <= workload_start
        for slave in sample.slaves:
            if in_baseline:
                baseline_max = max(baseline_max, slave.seconds_behind)
            else:
                workload_max = max(workload_max, slave.seconds_behind)
                per_slave_max[slave.name] = max(
                    per_slave_max.get(slave.name, 0.0),
                    slave.seconds_behind)
    spike_ratio = workload_max / max(baseline_max, 1e-3)

    report = {
        "seed": config.seed,
        "config": {
            "users": config.n_users,
            "slaves": config.n_slaves,
            "data_size": config.data_size,
            "baseline_s": _round(config.baseline_duration),
            "phases_s": [_round(config.phases.ramp_up),
                         _round(config.phases.steady),
                         _round(config.phases.ramp_down)],
            "retry": None if config.retry is None else {
                "max_attempts": config.retry.max_attempts,
                "base_backoff_s": _round(config.retry.base_backoff),
                "acquire_timeout_s":
                    None if config.retry.acquire_timeout is None
                    else _round(config.retry.acquire_timeout),
            },
        },
        "schedule": {
            "faults": len(schedule),
            "digest": schedule.digest(),
            "timeline": schedule.timeline().splitlines(),
        },
        "applied": injector.timeline(),
        "failover": failover,
        "staleness": {
            "baseline_max_s": _round(baseline_max),
            "workload_max_s": _round(workload_max),
            "spike_ratio": _round(spike_ratio, 3),
            "per_slave_max_s": {name: _round(value)
                                for name, value
                                in sorted(per_slave_max.items())},
        },
        "driver": {
            "steady_throughput_ops": _round(
                generator.steady_throughput(), 3),
            "operations": int(sum(generator.op_counts.values())),
            "errors": generator.errors,
            "retries": generator.retries,
            "pool_timeouts": generator.pool_timeouts,
        },
        "routing": {
            "evictions": proxy.evictions,
            "readmissions": proxy.readmissions,
            "reads_routed": proxy.reads_routed,
            "writes_routed": proxy.writes_routed,
        },
        "pool": {
            "borrows": pool.total_borrows,
            "timeouts": pool.timeouts,
            "mean_wait_s": _round(pool.mean_wait_time),
        },
        "consistency": consistency,
    }
    if observe is not None:
        from ..obs.export import metrics_jsonl
        metrics_digest = hashlib.sha256(
            metrics_jsonl(observe.metrics).encode("utf-8")).hexdigest()
        report["observability"] = {
            "spans": len(observe.tracer.spans),
            "droppedSpans": observe.tracer.dropped,
            "metricsDigest": metrics_digest,
        }
    else:
        report["observability"] = None
    if slo_section is not None:
        # Key present only for SLO-carrying drills, so plain drills
        # stay byte-identical to their pre-SLO artifacts.
        report["slo"] = slo_section
    canonical = json.dumps(report, sort_keys=True,
                           separators=(",", ":"))
    report["digest"] = hashlib.sha256(
        canonical.encode("utf-8")).hexdigest()
    return report


def run_drill(config: DrillConfig = DrillConfig(),
              observe: Optional[Observability] = None,
              sanitizer=None, slo=None) -> DrillResult:
    """Execute one fault drill; deterministic per ``config.seed``.

    Mirrors ``run_experiment``'s timeline (baseline phase span, then a
    workload phase span carrying the analyze plane's window
    attributes) so ``repro analyze`` works on drill traces unchanged.

    Pass a :class:`~repro.analysis.race.RaceSanitizer` to watch the
    drill's shared surfaces for stale write-backs; like observation,
    instrumentation is read-only — the recovery report is
    byte-identical with or without it (when no race fires).

    ``slo`` (an :class:`~repro.obs.live.SLOSpec` or
    :class:`~repro.obs.live.LiveSession`) turns the live SLO plane
    on: alerts are evaluated at sim-time while the faults land, the
    detection scorecard grades fire-times against the injected
    schedule, and the report gains an ``slo`` section.  A bare spec
    implies a default :class:`Observability` (the stream tap needs a
    metrics registry).
    """
    live = None
    if slo is not None:
        from ..obs.live import LiveSession
        live = LiveSession.of(slo)
        if observe is None:
            observe = Observability()
    sim = Simulator()
    if observe is not None:
        observe.attach(sim)
    if sanitizer is not None:
        sanitizer.attach(sim)
    if live is not None:
        live.attach(sim)
    streams = RandomStreams(config.seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=1.0)
    master = manager.create_master(MASTER_PLACEMENT)
    # A validated master (the paper's §IV-A advice) keeps the drill's
    # signal on the *injected* faults, not the instance lottery.
    master.instance.pin_hardware(CpuModel("Intel Xeon E5430 2.66GHz",
                                          1.0))
    state = load_initial_data(master, config.data_size,
                              streams.stream("loader"))
    heartbeat = HeartbeatPlugin(sim, master,
                                interval=config.heartbeat_interval)
    heartbeat.install()
    for index in range(config.n_slaves):
        zone = _SLAVE_ZONES[index % len(_SLAVE_ZONES)]
        manager.add_slave(DEFAULT_CATALOG.placement(zone))
    heartbeat.start()
    monitor = ClusterMonitor(sim, manager, period=config.monitor_period)
    monitor.start()

    with sim.tracer.span("phase.baseline", category="experiment",
                         track="experiment"):
        sim.run(until=config.baseline_duration)
    workload_start = sim.now

    proxy = manager.build_proxy(MASTER_PLACEMENT)
    pool = ConnectionPool(sim, max_active=config.n_users)
    if sanitizer is not None:
        from ..analysis.race import instrument_cluster
        instrument_cluster(sanitizer, pool=pool, proxy=proxy,
                           manager=manager)
    generator = LoadGenerator(sim, proxy, pool, MIX_50_50, state,
                              streams, n_users=config.n_users,
                              think_time_mean=config.think_time_mean,
                              phases=config.phases,
                              retry=config.retry)
    generator.start()

    schedule = config.schedule if config.schedule is not None \
        else default_schedule()
    schedule.validate_targets(
        [slave.name for slave in manager.slaves],
        region_names=DEFAULT_CATALOG.region_names)
    injector = ChaosInjector(sim, manager, cloud.network, schedule,
                             proxy=proxy, offset=workload_start)
    injector.start()
    controller = FailoverController(sim, manager, proxy,
                                    period=config.detect_period)
    controller.start()
    health = ReplicaHealthPolicy(
        sim, manager, proxy, period=config.health_period,
        evict_behind_s=config.evict_behind_s,
        readmit_behind_s=config.readmit_behind_s)
    health.start()

    steady_start = workload_start + config.phases.steady_start
    steady_end = workload_start + config.phases.steady_end
    with sim.tracer.span("phase.workload", category="experiment",
                         track="experiment", users=config.n_users,
                         slaves=config.n_slaves,
                         workload_start=workload_start,
                         steady_start=steady_start,
                         steady_end=steady_end):
        sim.run(until=workload_start + config.phases.total)
    heartbeat.stop()
    injector.stop()
    controller.stop()
    health.stop()

    # Post-drill drain: let replication catch up, then compare table
    # checksums — a crash-during-apply or a missed resync shows up
    # here, not as a silently wrong report.
    drained = False
    if manager.master is not None and manager.master.online:
        drain = sim.process(
            manager.wait_until_caught_up(
                timeout=config.drain_timeout))
        sim.run(until=sim.now + config.drain_timeout + 1.0)
        drained = bool(drain.value) if drain.triggered else False
    monitor.stop()
    consistency = {
        "drained": drained,
        "consistent": manager.verify_consistency() if drained
        else False,
        "slaves": len(manager.slaves),
    }
    if observe is not None:
        observe.finalize()

    incidents = None
    slo_section = None
    if live is not None:
        from ..obs.live import score_detection
        detection = score_detection(live.incidents, schedule,
                                    offset=workload_start)
        incidents = live.document(sim.now, detection=detection)
        slo_section = {
            "spec": incidents["spec"],
            "fired": incidents["fired"],
            "resolved": incidents["resolved"],
            "detected": detection["detected"],
            "scored": detection["scored"],
            "incidentsDigest": incidents["digest"],
        }

    report = _build_report(config, schedule, injector, controller,
                           monitor, generator, proxy, pool,
                           workload_start, consistency, observe,
                           slo_section=slo_section)
    return DrillResult(report=report, manager=manager,
                       generator=generator, injector=injector,
                       controller=controller, monitor=monitor,
                       proxy=proxy, observe=observe, live=live,
                       incidents=incidents, schedule=schedule,
                       workload_start=workload_start)


def render_report_text(report: dict) -> str:
    """The human-readable recovery report."""
    lines = [
        f"chaos drill — seed {report['seed']}",
        f"schedule: {report['schedule']['faults']} faults, "
        f"digest {report['schedule']['digest'][:16]}…",
        "",
        "fault timeline (applied):",
    ]
    lines.extend(f"  {line}" for line in report["applied"])
    lines.append("")
    failover = report["failover"]
    if failover is None:
        lines.append("failover: none (master survived)")
    else:
        lines.extend([
            "failover:",
            f"  crash at           t={failover['crash_at']:.3f}s",
            f"  time to detect     {failover['time_to_detect_s']:.3f}s",
            f"  promoted           {failover['promoted']}",
            f"  time to recover    "
            f"{failover['time_to_recover_s']:.3f}s",
            f"  lost commits       {failover['lost_commits']} "
            f"(binlog {failover['dead_binlog_head']} vs received "
            f"{failover['candidate_received']})",
        ])
    staleness = report["staleness"]
    lines.extend([
        "",
        "staleness:",
        f"  baseline max       {staleness['baseline_max_s']:.3f}s",
        f"  workload max       {staleness['workload_max_s']:.3f}s "
        f"(spike ×{staleness['spike_ratio']:.1f})",
    ])
    for name, value in staleness["per_slave_max_s"].items():
        lines.append(f"    {name:<12s}     {value:.3f}s")
    driver = report["driver"]
    routing = report["routing"]
    consistency = report["consistency"]
    lines.extend([
        "",
        f"driver: {driver['operations']} ops, "
        f"{driver['steady_throughput_ops']:.2f} ops/s steady, "
        f"{driver['errors']} errors, {driver['retries']} retries, "
        f"{driver['pool_timeouts']} pool timeouts",
        f"routing: {routing['evictions']} evictions, "
        f"{routing['readmissions']} readmissions",
        f"consistency: drained={consistency['drained']} "
        f"consistent={consistency['consistent']}",
    ])
    if report["observability"] is not None:
        obs = report["observability"]
        lines.append(f"observability: {obs['spans']} spans, "
                     f"{obs['droppedSpans']} dropped, metrics digest "
                     f"{obs['metricsDigest'][:16]}…")
    lines.append(f"report digest: {report['digest']}")
    return "\n".join(lines)

"""Fault schedules: *what* goes wrong, *when*, for *how long*.

A :class:`FaultSchedule` is pure data — a sorted list of
:class:`Fault` entries with sim-time offsets — so the same schedule
can be printed, hashed, replayed and asserted on.  Schedules come from
three places: hand-built lists (tests), the default drill plan
(:func:`repro.chaos.drill.default_schedule`) and seeded random plans
(:meth:`FaultSchedule.random_plan`), all deterministic.

Fault kinds:

``master-crash``
    The master VM dies (no auto-restart; recovery is a failover
    promotion).  ``target``/``duration``/``severity`` unused.
``slave-crash``
    A slave VM dies; after ``duration`` seconds it restarts and is
    snapshot-resynced from the master.  ``target`` is the slave name.
``partition``
    The link between two regions is cut for ``duration`` seconds;
    held replication traffic burst-flushes in order on heal.
    ``target`` is ``"region-a|region-b"``.
``latency``
    One-way latency on a region pair (or everywhere, ``target="*"``)
    surges by ``severity`` milliseconds for ``duration`` seconds.
``slave-slow``
    A slave's CPU degrades to ``severity`` × nominal speed for
    ``duration`` seconds — the paper's §IV-A instance-performance
    variation, made transient.  ``target`` is the slave name.
``repl-stall``
    The replication channel feeding one slave hangs for ``duration``
    seconds (the dump connection wedges; client traffic unaffected),
    then flushes.  ``target`` is the slave name.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..sim import RandomStreams

__all__ = ["Fault", "FaultSchedule", "FAULT_KINDS"]

FAULT_KINDS = ("master-crash", "slave-crash", "partition", "latency",
               "slave-slow", "repl-stall")

#: Kinds whose ``target`` names a slave.
_SLAVE_KINDS = ("slave-crash", "slave-slow", "repl-stall")
#: Kinds whose ``target`` names a region pair.
_LINK_KINDS = ("partition", "latency")


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault (times relative to the schedule origin)."""

    at: float
    kind: str
    target: str = ""
    duration: float = 0.0
    severity: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, "
                             f"got {self.duration}")
        if self.kind in _SLAVE_KINDS and not self.target:
            raise ValueError(f"{self.kind} needs a slave name target")
        if self.kind == "partition" and "|" not in self.target:
            raise ValueError("partition target must be "
                             "'region-a|region-b'")
        if self.kind == "latency" and self.severity <= 0:
            raise ValueError("latency fault needs severity "
                             "(extra one-way ms) > 0")
        if self.kind == "slave-slow" \
                and not 0.0 < self.severity <= 1.0:
            raise ValueError("slave-slow severity is a speed factor "
                             "in (0, 1]")

    @property
    def regions(self) -> tuple[str, ...]:
        """The region names a link fault targets."""
        if self.kind not in _LINK_KINDS or self.target == "*":
            return ()
        return tuple(self.target.split("|"))

    def describe(self) -> str:
        parts = [f"t=+{self.at:09.3f}s", f"{self.kind:<12s}",
                 self.target or "-"]
        if self.duration > 0:
            parts.append(f"for {self.duration:.1f}s")
        if self.severity > 0:
            label = "extra_ms" if self.kind == "latency" else "factor"
            parts.append(f"{label}={self.severity:g}")
        return "  ".join(parts)


class FaultSchedule:
    """An ordered, validated plan of faults."""

    def __init__(self, faults: Iterable[Fault]):
        self.faults: tuple[Fault, ...] = tuple(sorted(faults))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def horizon(self) -> float:
        """When the last fault has fully played out."""
        return max((f.at + f.duration for f in self.faults),
                   default=0.0)

    def timeline(self) -> str:
        """Human-readable (and hash-stable) rendering."""
        return "\n".join(fault.describe() for fault in self.faults)

    def digest(self) -> str:
        """SHA-256 of the timeline — byte-identical per seed."""
        return hashlib.sha256(
            self.timeline().encode("utf-8")).hexdigest()

    @classmethod
    def random_plan(cls, streams: RandomStreams, horizon: float,
                    slaves: Sequence[str],
                    region_pairs: Sequence[tuple[str, str]] = (),
                    n_faults: int = 5,
                    include_master_crash: bool = False,
                    stream_name: str = "chaos.plan"
                    ) -> "FaultSchedule":
        """Draw a deterministic random plan from a seeded stream.

        Faults start in the first 70 % of ``horizon`` so their effects
        (and recoveries) land inside the observed window.  With
        ``include_master_crash`` one crash is appended at 80 % of the
        horizon — late, so the plan measures recovery rather than
        running most of the drill on the promoted topology.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if not slaves:
            raise ValueError("random plans need at least one slave")
        rng = streams.stream(stream_name)
        kinds = ["slave-slow", "repl-stall", "slave-crash"]
        if region_pairs:
            kinds += ["latency", "partition"]
        faults: list[Fault] = []
        for _ in range(n_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            at = float(rng.uniform(0.05, 0.70)) * horizon
            duration = float(rng.uniform(0.05, 0.15)) * horizon
            target, severity = "", 0.0
            if kind in _SLAVE_KINDS:
                target = slaves[int(rng.integers(len(slaves)))]
                if kind == "slave-slow":
                    severity = float(rng.uniform(0.2, 0.6))
            else:
                pair = region_pairs[int(rng.integers(len(region_pairs)))]
                target = "|".join(pair)
                if kind == "latency":
                    severity = float(rng.uniform(50.0, 250.0))
            faults.append(Fault(at=at, kind=kind, target=target,
                                duration=duration, severity=severity))
        if include_master_crash:
            faults.append(Fault(at=0.8 * horizon, kind="master-crash"))
        return cls(faults)

    def validate_targets(self, slave_names: Sequence[str],
                         region_names: Optional[Sequence[str]] = None
                         ) -> None:
        """Fail fast on targets the cluster does not have."""
        for fault in self.faults:
            if fault.kind in _SLAVE_KINDS \
                    and fault.target not in slave_names:
                raise ValueError(
                    f"fault targets unknown slave {fault.target!r} "
                    f"(cluster has {sorted(slave_names)})")
            if region_names is not None:
                for region in fault.regions:
                    if region not in region_names:
                        raise ValueError(
                            f"fault targets unknown region {region!r}")

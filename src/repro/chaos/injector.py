"""Executes a :class:`FaultSchedule` against a live cluster.

One injector process walks the schedule in sim time and applies each
fault through the public substrate hooks (``Instance.crash``,
``Network.partition``/``add_latency``, ``OrderedChannel.stall`` via
the manager, ...).  Every begin/end is logged, traced (a ``chaos.fault``
span covering the fault's active window, or an instant for one-shot
faults) and counted, so ``repro analyze`` can line the degraded cells
up with their injected causes.

The injector is deliberately *not* the recovery path: it breaks
things; the drill's failover controller and replica health policy
(:mod:`repro.chaos.drill`) fix them — except a crashed slave's
restart+resync, which models the cloud provider rebooting the VM.
"""

from __future__ import annotations

from typing import Optional

from ..cloud.network import Network
from ..db.errors import DatabaseError
from ..replication.failover import fail_master
from ..replication.manager import ReplicationManager
from ..replication.proxy import ReadWriteSplitProxy
from ..replication.slave import SlaveServer
from ..sim import Simulator
from .faults import Fault, FaultSchedule

__all__ = ["ChaosInjector"]


class ChaosInjector:
    """Applies a fault schedule to a running cluster."""

    def __init__(self, sim: Simulator, manager: ReplicationManager,
                 network: Network, schedule: FaultSchedule,
                 proxy: Optional[ReadWriteSplitProxy] = None,
                 offset: float = 0.0):
        self.sim = sim
        self.manager = manager
        self.network = network
        self.schedule = schedule
        self.proxy = proxy
        self.offset = offset
        #: Chronological action log: ``(sim time, fault, action, note)``
        #: where action is ``begin`` / ``end`` / ``skip``.
        self.log: list[tuple[float, Fault, str, str]] = []
        self._process = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("injector already started")
        self._process = self.sim.process(self._run(),
                                         name="chaos-injector")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def _run(self):
        from ..sim import Interrupt
        try:
            for fault in self.schedule:
                due = self.offset + fault.at
                if due > self.sim.now:
                    yield self.sim.timeout(due - self.sim.now)
                self._begin(fault)
        except Interrupt:
            return

    # -- bookkeeping ---------------------------------------------------------
    def _note(self, fault: Fault, action: str, note: str = "") -> None:
        self.log.append((self.sim.now, fault, action, note))

    def _emit_begin(self, fault: Fault):
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter("chaos.faults").inc()
            metrics.counter(f"chaos.fault.{fault.kind}").inc()
        tracer = self.sim.tracer
        if not tracer.enabled:
            return None
        if fault.duration <= 0:
            tracer.instant("chaos.fault", category="chaos",
                           track="chaos", kind=fault.kind,
                           target=fault.target or "-")
            return None
        # The span covers the fault's active window; ownership passes
        # to the end-timer process, which closes it.
        return tracer.open_span("chaos.fault", category="chaos",
                                track="chaos", kind=fault.kind,
                                target=fault.target or "-",
                                severity=fault.severity)

    def _slave(self, name: str) -> Optional[SlaveServer]:
        for slave in self.manager.slaves:
            if slave.name == name:
                return slave
        return None

    # -- fault application ---------------------------------------------------
    def _begin(self, fault: Fault) -> None:
        handler = getattr(self, "_begin_" + fault.kind.replace("-", "_"))
        span = self._emit_begin(fault)
        ended_early = handler(fault)
        if ended_early:
            if span is not None:
                span.end()
            return
        self.sim.process(self._end_later(fault, span),
                         name=f"chaos-end:{fault.kind}")

    def _end_later(self, fault: Fault, span):
        from ..sim import Interrupt
        try:
            yield self.sim.timeout(fault.duration)
        except Interrupt:
            if span is not None:
                span.end()
            return
        handler = getattr(self, "_end_" + fault.kind.replace("-", "_"))
        handler(fault)
        if span is not None:
            span.end()

    # master-crash: one-shot; the drill's failover controller recovers.
    def _begin_master_crash(self, fault: Fault) -> bool:
        master = self.manager.master
        if master is None or not master.online:
            self._note(fault, "skip", "no online master")
            return True
        head = master.binlog.head_position
        fail_master(self.manager)
        master.instance.crash()
        self._note(fault, "begin",
                   f"master={master.name} binlog_head={head}")
        return True

    # slave-crash: down for ``duration``, then restart + resync.
    def _begin_slave_crash(self, fault: Fault) -> bool:
        slave = self._slave(fault.target)
        if slave is None:
            self._note(fault, "skip", "slave not in cluster")
            return True
        if self.proxy is not None:
            self.proxy.evict(slave, reason="crash")
        master = self.manager.master
        if master is not None \
                and any(s is slave for s in master.slaves):
            master.detach_slave(slave)
        slave.stop_replication()
        slave.online = False
        slave.instance.crash()
        self._note(fault, "begin", f"slave={slave.name}")
        return fault.duration <= 0

    def _end_slave_crash(self, fault: Fault) -> None:
        slave = self._slave(fault.target)
        if slave is None:
            self._note(fault, "skip", "slave left cluster while down")
            return
        slave.instance.restart()
        try:
            self.manager.resync_slave(slave)
        except DatabaseError as error:
            self._note(fault, "end", f"restart without resync: {error}")
            return
        if self.proxy is not None:
            self.proxy.readmit(slave)
        self._note(fault, "end", f"slave={slave.name} resynced at "
                                 f"position {slave.start_position}")

    # partition: cut a region pair, heal after ``duration``.
    def _begin_partition(self, fault: Fault) -> bool:
        region_a, region_b = fault.regions
        self.network.partition(region_a, region_b)
        self._note(fault, "begin", fault.target)
        return fault.duration <= 0

    def _end_partition(self, fault: Fault) -> None:
        region_a, region_b = fault.regions
        self.network.heal(region_a, region_b)
        self._note(fault, "end", f"{fault.target} healed")

    # latency: surge one pair (or everywhere with target "*").
    def _begin_latency(self, fault: Fault) -> bool:
        if fault.target == "*":
            self.network.add_latency(fault.severity)
        else:
            region_a, region_b = fault.regions
            self.network.add_latency(fault.severity, region_a, region_b)
        self._note(fault, "begin",
                   f"{fault.target} +{fault.severity:g}ms")
        return fault.duration <= 0

    def _end_latency(self, fault: Fault) -> None:
        if fault.target == "*":
            self.network.clear_latency()
        else:
            region_a, region_b = fault.regions
            self.network.clear_latency(region_a, region_b)
        self._note(fault, "end", f"{fault.target} restored")

    # slave-slow: degrade the instance CPU by ``severity``.
    def _begin_slave_slow(self, fault: Fault) -> bool:
        slave = self._slave(fault.target)
        if slave is None:
            self._note(fault, "skip", "slave not in cluster")
            return True
        slave.instance.slow_down(fault.severity)
        self._note(fault, "begin",
                   f"slave={slave.name} factor={fault.severity:g}")
        return fault.duration <= 0

    def _end_slave_slow(self, fault: Fault) -> None:
        slave = self._slave(fault.target)
        if slave is None:
            self._note(fault, "skip", "slave left cluster while slow")
            return
        slave.instance.restore_speed()
        self._note(fault, "end", f"slave={slave.name} restored")

    # repl-stall: wedge the dump connection feeding one slave.
    def _begin_repl_stall(self, fault: Fault) -> bool:
        slave = self._slave(fault.target)
        if slave is None:
            self._note(fault, "skip", "slave not in cluster")
            return True
        try:
            self.manager.stall_replication(slave)
        except (DatabaseError, ValueError) as error:
            self._note(fault, "skip", str(error))
            return True
        self._note(fault, "begin", f"slave={slave.name}")
        return fault.duration <= 0

    def _end_repl_stall(self, fault: Fault) -> None:
        slave = self._slave(fault.target)
        if slave is None:
            self._note(fault, "skip", "slave left cluster while "
                                      "stalled")
            return
        try:
            self.manager.resume_replication(slave)
        except (DatabaseError, ValueError) as error:
            self._note(fault, "skip", str(error))
            return
        self._note(fault, "end", f"slave={slave.name} flushed")

    # -- reporting -----------------------------------------------------------
    def timeline(self) -> list[str]:
        """The applied timeline (absolute sim times), one line each."""
        return [f"t={when:10.3f}s  {action:<5s} {fault.kind:<12s} "
                f"{fault.target or '-':<24s} {note}".rstrip()
                for when, fault, action, note in self.log]

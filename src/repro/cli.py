"""Command-line interface: regenerate any paper artefact.

Usage::

    python -m repro fig4
    python -m repro rtt
    python -m repro fig2 --location same_zone --scale quick
    python -m repro cell --ratio 80/20 --location different_region \
        --slaves 4 --users 250

Every subcommand prints the same table the corresponding bench writes
to ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .experiments import (LOCATIONS, LocationConfig, PAPER_50_50,
                          PAPER_80_20, render_delay_table, render_fig4,
                          render_instance_variation, render_rtt_table,
                          render_saturation_schedule,
                          render_throughput_table, run_experiment,
                          run_fig4_clock_sync, run_instance_variation,
                          run_rtt_characterization,
                          run_throughput_delay_grid)
from .experiments.figures import _PROFILES

__all__ = ["main", "build_parser"]


def _location(value: str) -> LocationConfig:
    try:
        return LocationConfig(value)
    except ValueError:
        choices = ", ".join(loc.value for loc in LocationConfig)
        raise argparse.ArgumentTypeError(
            f"unknown location {value!r} (choose from {choices})")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate results from 'Application-Managed "
                    "Database Replication on Virtualized Cloud "
                    "Environments' (ICDE 2012)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_grid_command(name, ratio, render, what):
        cmd = sub.add_parser(name, help=f"{what} ({ratio})")
        cmd.add_argument("--location", type=_location, default=None,
                         help="one placement (default: all three)")
        cmd.add_argument("--scale", choices=sorted(_PROFILES),
                         default="quick")
        cmd.add_argument("--seed", type=int, default=0)
        cmd.set_defaults(ratio=ratio, render=render, what=what,
                         handler=_run_grid_command)

    add_grid_command("fig2", "50/50", render_throughput_table,
                     "end-to-end throughput")
    add_grid_command("fig3", "80/20", render_throughput_table,
                     "end-to-end throughput")
    add_grid_command("fig5", "50/50", render_delay_table,
                     "average relative replication delay")
    add_grid_command("fig6", "80/20", render_delay_table,
                     "average relative replication delay")

    fig4 = sub.add_parser("fig4", help="inter-instance clock differences")
    fig4.add_argument("--duration", type=float, default=1200.0)
    fig4.add_argument("--seed", type=int, default=0)
    fig4.set_defaults(handler=_run_fig4)

    rtt = sub.add_parser("rtt", help="half-RTT characterization")
    rtt.add_argument("--probes", type=int, default=1200)
    rtt.add_argument("--seed", type=int, default=0)
    rtt.set_defaults(handler=_run_rtt)

    var = sub.add_parser("variation",
                         help="small-instance performance variation")
    var.add_argument("--launches", type=int, default=2000)
    var.add_argument("--seed", type=int, default=0)
    var.set_defaults(handler=_run_variation)

    sat = sub.add_parser("saturation",
                         help="saturation-transition schedule (50/50)")
    sat.add_argument("--location", type=_location,
                     default=LocationConfig.SAME_ZONE)
    sat.add_argument("--scale", choices=sorted(_PROFILES),
                     default="quick")
    sat.add_argument("--seed", type=int, default=0)
    sat.set_defaults(handler=_run_saturation)

    report = sub.add_parser(
        "report", help="full Markdown report of every artefact")
    report.add_argument("--scale", choices=sorted(_PROFILES),
                        default="quick")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--output", default=None,
                        help="write to this path instead of stdout")
    report.set_defaults(handler=_run_report)

    cell = sub.add_parser("cell", help="run a single experiment cell")
    cell.add_argument("--ratio", choices=("50/50", "80/20"),
                      default="50/50")
    cell.add_argument("--location", type=_location,
                      default=LocationConfig.SAME_ZONE)
    cell.add_argument("--slaves", type=int, default=2)
    cell.add_argument("--users", type=int, default=100)
    cell.add_argument("--scale", choices=sorted(_PROFILES),
                      default="quick")
    cell.add_argument("--seed", type=int, default=0)
    cell.set_defaults(handler=_run_cell)

    trace = sub.add_parser(
        "trace", help="run one observed cell; write a Chrome trace "
                      "(Perfetto-loadable), span/metric JSONL and a "
                      "kernel profile")
    trace.add_argument("--ratio", choices=("50/50", "80/20"),
                       default="50/50")
    trace.add_argument("--location", type=_location,
                       default=LocationConfig.SAME_ZONE)
    trace.add_argument("--slaves", type=int, default=1)
    trace.add_argument("--users", type=int, default=25)
    trace.add_argument("--scale", choices=sorted(_PROFILES),
                       default="quick")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default="traces",
                       help="directory the artifacts are written to")
    trace.add_argument("--monitor-period", type=float, default=5.0,
                       help="cluster-monitor sampling period (sim "
                            "seconds)")
    trace.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="json prints one machine-readable document "
                            "(cell, results, artifact paths, profile)")
    trace.add_argument("--sanitize", action="store_true",
                       help="run with the sim-time race sanitizer "
                            "attached; exit 1 on any stale write-back")
    trace.add_argument("--wall-profile", action="store_true",
                       help="also attach the wall-clock profiler: "
                            "per-subsystem attribution to stderr, "
                            "wallprof.txt + wallprof.collapsed next "
                            "to the trace artifacts")
    trace.set_defaults(handler=_run_trace)

    analyze = sub.add_parser(
        "analyze", help="diagnose trace artifacts: staleness "
                        "waterfalls, heartbeat reconciliation and the "
                        "bottleneck verdict")
    analyze.add_argument("--dir", default="traces",
                         help="directory holding spans.jsonl / "
                              "metrics.jsonl / trace.json from "
                              "'repro trace'")
    analyze.add_argument("--format", choices=("text", "json"),
                         default="text")
    analyze.set_defaults(handler=_run_analyze)

    chaos = sub.add_parser(
        "chaos", help="run a fault-injection drill; print the "
                      "recovery report (time-to-detect, "
                      "time-to-recover, lost commits, staleness "
                      "spike)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--users", type=int, default=20)
    chaos.add_argument("--slaves", type=int, default=2)
    chaos.add_argument("--plan", choices=("default", "random"),
                       default="default",
                       help="'default' exercises every fault kind and "
                            "ends in a master crash; 'random' draws a "
                            "seeded plan")
    chaos.add_argument("--faults", type=int, default=5,
                       help="fault count for --plan random")
    chaos.add_argument("--master-crash", action="store_true",
                       help="append a master crash to a random plan")
    chaos.add_argument("--out", default=None,
                       help="also write trace artifacts (spans, "
                            "metrics, Chrome trace, profile) to this "
                            "directory for 'repro analyze'")
    chaos.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="json prints the canonical recovery "
                            "report (byte-identical per seed)")
    chaos.add_argument("--sanitize", action="store_true",
                       help="attach the sim-time race sanitizer; the "
                            "summary goes to stderr so stdout stays "
                            "byte-identical; exit 1 on any report")
    chaos.add_argument("--wall-profile", action="store_true",
                       help="also attach the wall-clock profiler "
                            "(stderr table + wallprof artifacts under "
                            "--out, stdout stays byte-identical)")
    chaos.set_defaults(handler=_run_chaos)

    slo = sub.add_parser(
        "slo", help="run a fault drill with live SLO alerting; print "
                    "the incident timeline and the detection "
                    "scorecard (alert fire-times vs the injected "
                    "schedule)")
    slo.add_argument("--seed", type=int, default=0)
    slo.add_argument("--users", type=int, default=20)
    slo.add_argument("--slaves", type=int, default=2)
    slo.add_argument("--spec", default=None, metavar="FILE",
                     help="JSON SLO spec (default: the built-in "
                          "default spec)")
    slo.add_argument("--tolerance", type=float, default=30.0,
                     help="detection window past a fault's own "
                          "duration (sim seconds, default 30)")
    slo.add_argument("--out", default=None, metavar="FILE",
                     help="write the canonical incidents.json "
                          "(byte-identical per seed)")
    slo.add_argument("--format", choices=("text", "json"),
                     default="text",
                     help="json prints the canonical incidents "
                          "document")
    slo.set_defaults(handler=_run_slo)

    watch = sub.add_parser(
        "watch", help="run with a periodic text dashboard of live "
                      "streams and alert states (byte-identical "
                      "stdout per seed)")
    watch.add_argument("--seed", type=int, default=0)
    watch.add_argument("--users", type=int, default=20)
    watch.add_argument("--slaves", type=int, default=2)
    watch.add_argument("--interval", type=float, default=15.0,
                       help="dashboard frame period (sim seconds)")
    watch.add_argument("--spec", default=None, metavar="FILE",
                       help="JSON SLO spec (default: built-in)")
    watch.add_argument("--cell", action="store_true",
                       help="watch a plain experiment cell (quick "
                            "scale) instead of the fault drill")
    watch.set_defaults(handler=_run_watch)

    bench = sub.add_parser(
        "bench", help="repro's perf trajectory: run the deterministic "
                      "benchmark suite (kernel / sql / db / "
                      "replication / e2e), write BENCH json, compare "
                      "against a committed baseline")
    bench.add_argument("--bench", action="append", default=None,
                       metavar="NAME",
                       help="run only this benchmark or family "
                            "(repeatable; default: the whole suite)")
    bench.add_argument("--list", action="store_true",
                       help="list registered benchmarks and exit")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--scale", choices=sorted(_PROFILES),
                       default="quick",
                       help="workload size per bench (quick/standard/"
                            "full, mirroring the experiment grids)")
    bench.add_argument("--repeats", type=int, default=5,
                       help="timed repeats per bench (default 5)")
    bench.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup runs per bench (default 1)")
    bench.add_argument("--out", default=None, metavar="FILE",
                       help="write the canonical BENCH json document "
                            "to FILE")
    bench.add_argument("--compare", default=None, metavar="OLD",
                       help="compare this run against a baseline "
                            "BENCH json; exit 1 on regression")
    bench.add_argument("--tolerance", type=float, default=10.0,
                       metavar="PCT",
                       help="allowed median slowdown before "
                            "--compare fails (percent, default 10)")
    bench.add_argument("--profile", action="store_true",
                       help="attach the wall-clock profiler and print "
                            "the per-subsystem attribution table "
                            "(timings are then not comparable to "
                            "unprofiled baselines)")
    bench.add_argument("--profile-out", default=None, metavar="FILE",
                       help="also write the collapsed-stack "
                            "flamegraph file (implies --profile)")
    bench.add_argument("--format", choices=("text", "json"),
                       default="text",
                       help="json prints the BENCH document (plus "
                            "the compare report when --compare)")
    bench.set_defaults(handler=_run_bench)

    lint = sub.add_parser(
        "lint", help="simlint: determinism / sim-safety / SQL / "
                     "flow-pairing checks")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: the "
                           "[tool.simlint] paths)")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text",
                      help="sarif emits a SARIF 2.1.0 document for "
                           "GitHub code scanning")
    lint.add_argument("--select", action="append", default=None,
                      metavar="RULES",
                      help="only these rule ids/families "
                           "(comma-separated, repeatable)")
    lint.add_argument("--ignore", action="append", default=None,
                      metavar="RULES",
                      help="drop these rule ids/families "
                           "(comma-separated, repeatable)")
    lint.add_argument("--stats", action="store_true",
                      help="print per-rule finding counts and "
                           "wall-time (to stderr for json/sarif)")
    _add_baseline_flags(lint)
    lint.set_defaults(handler=_run_lint)

    racecheck = sub.add_parser(
        "racecheck", help="simrace: interprocedural yield-point "
                          "atomicity analysis (RACE001-RACE005)")
    racecheck.add_argument("paths", nargs="*",
                           help="files or directories (default: the "
                                "[tool.simlint] paths)")
    racecheck.add_argument("--format",
                           choices=("text", "json", "sarif"),
                           default="text",
                           help="sarif carries both race locations "
                                "as relatedLocations")
    racecheck.add_argument("--stats", action="store_true",
                           help="print per-rule finding counts, "
                                "wall-time and parse-cache reuse "
                                "(to stderr for json/sarif)")
    _add_baseline_flags(racecheck)
    racecheck.set_defaults(handler=_run_racecheck)

    taintcheck = sub.add_parser(
        "taintcheck", help="simtaint: interprocedural determinism-"
                           "taint analysis (TNT001-TNT005)")
    taintcheck.add_argument("paths", nargs="*",
                            help="files or directories (default: the "
                                 "[tool.simlint] paths)")
    taintcheck.add_argument("--format",
                            choices=("text", "json", "sarif"),
                            default="text",
                            help="sarif carries the taint path "
                                 "(source, hops, callee sink) as "
                                 "relatedLocations")
    taintcheck.add_argument("--stats", action="store_true",
                            help="print per-rule finding counts, "
                                 "wall-time and parse-cache reuse "
                                 "(to stderr for json/sarif)")
    _add_baseline_flags(taintcheck)
    taintcheck.set_defaults(handler=_run_taintcheck)

    check = sub.add_parser(
        "check", help="umbrella: lint + flow + race + taint over one "
                      "shared parse cache and call graph, with the "
                      "purity oracle wired into the FLW/RACE rules")
    check.add_argument("paths", nargs="*",
                       help="files or directories (default: the "
                            "[tool.simlint] paths)")
    check.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text",
                       help="sarif emits one merged document with "
                            "one run per tool "
                            "(simlint/simrace/simtaint)")
    check.add_argument("--stats", action="store_true",
                       help="print per-rule finding counts, parse-"
                            "cache reuse and the purity oracle's "
                            "resolved/conservative call-site split "
                            "(to stderr for json/sarif)")
    _add_baseline_flags(check)
    check.set_defaults(handler=_run_check)

    return parser


def _add_baseline_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument("--baseline", default=None, metavar="FILE",
                         help="only report findings not present in "
                              "this baseline snapshot; exit 1 only "
                              "on new ones")
    command.add_argument("--write-baseline", default=None,
                         metavar="FILE",
                         help="snapshot the current findings to FILE "
                              "(canonical JSON, byte-stable) and "
                              "exit 0")


def _run_grid_command(args) -> str:
    profile = _PROFILES[args.scale]
    locations = [args.location] if args.location else list(LOCATIONS)
    blocks = []
    for location in locations:
        grids = run_throughput_delay_grid(args.ratio, location, profile,
                                          seed=args.seed)
        blocks.append(args.render(
            grids, f"{args.what} — {args.ratio}, {location.value}, "
                   f"scale={profile.name}"))
    return "\n\n".join(blocks)


def _run_fig4(args) -> str:
    series = run_fig4_clock_sync(duration=args.duration, seed=args.seed)
    return render_fig4(series)


def _run_rtt(args) -> str:
    return render_rtt_table(run_rtt_characterization(probes=args.probes,
                                                     seed=args.seed))


def _run_variation(args) -> str:
    return render_instance_variation(
        run_instance_variation(launches=args.launches, seed=args.seed))


def _run_saturation(args) -> str:
    profile = _PROFILES[args.scale]
    grids = run_throughput_delay_grid("50/50", args.location, profile,
                                      seed=args.seed)
    return render_saturation_schedule(grids)


def _run_report(args) -> str:
    from .experiments.report import (MarkdownReport, fig4_section,
                                     grid_section, rtt_section)
    profile = _PROFILES[args.scale]
    report = MarkdownReport(
        f"Reproduction run — scale={profile.name}, seed={args.seed}")
    for ratio, fig_pair in (("50/50", "Figs. 2/5"), ("80/20",
                                                     "Figs. 3/6")):
        for location in LOCATIONS:
            grids = run_throughput_delay_grid(ratio, location, profile,
                                              seed=args.seed)
            grid_section(report, grids,
                         f"{fig_pair} — {ratio}, {location.value}")
    fig4_section(report, run_fig4_clock_sync(seed=args.seed))
    rtt_section(report, run_rtt_characterization(seed=args.seed))
    report.add_heading("Instance variation (§IV-A)")
    report.add_paragraph(render_instance_variation(
        run_instance_variation(seed=args.seed)))
    text = report.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        return f"report written to {args.output}"
    return text


def _run_cell(args) -> str:
    profile = _PROFILES[args.scale]
    factory = PAPER_50_50 if args.ratio == "50/50" else PAPER_80_20
    config = factory(args.location, args.slaves, args.users,
                     profile.phases, seed=args.seed,
                     baseline_duration=profile.baseline_duration)
    result = run_experiment(config)
    delay = (f"{result.relative_delay_ms:.1f} ms"
             if result.relative_delay_ms is not None else "n/a")
    percentiles = result.latency_percentiles_s
    percentile_text = "  ".join(
        f"p{int(p)}={value * 1000:.0f}ms"
        for p, value in sorted(percentiles.items()))
    return "\n".join([
        f"cell: {config.label}",
        f"throughput:          {result.throughput:.2f} ops/s",
        f"read fraction:       {result.achieved_read_fraction:.2f}",
        f"mean latency:        {result.mean_latency_s * 1000:.1f} ms",
        f"latency percentiles: {percentile_text}",
        f"relative delay:      {delay}",
        f"master CPU:          {result.master_cpu:.2f}",
        f"slave CPUs:          "
        f"{[round(u, 2) for u in result.slave_cpus]}",
        f"saturated resource:  {result.saturated_resource}",
    ])


def _wall_profile_run(enabled: bool):
    """An attached-and-started WallProfiler, or None."""
    if not enabled:
        return None
    from .perf import WallProfiler
    profiler = WallProfiler()
    profiler.start()
    return profiler


def _finish_wall_profile(profiler, out_dir, paths) -> None:
    """Stop the profiler; stderr table + artifacts under ``out_dir``.

    Wall timings are machine-dependent, so everything lands on stderr
    / in side files — stdout stays byte-identical per seed.
    """
    import os
    import sys

    from .perf import render_wallprof
    profiler.stop()
    print(render_wallprof(profiler), file=sys.stderr)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        table_path = os.path.join(out_dir, "wallprof.txt")
        with open(table_path, "w", encoding="utf-8") as handle:
            handle.write(render_wallprof(profiler) + "\n")
        collapsed_path = os.path.join(out_dir, "wallprof.collapsed")
        with open(collapsed_path, "w", encoding="utf-8") as handle:
            handle.write(profiler.collapsed() + "\n")
        if paths is not None:
            paths["wallprof.txt"] = table_path
            paths["wallprof.collapsed"] = collapsed_path


def _run_trace(args):
    import json

    from .obs import Observability
    profile = _PROFILES[args.scale]
    factory = PAPER_50_50 if args.ratio == "50/50" else PAPER_80_20
    config = factory(args.location, args.slaves, args.users,
                     profile.phases, seed=args.seed,
                     baseline_duration=profile.baseline_duration)
    observe = Observability(monitor_period=args.monitor_period)
    sanitizer = None
    if args.sanitize:
        from .analysis.race import RaceSanitizer
        sanitizer = RaceSanitizer()
    wallprof = _wall_profile_run(args.wall_profile)
    result = run_experiment(config, observe=observe,
                            sanitizer=sanitizer)
    paths = observe.write_artifacts(args.out)
    if wallprof is not None:
        _finish_wall_profile(wallprof, args.out, paths)
    if args.format == "json":
        document = {
            "cell": {"location": args.location.value,
                     "ratio": args.ratio, "slaves": args.slaves,
                     "users": args.users, "scale": args.scale,
                     "seed": args.seed},
            "result": {
                "throughput": result.throughput,
                "mean_latency_s": result.mean_latency_s,
                "relative_delay_ms": result.relative_delay_ms,
                "master_cpu": result.master_cpu,
                "slave_cpus": result.slave_cpus,
                "bottleneck": result.bottleneck,
            },
            "artifacts": {name: paths[name] for name in sorted(paths)},
            "spans": len(observe.tracer.spans),
            "droppedSpans": observe.tracer.dropped,
            "profile": observe.profiler.snapshot(),
        }
        if sanitizer is not None:
            document["race"] = sanitizer.summary()
        return (json.dumps(document, sort_keys=True,
                           separators=(",", ":")),
                1 if sanitizer is not None and sanitizer.reports
                else 0)
    delay = (f"{result.relative_delay_ms:.1f} ms"
             if result.relative_delay_ms is not None else "n/a")
    lines = [
        f"cell: {config.label}",
        f"throughput:     {result.throughput:.2f} ops/s",
        f"relative delay: {delay}",
        f"spans recorded: {len(observe.tracer.spans)}",
        "",
    ]
    lines.extend(f"wrote {paths[name]}" for name in sorted(paths))
    lines.append("")
    lines.append(observe.render_profile())
    code = 0
    if sanitizer is not None:
        lines.append("")
        lines.append(f"race sanitizer: {len(sanitizer.reports)} "
                     f"report"
                     f"{'s' if len(sanitizer.reports) != 1 else ''}")
        lines.extend(f"  {report.render()}"
                     for report in sanitizer.reports)
        code = 1 if sanitizer.reports else 0
    return "\n".join(lines), code


def _run_analyze(args):
    from .obs.analyze import (AnalysisError, analyze_trace,
                              load_artifacts, render_analysis_json,
                              render_analysis_text)
    try:
        data = load_artifacts(args.dir)
        report = analyze_trace(data)
    except (AnalysisError, OSError) as error:
        return f"repro analyze: error: {error}", 1
    if args.format == "json":
        return render_analysis_json(report)
    return render_analysis_text(report)


def _run_chaos(args):
    import json

    from .chaos import (DrillConfig, FaultSchedule, default_schedule,
                        render_report_text, run_drill)
    from .obs import Observability
    from .sim import RandomStreams

    if args.plan == "default":
        if args.slaves < 2:
            return ("repro chaos: error: the default plan targets "
                    "slave-1 and slave-2; use --slaves >= 2 or "
                    "--plan random", 2)
        schedule = default_schedule()
    else:
        plan_streams = RandomStreams(args.seed)
        config_probe = DrillConfig()
        schedule = FaultSchedule.random_plan(
            plan_streams, horizon=config_probe.phases.total,
            slaves=[f"slave-{i + 1}" for i in range(args.slaves)],
            region_pairs=[("us-east-1", "eu-west-1")],
            n_faults=args.faults,
            include_master_crash=args.master_crash)
    config = DrillConfig(seed=args.seed, n_users=args.users,
                         n_slaves=args.slaves, schedule=schedule)
    observe = Observability(monitor_period=None)
    sanitizer = None
    if args.sanitize:
        from .analysis.race import RaceSanitizer
        sanitizer = RaceSanitizer()
    wallprof = _wall_profile_run(args.wall_profile)
    result = run_drill(config, observe=observe, sanitizer=sanitizer)
    if wallprof is not None:
        _finish_wall_profile(wallprof, args.out, None)
    if args.out:
        paths = observe.write_artifacts(args.out)
        import os
        report_path = os.path.join(args.out, "recovery.json")
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(result.report, handle, sort_keys=True,
                      separators=(",", ":"))
            handle.write("\n")
        paths["recovery.json"] = report_path
    code = 0
    if sanitizer is not None:
        # Stderr, so stdout stays byte-identical to an unsanitized
        # run — the CI sanitizer-smoke gate diffs the two.
        import sys
        print(f"race sanitizer: {len(sanitizer.reports)} report"
              f"{'s' if len(sanitizer.reports) != 1 else ''}",
              file=sys.stderr)
        for report in sanitizer.reports:
            print(f"  {report.render()}", file=sys.stderr)
        code = 1 if sanitizer.reports else 0
    if args.format == "json":
        return (json.dumps(result.report, sort_keys=True,
                           separators=(",", ":")), code)
    text = render_report_text(result.report)
    if args.out:
        text += "\n" + "\n".join(
            f"wrote {paths[name]}" for name in sorted(paths))
    return text, code


def _load_spec_arg(path, command):
    """(spec, None) or (None, error tuple) from a --spec argument."""
    from .obs.live import default_slo_spec, load_slo_file
    if path is None:
        return default_slo_spec(), None
    try:
        return load_slo_file(path), None
    except (OSError, ValueError, KeyError, TypeError) as error:
        return None, (f"repro {command}: error: bad SLO spec "
                      f"{path}: {error}", 2)


def _run_slo(args):
    import json

    from .chaos import DrillConfig, run_drill
    from .obs import Observability
    from .obs.live import (LiveSession, render_incidents_text,
                           write_incidents)

    if args.slaves < 2:
        return ("repro slo: error: the default plan targets slave-1 "
                "and slave-2; use --slaves >= 2", 2)
    spec, error = _load_spec_arg(args.spec, "slo")
    if error is not None:
        return error
    config = DrillConfig(seed=args.seed, n_users=args.users,
                         n_slaves=args.slaves)
    session = LiveSession(spec)
    # run_drill starts its own ClusterMonitor; a monitor-less
    # Observability supplies the registry the stream tap rides on.
    result = run_drill(config, observe=Observability(
        monitor_period=None), slo=session)
    document = result.incidents
    # The scorecard honours --tolerance; recompute when non-default.
    if args.tolerance != 30.0:
        from .obs.live import score_detection
        detection = score_detection(
            session.incidents, result.schedule,
            offset=result.workload_start,
            tolerance_s=args.tolerance)
        document = session.document(document["final_time_s"],
                                    detection=detection)
    if args.out:
        write_incidents(document, args.out)
    if args.format == "json":
        return json.dumps(document, sort_keys=True,
                          separators=(",", ":"))
    text = render_incidents_text(document)
    if args.out:
        text += f"\nwrote {args.out}"
    return text


def _run_watch(args):
    from .obs import Observability
    from .obs.live import LiveSession

    spec, error = _load_spec_arg(args.spec, "watch")
    if error is not None:
        return error
    if args.interval <= 0:
        return "repro watch: error: --interval must be positive", 2
    session = LiveSession(spec, watch_interval=args.interval)
    if args.cell:
        profile = _PROFILES["quick"]
        config = PAPER_50_50(LocationConfig.SAME_ZONE, args.slaves,
                             args.users, profile.phases,
                             seed=args.seed,
                             baseline_duration=profile
                             .baseline_duration)
        run_experiment(config, slo=session)
    else:
        from .chaos import DrillConfig, run_drill
        if args.slaves < 2:
            return ("repro watch: error: the default plan targets "
                    "slave-1 and slave-2; use --slaves >= 2 or "
                    "--cell", 2)
        config = DrillConfig(seed=args.seed, n_users=args.users,
                             n_slaves=args.slaves)
        run_drill(config, observe=Observability(monitor_period=None),
                  slo=session)
    return session.render_watch()


def _run_bench(args):
    import json
    import sys

    from .perf import (bench_document, compare_documents,
                       load_bench_file, registry, render_compare_json,
                       render_compare_text, render_suite_text,
                       render_wallprof, run_suite, write_bench_file)
    if args.list:
        lines = [f"{spec.name:<16s} [{spec.subsystem:<11s}] "
                 f"{spec.description}"
                 for spec in registry.all_benchmarks()]
        return "\n".join(lines)
    try:
        specs = registry.resolve(args.bench)
    except KeyError as error:
        return f"repro bench: error: {error.args[0]}", 2
    if args.repeats < 1 or args.warmup < 0:
        return ("repro bench: error: --repeats must be >= 1 and "
                "--warmup >= 0", 2)
    profile = bool(args.profile or args.profile_out)
    suite = run_suite(specs, seed=args.seed, scale=args.scale,
                      repeats=args.repeats, warmup=args.warmup,
                      profile=profile)
    document = bench_document(suite)
    if args.out:
        write_bench_file(args.out, document)
    if args.profile_out:
        with open(args.profile_out, "w", encoding="utf-8") as handle:
            handle.write(suite.profiler.collapsed() + "\n")
    report = None
    if args.compare:
        try:
            baseline = load_bench_file(args.compare)
        except (OSError, ValueError) as error:
            return f"repro bench: error: {error}", 2
        selected = ({spec.name for spec in specs}
                    if args.bench else None)
        report = compare_documents(baseline, document,
                                   tolerance_pct=args.tolerance,
                                   only=selected)
    code = report.exit_code if report is not None else 0
    if args.format == "json":
        payload = dict(document)
        if report is not None:
            payload["compare"] = json.loads(
                render_compare_json(report))
        if profile:
            payload["wallProfile"] = suite.profiler.snapshot()
        return (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")), code)
    sections = [render_suite_text(suite)]
    if profile:
        sections.append("")
        sections.append(render_wallprof(suite.profiler))
    if args.out:
        sections.append("")
        sections.append(f"wrote {args.out}")
    if args.profile_out:
        sections.append(f"wrote {args.profile_out}")
    if report is not None:
        sections.append("")
        sections.append(render_compare_text(report))
    if profile and suite.profiler.attributed_share() < 0.95:
        print(f"repro bench: warning: only "
              f"{suite.profiler.attributed_share():.1%} of profiled "
              f"wall time attributed to named subsystems",
              file=sys.stderr)
    return "\n".join(sections), code


def _split_rule_lists(values: Optional[Sequence[str]]) -> list[str]:
    rules: list[str] = []
    for value in values or ():
        rules.extend(rule.strip() for rule in value.split(",")
                     if rule.strip())
    return rules


def _apply_baseline(args, findings, tool: str):
    """Honor ``--write-baseline`` / ``--baseline`` for one run.

    Returns ``(findings_to_report, early_exit)`` where ``early_exit``
    is a ``(text, code)`` pair that short-circuits the handler (after
    writing a snapshot, or on an unreadable baseline file).
    """
    from .analysis import filter_new, load_baseline, write_baseline
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings, tool)
        count = len(findings)
        return findings, (
            f"{tool}: wrote baseline of {count} finding"
            f"{'s' if count != 1 else ''} to {args.write_baseline}", 0)
    if args.baseline is not None:
        try:
            allowed = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            return findings, (f"{tool}: error: {error}", 2)
        return filter_new(findings, allowed), None
    return findings, None


def _run_lint(args) -> tuple[str, int]:
    import sys

    from .analysis import (LintStats, all_rules, format_findings_json,
                           format_findings_sarif, format_findings_text,
                           lint_paths, load_config)
    select = _split_rule_lists(args.select)
    ignore = _split_rule_lists(args.ignore)
    # A typo'd rule id would silently disable checks (exit 0), so an
    # unknown --select/--ignore entry is a usage error, not a no-op.
    known = sorted({rule.rule_id for rule in all_rules()} | {"PARSE"})
    unknown = [pattern for pattern in select + ignore
               if not any(rule_id.startswith(pattern)
                          for rule_id in known)]
    if unknown:
        return ("simlint: error: unknown rule or family: "
                f"{', '.join(unknown)} (known: {', '.join(known)})", 2)
    config = load_config(".").narrowed(select=select, ignore=ignore)
    stats = LintStats() if args.stats else None
    try:
        findings = lint_paths(args.paths or None, config=config,
                              stats=stats)
    except FileNotFoundError as error:
        return f"simlint: error: {error}", 2
    findings, early = _apply_baseline(args, findings, "simlint")
    if early is not None:
        return early
    if args.format == "json":
        text = format_findings_json(findings)
    elif args.format == "sarif":
        text = format_findings_sarif(findings)
    else:
        text = format_findings_text(findings)
    if stats is not None:
        if args.format == "text":
            text = f"{text}\n{stats.render()}"
        else:
            # Keep stdout a valid JSON/SARIF document.
            print(stats.render(), file=sys.stderr)
    return text, (1 if findings else 0)


def _run_racecheck(args) -> tuple[str, int]:
    import sys

    from .analysis import (LintStats, format_findings_json,
                           format_findings_sarif, format_findings_text,
                           load_config, racecheck_paths)
    from .analysis.race.rules import RACE_RULES
    config = load_config(".")
    stats = LintStats() if args.stats else None
    try:
        findings = racecheck_paths(args.paths or None, config=config,
                                   stats=stats)
    except FileNotFoundError as error:
        return f"simrace: error: {error}", 2
    findings, early = _apply_baseline(args, findings, "simrace")
    if early is not None:
        return early
    if args.format == "json":
        text = format_findings_json(findings)
    elif args.format == "sarif":
        text = format_findings_sarif(
            findings, rules=[cls() for cls in RACE_RULES])
    else:
        text = format_findings_text(findings, tool="simrace")
    if stats is not None:
        if args.format == "text":
            text = f"{text}\n{stats.render()}"
        else:
            print(stats.render(), file=sys.stderr)
    return text, (1 if findings else 0)


def _run_taintcheck(args) -> tuple[str, int]:
    import sys

    from .analysis import (LintStats, format_findings_json,
                           format_findings_sarif, format_findings_text,
                           load_config, taintcheck_paths)
    from .analysis.taint.rules import TAINT_RULES
    config = load_config(".")
    stats = LintStats() if args.stats else None
    try:
        findings = taintcheck_paths(args.paths or None, config=config,
                                    stats=stats)
    except FileNotFoundError as error:
        return f"simtaint: error: {error}", 2
    findings, early = _apply_baseline(args, findings, "simtaint")
    if early is not None:
        return early
    if args.format == "json":
        text = format_findings_json(findings)
    elif args.format == "sarif":
        text = format_findings_sarif(
            findings, rules=[cls() for cls in TAINT_RULES],
            tool_name="simtaint")
    else:
        text = format_findings_text(findings, tool="simtaint")
    if stats is not None:
        if args.format == "text":
            text = f"{text}\n{stats.render()}"
        else:
            print(stats.render(), file=sys.stderr)
    return text, (1 if findings else 0)


_CHECK_TOOLS = ("simlint", "simrace", "simtaint")


def _run_check(args) -> tuple[str, int]:
    import json as json_module
    import sys

    from .analysis import (LintStats, all_rules, check_paths,
                           format_findings_text, format_merged_sarif,
                           load_config)
    from .analysis.race.rules import RACE_RULES
    from .analysis.taint.rules import TAINT_RULES
    config = load_config(".")
    stats = LintStats() if args.stats else None
    try:
        results = check_paths(args.paths or None, config=config,
                              stats=stats)
    except FileNotFoundError as error:
        return f"simcheck: error: {error}", 2
    if args.write_baseline is not None:
        combined = [finding for tool in _CHECK_TOOLS
                    for finding in results[tool]]
        _, early = _apply_baseline(args, combined, "simcheck")
        return early
    if args.baseline is not None:
        from .analysis import filter_new, load_baseline
        try:
            allowed = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            return f"simcheck: error: {error}", 2
        # Rule ids are disjoint across the three tools, so filtering
        # each run against the shared snapshot is exact.
        results = {tool: filter_new(results[tool], allowed)
                   for tool in _CHECK_TOOLS}
    total = sum(len(results[tool]) for tool in _CHECK_TOOLS)
    rules_by_tool = {
        "simlint": all_rules(),
        "simrace": [cls() for cls in RACE_RULES],
        "simtaint": [cls() for cls in TAINT_RULES],
    }
    if args.format == "json":
        text = json_module.dumps({
            "count": total,
            "tools": {tool: {
                "count": len(results[tool]),
                "findings": [finding.as_dict()
                             for finding in results[tool]],
            } for tool in _CHECK_TOOLS},
        }, indent=2)
    elif args.format == "sarif":
        text = format_merged_sarif(
            [(tool, results[tool], rules_by_tool[tool])
             for tool in _CHECK_TOOLS])
    else:
        sections = [format_findings_text(results[tool], tool=tool)
                    for tool in _CHECK_TOOLS]
        sections.append(f"simcheck: {total} finding"
                        f"{'s' if total != 1 else ''} across "
                        f"{len(_CHECK_TOOLS)} analyzers")
        text = "\n".join(sections)
    if stats is not None:
        if args.format == "text":
            text = f"{text}\n{stats.render()}"
        else:
            print(stats.render(), file=sys.stderr)
    return text, (1 if total else 0)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    result = args.handler(args)
    if isinstance(result, tuple):
        text, code = result
    else:
        text, code = result, 0
    print(text)
    return code

"""Simulated EC2: regions, instances, clocks, NTP and the network."""

from .clock import LocalClock
from .instance import (CpuModel, Instance, InstanceType, LARGE,
                       LARGE_CPU_LOTTERY, SMALL, SMALL_CPU_LOTTERY)
from .network import LatencyModel, Network, PAPER_LATENCY
from .ntp import NtpConfig, NtpDaemon
from .provisioner import ClockProfile, Cloud
from .regions import (DEFAULT_CATALOG, MASTER_PLACEMENT, Placement, Region,
                      RegionCatalog)

__all__ = [
    "Cloud",
    "ClockProfile",
    "Instance",
    "InstanceType",
    "CpuModel",
    "SMALL",
    "LARGE",
    "SMALL_CPU_LOTTERY",
    "LARGE_CPU_LOTTERY",
    "LocalClock",
    "NtpDaemon",
    "NtpConfig",
    "Network",
    "LatencyModel",
    "PAPER_LATENCY",
    "Placement",
    "Region",
    "RegionCatalog",
    "DEFAULT_CATALOG",
    "MASTER_PLACEMENT",
]

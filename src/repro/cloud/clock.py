"""Per-instance local clocks with offset and drift.

The paper (§IV-B.1) observes that EC2 instances launched by one account
never share a physical host, so every pair of instances suffers clock
skew: an initial offset plus linear drift, corrected only every couple
of hours by Amazon unless the tenant runs NTP aggressively.

:class:`LocalClock` models exactly that: a wall-clock reading is

    ``wall(t) = t + offset + drift_rate * (t - t_set)``

where ``offset`` is re-anchored whenever NTP steps the clock.  Times are
seconds; drift rates are dimensionless (seconds of error per second,
i.e. 36 ppm == 36e-6).
"""

from __future__ import annotations

from ..sim import Simulator

__all__ = ["LocalClock"]


class LocalClock:
    """A drifting local clock attached to a simulated instance."""

    def __init__(self, sim: Simulator, offset: float = 0.0,
                 drift_rate: float = 0.0):
        self.sim = sim
        self.drift_rate = float(drift_rate)
        self._offset = float(offset)
        self._anchor = sim.now  # sim time when offset was last set

    # -- reading -------------------------------------------------------------
    def error(self) -> float:
        """Current deviation from true (simulated) time, in seconds."""
        return self._offset + self.drift_rate * (self.sim.now - self._anchor)

    def now(self) -> float:
        """Wall-clock reading: true time plus the accumulated error.

        This is what the database's time/date function returns; the
        microsecond-resolution UDF of the paper reads this value.
        """
        return self.sim.now + self.error()

    # -- adjustment ------------------------------------------------------------
    def step_to_error(self, residual: float) -> None:
        """NTP-style step: force the current error to ``residual``.

        A perfect synchronization would pass 0.0; a realistic one passes
        the residual error left by network asymmetry.
        """
        self._offset = float(residual)
        self._anchor = self.sim.now

    def slew(self, delta: float) -> None:
        """Shift the clock by ``delta`` seconds without re-anchoring drift."""
        self._offset = self.error() + float(delta)
        self._anchor = self.sim.now

    def difference(self, other: "LocalClock") -> float:
        """Reading difference ``self - other`` at the current instant.

        This is the quantity plotted in the paper's Fig. 4 (measured
        time differences between two instances).
        """
        return self.now() - other.now()

"""Simulated EC2 instances.

Two instance sizes appear in the paper: the load generator runs on a
**large** instance ("to avoid any overload on the application tier")
and every database server — master and slaves — runs on a **small**
instance ("so that saturation is expected to be observed early").

Each launch draws a *physical host lottery*: identical small instances
land on different physical CPU models (the paper names an Intel Xeon
E5430 2.66 GHz and an E5507 2.27 GHz) and prior work it cites (Schad et
al. [13]) measured a coefficient of variation of about **21 %** for
small-instance CPU performance.  The lottery plus a per-host noise term
reproduces that spread, and with it the paper's observation that a
slave in a *nearer* zone can still be *slower* than one in a distant
region.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import RandomStreams, Resource, Simulator
from .clock import LocalClock
from .regions import Placement

__all__ = ["CpuModel", "InstanceType", "SMALL", "LARGE", "Instance",
           "SMALL_CPU_LOTTERY", "LARGE_CPU_LOTTERY"]


@dataclass(frozen=True)
class CpuModel:
    """A physical CPU model and its relative single-core speed."""

    name: str
    speed_factor: float


#: Host lottery for small instances.  Weights and factors are chosen so
#: the resulting speed distribution has a coefficient of variation near
#: the 21 % reported by Schad et al. for EC2 small instances.
SMALL_CPU_LOTTERY: list[tuple[CpuModel, float]] = [
    (CpuModel("Intel Xeon E5430 2.66GHz", 1.00), 0.30),
    (CpuModel("Intel Xeon E5507 2.27GHz", 0.85), 0.30),
    (CpuModel("AMD Opteron 2218 HE 2.6GHz", 0.72), 0.20),
    (CpuModel("AMD Opteron 270 2.0GHz", 0.55), 0.20),
]

#: Large instances show far less variance in the measurements the paper
#: cites; model them as a narrow lottery.
LARGE_CPU_LOTTERY: list[tuple[CpuModel, float]] = [
    (CpuModel("Intel Xeon E5430 2.66GHz", 1.00), 0.70),
    (CpuModel("Intel Xeon E5410 2.33GHz", 0.92), 0.30),
]


@dataclass(frozen=True)
class InstanceType:
    """An EC2-like instance size."""

    name: str
    cores: int
    #: Compute units per core relative to the small-instance reference.
    ecu_per_core: float
    #: Per-launch multiplicative noise (sigma of a normal around 1.0).
    host_noise_sigma: float

    def lottery(self) -> list[tuple[CpuModel, float]]:
        return SMALL_CPU_LOTTERY if self.name == "m1.small" \
            else LARGE_CPU_LOTTERY


SMALL = InstanceType("m1.small", cores=1, ecu_per_core=1.0,
                     host_noise_sigma=0.05)
LARGE = InstanceType("m1.large", cores=2, ecu_per_core=2.0,
                     host_noise_sigma=0.03)


class Instance:
    """A running virtual machine with CPU, a local clock and a placement.

    CPU work is expressed in *reference seconds*: seconds of compute on
    a nominal small-instance core.  ``compute(work)`` queues for a core
    and holds it for ``work / effective_speed`` simulated seconds.
    """

    def __init__(self, sim: Simulator, name: str, itype: InstanceType,
                 placement: Placement, cpu_model: CpuModel,
                 host_noise: float, clock: LocalClock):
        self.sim = sim
        self.name = name
        self.itype = itype
        self.placement = placement
        self.cpu_model = cpu_model
        self.host_noise = host_noise
        self.clock = clock
        self.cpu = Resource(sim, capacity=itype.cores)
        self.running = True
        self._busy_time = 0.0
        #: Multiplicative CPU slowdown (1.0 = healthy).  Fault injection
        #: uses this to model a noisy-neighbour / bad-host episode: the
        #: paper's §IV-A variation finding, but transient.
        self.degradation = 1.0
        self.crash_count = 0
        self.total_downtime = 0.0
        self._down_since: float = 0.0

    @property
    def effective_speed(self) -> float:
        """Per-core speed relative to the nominal small-instance core."""
        return self.itype.ecu_per_core * self.cpu_model.speed_factor \
            * self.host_noise * self.degradation

    def pin_hardware(self, cpu_model: CpuModel,
                     host_noise: float = 1.0) -> None:
        """Replace the lottery draw with known hardware.

        Models the paper's §IV-A advice to "validate instance
        performance before deploying applications into the cloud":
        an operator relaunches until a well-performing host is drawn.
        """
        self.cpu_model = cpu_model
        self.host_noise = host_noise

    # -- failure -------------------------------------------------------------
    def crash(self) -> None:
        """Take the VM down (fault injection / host failure).

        In-flight compute finishes draining — the model's analogue of
        connections timing out rather than vanishing instantaneously —
        but callers should reject *new* work at the server layer
        (``DatabaseServer.perform`` refuses once ``online`` is False).
        """
        if not self.running:
            return
        self.running = False
        self.crash_count += 1
        self._down_since = self.sim.now

    def restart(self) -> None:
        """Bring a crashed VM back; volatile state is the caller's
        problem (a database server must re-sync from a snapshot)."""
        if self.running:
            return
        self.running = True
        self.total_downtime += self.sim.now - self._down_since

    def slow_down(self, factor: float) -> None:
        """Degrade the CPU by ``factor`` (0 < factor <= 1)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"degradation factor must be in (0, 1], "
                             f"got {factor}")
        self.degradation = factor

    def restore_speed(self) -> None:
        """End a degradation episode."""
        self.degradation = 1.0

    # -- compute -------------------------------------------------------------
    def service_time(self, work: float) -> float:
        """How long ``work`` reference-seconds hold one core."""
        return work / self.effective_speed

    def compute(self, work: float):
        """Process generator: acquire a core and burn ``work``.

        Usage inside a process::

            yield from instance.compute(0.010)
        """
        request = self.cpu.request()
        try:
            # The wait itself sits inside the try: an interrupt thrown
            # in while queued must cancel the claim (releasing an
            # ungranted request does exactly that), or the core count
            # silently shrinks.
            yield request
            service = self.service_time(work)
            yield self.sim.timeout(service)
            self._busy_time += service
        finally:
            self.cpu.release(request)

    def run_on_cpu(self, job):
        """Process generator: queue for a core, run ``job`` at service
        start, hold the core for the work it reports.

        ``job()`` returns ``(result, work)``; it executes once the
        request reaches a core — so state changes (and their side
        effects, e.g. binlog appends) become visible only after the
        request has waited its turn, like a real server.
        """
        request = self.cpu.request()
        try:
            yield request
            result, work = job()
            service = self.service_time(work)
            yield self.sim.timeout(service)
            self._busy_time += service
            return result
        finally:
            self.cpu.release(request)

    # -- introspection ----------------------------------------------------------
    @property
    def busy_time(self) -> float:
        """Cumulative core-seconds of completed work."""
        return self._busy_time

    def utilization(self, since: float, busy_at_since: float) -> float:
        """Average CPU utilization over a window.

        ``busy_at_since`` is the value :attr:`busy_time` had at sim time
        ``since``; the caller samples both ends of the window.
        """
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        used = self._busy_time - busy_at_since
        return used / (elapsed * self.itype.cores)

    @property
    def queue_length(self) -> int:
        """Requests waiting for a core right now."""
        return self.cpu.queue_length

    def __repr__(self) -> str:
        return (f"Instance({self.name!r}, {self.itype.name}, "
                f"{self.placement.zone}, cpu={self.cpu_model.name!r})")


def draw_instance_hardware(streams: RandomStreams, itype: InstanceType,
                           stream_name: str = "cloud.lottery"
                           ) -> tuple[CpuModel, float]:
    """Run the physical-host lottery for one launch."""
    lottery = itype.lottery()
    models = [model for model, _weight in lottery]
    weights = [weight for _model, weight in lottery]
    model = streams.choice_weighted(stream_name, models, weights)
    noise = max(0.5, streams.normal(stream_name + ".noise", 1.0,
                                    itype.host_noise_sigma))
    return model, noise

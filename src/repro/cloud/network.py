"""Network latency model and message delivery.

The paper reduces placement to three latency classes, measured with
``ping`` from the master's zone (§IV-B.2): one-way (half round-trip)
times of **16 ms** within the same zone, **21 ms** across zones of one
region and **173 ms** across regions.  The model reproduces those
numbers as medians of a lognormal jitter distribution and exposes both
an event-style ``send`` (used by the replication pipeline) and a
synchronous ``ping`` probe (used by the RTT characterization bench).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..sim import Event, RandomStreams, Simulator
from .regions import Placement

__all__ = ["LatencyModel", "Network", "PAPER_LATENCY"]


@dataclass(frozen=True)
class LatencyModel:
    """One-way latency parameters per placement relationship.

    ``*_ms`` values are medians of the one-way delay; ``jitter_sigma``
    is the lognormal shape parameter applied multiplicatively.  A small
    ``floor_ms`` guards against unrealistically tiny samples.
    """

    same_zone_ms: float = 16.0
    cross_zone_ms: float = 21.0
    cross_region_ms: float = 173.0
    loopback_ms: float = 0.05
    jitter_sigma: float = 0.08
    floor_ms: float = 0.01
    #: Optional per-region-pair overrides for cross-region medians,
    #: keyed on a frozenset of the two region names.
    region_pair_ms: dict = field(default_factory=dict)

    def median_one_way_ms(self, src: Placement, dst: Placement) -> float:
        """The jitter-free one-way latency between two placements."""
        if src == dst:
            return self.loopback_ms
        if src.same_zone(dst):
            return self.same_zone_ms
        if src.same_region(dst):
            return self.cross_zone_ms
        override = self.region_pair_ms.get(
            frozenset((src.region, dst.region)))
        return self.cross_region_ms if override is None else override


#: The latency model calibrated to the paper's ping measurements.
PAPER_LATENCY = LatencyModel()


class Network:
    """Delivers messages between placements with sampled latency."""

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 model: LatencyModel = PAPER_LATENCY):
        self.sim = sim
        self.streams = streams
        self.model = model
        self.messages_sent = 0
        self.bytes_sent = 0
        self._down_region_pairs: set[frozenset] = set()
        self._heal_waiters: dict[frozenset, list[Event]] = {}
        #: Transient latency surges: extra one-way milliseconds added to
        #: every sample, keyed on a frozenset of the two region names
        #: (or :data:`Network.EVERYWHERE` for a global surge).
        self._latency_surges: dict[frozenset, float] = {}

    #: Surge key applying to every non-loopback path.
    EVERYWHERE: frozenset = frozenset(("*",))

    # -- latency surges -------------------------------------------------------
    def add_latency(self, extra_ms: float,
                    region_a: Optional[str] = None,
                    region_b: Optional[str] = None) -> None:
        """Inflate one-way latency by ``extra_ms`` until cleared.

        With a region pair, only that pair degrades; without one, every
        non-loopback path does (a congestion event rather than a bad
        link).  Surges stack additively with the model's medians; the
        lognormal jitter applies on top, so jitter grows with them.
        """
        if extra_ms < 0:
            raise ValueError(f"extra_ms must be >= 0, got {extra_ms}")
        key = self.EVERYWHERE if region_a is None \
            else frozenset((region_a, region_b or region_a))
        self._latency_surges[key] = \
            self._latency_surges.get(key, 0.0) + extra_ms

    def clear_latency(self, region_a: Optional[str] = None,
                      region_b: Optional[str] = None) -> None:
        """End the surge on a pair (or the global surge)."""
        key = self.EVERYWHERE if region_a is None \
            else frozenset((region_a, region_b or region_a))
        self._latency_surges.pop(key, None)

    def surge_ms(self, src: Placement, dst: Placement) -> float:
        """Extra one-way milliseconds currently applied to a path."""
        if not self._latency_surges or src == dst:
            return 0.0
        extra = self._latency_surges.get(self.EVERYWHERE, 0.0)
        extra += self._latency_surges.get(
            frozenset((src.region, dst.region)), 0.0)
        return extra

    # -- partitions -----------------------------------------------------------
    def partition(self, region_a: str, region_b: str) -> None:
        """Cut connectivity between two regions.

        Models the §II hazard: "unreachable replicas due to network
        partitioning cause suspension of synchronization".  Messages
        sent while the pair is partitioned are held (TCP keeps
        retrying) and delivered after :meth:`heal`.
        """
        if region_a == region_b:
            raise ValueError("cannot partition a region from itself")
        self._down_region_pairs.add(frozenset((region_a, region_b)))

    def heal(self, region_a: str, region_b: str) -> None:
        """Restore connectivity; held traffic flows again."""
        key = frozenset((region_a, region_b))
        self._down_region_pairs.discard(key)
        for waiter in self._heal_waiters.pop(key, []):
            waiter.succeed()

    def is_partitioned(self, src: Placement, dst: Placement) -> bool:
        return frozenset((src.region, dst.region)) \
            in self._down_region_pairs

    def when_healed(self, src: Placement, dst: Placement) -> Event:
        """Event firing when the pair becomes reachable (now if up)."""
        ev = Event(self.sim)
        key = frozenset((src.region, dst.region))
        if key in self._down_region_pairs:
            self._heal_waiters.setdefault(key, []).append(ev)
        else:
            ev.succeed()
        return ev

    def sample_one_way(self, src: Placement, dst: Placement) -> float:
        """One jittered one-way latency sample, in **seconds**."""
        median_ms = self.model.median_one_way_ms(src, dst) \
            + self.surge_ms(src, dst)
        sample_ms = self.streams.lognormal_around(
            "network.latency", median_ms, self.model.jitter_sigma)
        return max(sample_ms, self.model.floor_ms) / 1000.0

    def send(self, src: Placement, dst: Placement, payload: Any = None,
             size_bytes: int = 0,
             on_delivery: Optional[Callable[[Any], None]] = None) -> Event:
        """Send ``payload``; the returned event fires on delivery.

        ``on_delivery`` (if given) is invoked with the payload at the
        moment of delivery — convenient for pushing into a mailbox
        without a dedicated process.  Sends across a partitioned
        region pair are held until the partition heals.
        """
        if self.is_partitioned(src, dst):
            delivered = Event(self.sim)

            def retry(_healed, payload=payload):
                inner = self.send(src, dst, payload, size_bytes,
                                  on_delivery)
                inner.callbacks.append(
                    lambda ev: delivered.succeed(ev.value))

            self.when_healed(src, dst).callbacks.append(retry)
            return delivered
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        delay = self.sample_one_way(src, dst)
        delivered = self.sim.timeout(delay, value=payload)
        if on_delivery is not None:
            delivered.callbacks.append(lambda ev: on_delivery(ev.value))
        return delivered

    def round_trip(self, src: Placement, dst: Placement) -> Event:
        """An event that fires after a full round trip (two samples)."""
        rtt = self.sample_one_way(src, dst) + self.sample_one_way(dst, src)
        return self.sim.timeout(rtt, value=rtt)

    def ping(self, src: Placement, dst: Placement) -> float:
        """An instantaneous RTT probe in **milliseconds** (no sim time).

        Used by characterization code that, like the paper, runs ping
        once a second and reports the distribution of 1/2 RTT.
        """
        one_way = self.sample_one_way(src, dst) + self.sample_one_way(dst, src)
        return one_way * 1000.0

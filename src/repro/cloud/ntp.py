"""NTP synchronization daemon.

The paper's measurement methodology hinges on clock control (§III-A,
§IV-B.1): Amazon itself synchronizes instance clocks "in a very relaxed
manner — every couple of hours", so the authors run ntpd themselves and
compare two policies in Fig. 4:

* **sync once at the beginning** — the inter-instance difference starts
  around 7 ms and surges linearly to ~50 ms over 20 minutes
  (median 28.23 ms, σ 12.31) because of clock drift;
* **sync every second** — the difference stays in a 1–8 ms band
  (median 3.30 ms, σ 1.19), bounded by the residual error of each
  individual synchronization.

:class:`NtpDaemon` reproduces both policies.  Each synchronization
steps the local clock to a *residual* error drawn from a normal
distribution — the irreducible error caused by asymmetric network
delays to the time servers.
"""

from __future__ import annotations

from typing import Optional

from ..sim import RandomStreams, Simulator
from .clock import LocalClock

__all__ = ["NtpConfig", "NtpDaemon"]


class NtpConfig:
    """Parameters of the NTP residual-error model."""

    def __init__(self, residual_sigma_s: float = 0.00346,
                 first_sync_at: float = 0.0):
        #: Std-dev of the per-sync residual clock error, seconds.  The
        #: default is calibrated so the |difference| of two synced
        #: clocks has a median near the paper's 3.30 ms.
        self.residual_sigma_s = residual_sigma_s
        self.first_sync_at = first_sync_at


class NtpDaemon:
    """Synchronizes one instance clock, once or periodically."""

    def __init__(self, sim: Simulator, clock: LocalClock,
                 streams: RandomStreams, period: Optional[float],
                 config: Optional[NtpConfig] = None,
                 stream_name: str = "ntp"):
        """``period=None`` means "sync once at the beginning" (the
        paper's baseline policy); otherwise sync every ``period``
        seconds — the paper uses 1.0 s."""
        if period is not None and period <= 0:
            raise ValueError(f"NTP period must be positive, got {period}")
        self.sim = sim
        self.clock = clock
        self.streams = streams
        self.period = period
        self.config = config or NtpConfig()
        self.stream_name = stream_name
        self.sync_count = 0
        self.process = sim.process(self._run(), name=f"ntp:{stream_name}")

    def _sync_once(self) -> None:
        residual = self.streams.normal(self.stream_name,
                                       0.0, self.config.residual_sigma_s)
        self.clock.step_to_error(residual)
        self.sync_count += 1

    def _run(self):
        if self.config.first_sync_at > 0:
            yield self.sim.timeout(self.config.first_sync_at)
        self._sync_once()
        if self.period is None:
            return
        while True:
            yield self.sim.timeout(self.period)
            self._sync_once()

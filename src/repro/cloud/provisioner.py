"""The cloud account: launching and terminating instances.

:class:`Cloud` bundles the simulator, RNG streams, network and region
catalogue and hands out :class:`~repro.cloud.instance.Instance` objects
with freshly drawn hardware (physical-CPU lottery) and clock state
(boot offset + drift).  As the paper notes (citing Ristenpart et al.),
instances of a single account never share a physical node — so every
instance gets an independent clock.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from ..sim import RandomStreams, Simulator
from .clock import LocalClock
from .instance import (Instance, InstanceType, draw_instance_hardware)
from .network import LatencyModel, Network, PAPER_LATENCY
from .ntp import NtpConfig, NtpDaemon
from .regions import DEFAULT_CATALOG, Placement, RegionCatalog

__all__ = ["ClockProfile", "Cloud"]


@dataclass(frozen=True)
class ClockProfile:
    """Distribution of per-instance clock state at boot.

    Defaults are calibrated to the paper's Fig. 4 pair: boot offsets of
    a few tens of milliseconds (Amazon syncs only every couple of
    hours) and drift rates around tens of ppm, so that two unsynced
    instances diverge by tens of milliseconds over a 20-minute run.
    """

    boot_offset_sigma_s: float = 0.020
    drift_ppm_sigma: float = 18.0


class Cloud:
    """A simulated cloud account."""

    def __init__(self, sim: Simulator, streams: RandomStreams,
                 catalog: RegionCatalog = DEFAULT_CATALOG,
                 latency: LatencyModel = PAPER_LATENCY,
                 clock_profile: ClockProfile = ClockProfile()):
        self.sim = sim
        self.streams = streams
        self.catalog = catalog
        self.network = Network(sim, streams, latency)
        self.clock_profile = clock_profile
        self.instances: dict[str, Instance] = {}
        self._name_counter = itertools.count(1)

    # -- lifecycle -------------------------------------------------------------
    def launch(self, itype: InstanceType, placement: Placement,
               name: Optional[str] = None,
               offset: Optional[float] = None,
               drift_rate: Optional[float] = None) -> Instance:
        """Launch one instance.

        ``offset``/``drift_rate`` override the random clock draw — the
        figure-4 reproduction uses this to pin the calibrated pair.
        """
        if name is None:
            name = f"i-{next(self._name_counter):05d}"
        if name in self.instances:
            raise ValueError(f"instance name {name!r} already in use")
        if offset is None:
            offset = self.streams.normal(
                "cloud.clock.offset", 0.0,
                self.clock_profile.boot_offset_sigma_s)
        if drift_rate is None:
            drift_rate = self.streams.normal(
                "cloud.clock.drift", 0.0,
                self.clock_profile.drift_ppm_sigma) * 1e-6
        clock = LocalClock(self.sim, offset=offset, drift_rate=drift_rate)
        cpu_model, host_noise = draw_instance_hardware(self.streams, itype)
        instance = Instance(self.sim, name, itype, placement,
                            cpu_model, host_noise, clock)
        self.instances[name] = instance
        return instance

    def terminate(self, instance: Instance) -> None:
        """Terminate an instance (it stops accepting compute)."""
        instance.running = False
        self.instances.pop(instance.name, None)

    # -- services --------------------------------------------------------------
    def start_ntp(self, instance: Instance, period: Optional[float] = 1.0,
                  config: Optional[NtpConfig] = None) -> NtpDaemon:
        """Run an NTP daemon on ``instance``.

        ``period=1.0`` is the paper's aggressive every-second policy;
        ``period=None`` syncs once at the beginning only.
        """
        return NtpDaemon(self.sim, instance.clock, self.streams, period,
                         config=config, stream_name=f"ntp.{instance.name}")

    def placement(self, zone: str) -> Placement:
        """Resolve a zone name through the region catalogue."""
        return self.catalog.placement(zone)

"""Geographic catalogue of the simulated cloud.

Mirrors the EC2 layout the paper uses: Regions are separate geographic
areas, Availability Zones are distinct locations within a Region.  The
paper's experiments place the master (and the load generator) in one
zone and the slaves in (a) the same zone, (b) a different zone of the
same region, or (c) a different region.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Placement", "Region", "RegionCatalog", "DEFAULT_CATALOG",
           "MASTER_PLACEMENT"]


@dataclass(frozen=True)
class Placement:
    """A (region, zone) pair, e.g. ``us-east-1`` / ``us-east-1a``."""

    region: str
    zone: str

    def __str__(self) -> str:
        return self.zone

    def same_zone(self, other: "Placement") -> bool:
        return self.zone == other.zone

    def same_region(self, other: "Placement") -> bool:
        return self.region == other.region


@dataclass(frozen=True)
class Region:
    """A named region and its availability zones."""

    name: str
    zones: tuple[str, ...]

    def placement(self, zone_suffix: str) -> Placement:
        zone = f"{self.name}{zone_suffix}"
        if zone not in self.zones:
            raise KeyError(f"no zone {zone!r} in region {self.name!r}")
        return Placement(self.name, zone)


class RegionCatalog:
    """All regions available to the simulated account."""

    def __init__(self, regions: list[Region]):
        self._regions = {r.name: r for r in regions}

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise KeyError(f"unknown region {name!r}") from None

    def placement(self, zone: str) -> Placement:
        """Resolve a full zone name like ``us-east-1b`` to a Placement."""
        for region in self._regions.values():
            if zone in region.zones:
                return Placement(region.name, zone)
        raise KeyError(f"unknown availability zone {zone!r}")

    @property
    def region_names(self) -> list[str]:
        return sorted(self._regions)


#: The regions that appear in the paper's experiment setup (Fig. 1).
DEFAULT_CATALOG = RegionCatalog([
    Region("us-east-1", ("us-east-1a", "us-east-1b")),
    Region("us-west-1", ("us-west-1a", "us-west-1b")),
    Region("eu-west-1", ("eu-west-1a", "eu-west-1b")),
    Region("ap-southeast-1", ("ap-southeast-1a",)),
    Region("ap-northeast-1", ("ap-northeast-1a",)),
])

#: Where the paper deploys the master database and the load generator.
MASTER_PLACEMENT = DEFAULT_CATALOG.placement("us-east-1a")

"""In-memory relational storage engine (the MySQL stand-in)."""

from .binlog import Binlog, BinlogEvent
from .engine import (ExecutionProfile, ExecutionResult, ResultSet,
                     StorageEngine)
from .errors import (ConstraintError, DatabaseError, DuplicateKeyError,
                     SchemaError, TableNotFoundError, TransactionError)
from .functions import standard_functions
from .index import Index
from .rowevents import RowOp, apply_row_ops, row_ops_size_bytes
from .schema import Column, TableSchema, schema_from_ast
from .table import Table
from .types import SqlType, resolve_type

__all__ = [
    "StorageEngine",
    "ResultSet",
    "ExecutionProfile",
    "ExecutionResult",
    "Binlog",
    "BinlogEvent",
    "Table",
    "Index",
    "RowOp",
    "apply_row_ops",
    "row_ops_size_bytes",
    "Column",
    "TableSchema",
    "schema_from_ast",
    "SqlType",
    "resolve_type",
    "standard_functions",
    "DatabaseError",
    "SchemaError",
    "TableNotFoundError",
    "DuplicateKeyError",
    "ConstraintError",
    "TransactionError",
]

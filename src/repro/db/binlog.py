"""The master's statement-based binary log.

Each committed write appends one :class:`BinlogEvent` carrying the SQL
text (parameters inlined, non-deterministic functions left symbolic), a
monotonically increasing position, the id of the originating server and
the master's local commit timestamp.  Binlog-dump threads read from a
position cursor; :meth:`Binlog.wait_for` lets them park until new
events arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim import Event, Simulator

__all__ = ["BinlogEvent", "Binlog"]


@dataclass(frozen=True, slots=True)
class BinlogEvent:
    """One replicated statement (or row-image batch)."""

    position: int          # 1-based, dense
    statement: str         # SQL text to re-execute on the replica
    database: str          # default database in effect
    server_id: int         # originating server
    commit_wallclock: float  # master's local clock at commit
    commit_simtime: float    # true simulated time at commit (metrics only)
    #: Row-based replication payload; when set, ``statement`` is only
    #: a human-readable description and the slave applies the images.
    row_ops: Optional[tuple] = None

    @property
    def size_bytes(self) -> int:
        """Approximate wire size of the event."""
        if self.row_ops is not None:
            from .rowevents import row_ops_size_bytes
            return 60 + row_ops_size_bytes(self.row_ops)
        return 60 + len(self.statement)


class Binlog:
    """Append-only event log with change notification."""

    def __init__(self, sim: Simulator, server_id: int):
        self.sim = sim
        self.server_id = server_id
        self.events: list[BinlogEvent] = []
        self._waiters: list[Event] = []

    @property
    def head_position(self) -> int:
        """Position of the newest event (0 when empty)."""
        return len(self.events)

    def append(self, statement: str, database: str,
               commit_wallclock: float,
               row_ops: Optional[tuple] = None) -> BinlogEvent:
        event = BinlogEvent(
            position=len(self.events) + 1,
            statement=statement,
            database=database,
            server_id=self.server_id,
            commit_wallclock=commit_wallclock,
            commit_simtime=self.sim.now,
            row_ops=row_ops,
        )
        self.events.append(event)
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.succeed()
        return event

    def read_from(self, position: int,
                  max_events: Optional[int] = None) -> list[BinlogEvent]:
        """Events strictly after ``position`` (a 0-based cursor)."""
        chunk = self.events[position:]
        if max_events is not None:
            chunk = chunk[:max_events]
        return chunk

    def wait_for(self, position: int) -> Event:
        """Event firing once the log extends past ``position``."""
        ev = Event(self.sim)
        if self.head_position > position:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

"""The storage engine: statement execution against in-memory tables.

One :class:`StorageEngine` instance is the data of one MySQL-like
server.  It executes parsed statements (or SQL text), maintains
secondary indexes, supports transactions with an undo log, and reports
an :class:`ExecutionProfile` per statement so the simulated server can
charge CPU time proportional to the actual work done (rows examined /
mutated, index vs. scan).

The engine itself runs in zero simulated time; *when* things happen is
the business of :mod:`repro.replication.server`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence, Union

from ..sql.ast import (BeginStatement, BinaryOp, BetweenOp, ColumnRef,
                       CommitStatement, CreateDatabaseStatement,
                       CreateIndexStatement, CreateTableStatement,
                       DeleteStatement, DropTableStatement, Expression,
                       FunctionCall, InsertStatement, Literal, ParamRef,
                       RollbackStatement, SelectItem, SelectStatement, Star,
                       Statement, UpdateStatement, UseStatement)
from ..sql.expressions import EvalContext, evaluate
from ..sql.parser import parse
from ..sql.plancache import PlanCache
from ..sql.render import render_expression, render_statement
from .errors import (DatabaseError, SchemaError, TableNotFoundError,
                     TransactionError)
from .schema import schema_from_ast
from .table import Table
from .transaction import Transaction, UndoRecord

__all__ = ["ResultSet", "ExecutionProfile", "ExecutionResult",
           "StorageEngine"]


@dataclass(slots=True)
class ResultSet:
    """Rows returned to the client."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    rowcount: int = 0          # affected rows for DML
    lastrowid: Optional[int] = None

    def scalar(self) -> Any:
        """First column of the first row (or None when empty)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


@dataclass(slots=True)
class ExecutionProfile:
    """What the statement actually did — input to the CPU cost model."""

    kind: str                 # select | insert | update | delete | ddl | txn | use
    table: Optional[str] = None
    rows_examined: int = 0
    rows_returned: int = 0
    rows_affected: int = 0
    used_index: bool = False
    joined_tables: int = 0


@dataclass(slots=True)
class ExecutionResult:
    """Result + profile + the statements destined for the binlog."""

    result: ResultSet
    profile: ExecutionProfile
    #: (text, database) pairs committed by this call (autocommit or COMMIT).
    committed: list[tuple[str, str]] = field(default_factory=list)


class StorageEngine:
    """Executes statements; one instance per simulated database server."""

    def __init__(self,
                 functions: Optional[Mapping[str, Callable]] = None,
                 default_database: str = "main",
                 commit_listener: Optional[
                     Callable[[list[tuple[str, str]]], None]] = None,
                 plan_cache: Optional[PlanCache] = None):
        self.functions = dict(functions or {})
        self.default_database = default_database
        #: Optional prepared-plan cache for SQL-text execution; safe to
        #: share across engines (plans are frozen ASTs).
        self.plan_cache = plan_cache
        self.databases: set[str] = {default_database}
        self.tables: dict[str, Table] = {}
        self.commit_listener = commit_listener
        self.transaction: Optional[Transaction] = None
        self.statements_executed = 0
        #: "statement" logs SQL text (the paper's mode — required by
        #: its heartbeat methodology); "row" logs row images.
        self.binlog_format = "statement"

    # ------------------------------------------------------------- naming
    def qualify(self, name: str) -> str:
        return name if "." in name else f"{self.default_database}.{name}"

    def table(self, name: str) -> Table:
        qualified = self.qualify(name)
        table = self.tables.get(qualified)
        if table is None:
            raise TableNotFoundError(f"table {qualified!r} does not exist")
        return table

    def has_table(self, name: str) -> bool:
        return self.qualify(name) in self.tables

    # ------------------------------------------------------------ execute
    def execute(self, statement: Union[str, Statement],
                params: Optional[Sequence[Any]] = None,
                database: Optional[str] = None) -> ExecutionResult:
        """Execute one statement (SQL text or a parsed AST node).

        ``database`` overrides the session default database for this
        single call — the slave SQL thread uses it to run each binlog
        event against the event's recorded database without disturbing
        concurrent client sessions.
        """
        if database is not None:
            saved = self.default_database
            self.default_database = database
            try:
                return self.execute(statement, params)
            finally:
                self.default_database = saved
        if isinstance(statement, str):
            cache = self.plan_cache
            if cache is None:
                statement = parse(statement)
            else:
                statement, params = cache.prepare(statement, params)
        self.statements_executed += 1
        params = params or ()
        if isinstance(statement, SelectStatement):
            result, profile = self._execute_select(statement, params)
            return ExecutionResult(result, profile)
        if isinstance(statement, InsertStatement):
            return self._write(statement, params, self._execute_insert)
        if isinstance(statement, UpdateStatement):
            return self._write(statement, params, self._execute_update)
        if isinstance(statement, DeleteStatement):
            return self._write(statement, params, self._execute_delete)
        if isinstance(statement, (CreateTableStatement,
                                  CreateIndexStatement,
                                  DropTableStatement,
                                  CreateDatabaseStatement)):
            return self._execute_ddl(statement)
        if isinstance(statement, UseStatement):
            if statement.name not in self.databases:
                raise DatabaseError(f"unknown database {statement.name!r}")
            self.default_database = statement.name
            return ExecutionResult(ResultSet(), ExecutionProfile("use"))
        if isinstance(statement, BeginStatement):
            return self._begin()
        if isinstance(statement, CommitStatement):
            return self._commit()
        if isinstance(statement, RollbackStatement):
            return self._rollback()
        raise DatabaseError(
            f"cannot execute {type(statement).__name__}")

    # --------------------------------------------------------- transactions
    @property
    def in_transaction(self) -> bool:
        return self.transaction is not None

    def _begin(self) -> ExecutionResult:
        if self.transaction is not None:
            raise TransactionError("transaction already open")
        self.transaction = Transaction()
        return ExecutionResult(ResultSet(), ExecutionProfile("txn"))

    def _commit(self) -> ExecutionResult:
        if self.transaction is None:
            raise TransactionError("COMMIT without open transaction")
        committed = self.transaction.binlog_statements
        self.transaction = None
        if committed and self.commit_listener is not None:
            self.commit_listener(committed)
        return ExecutionResult(ResultSet(), ExecutionProfile("txn"),
                               committed=list(committed))

    def _rollback(self) -> ExecutionResult:
        if self.transaction is None:
            raise TransactionError("ROLLBACK without open transaction")
        for record in reversed(self.transaction.undo):
            self._undo(record)
        self.transaction = None
        return ExecutionResult(ResultSet(), ExecutionProfile("txn"))

    def _undo(self, record: UndoRecord) -> None:
        table = self.tables[record.table]
        if record.kind == "insert":
            table.delete(record.pk)
        elif record.kind == "update":
            # record.pk is where the row lives NOW (updates can move the
            # primary key); restore the old row at its old location.
            table.delete(record.pk)
            table.restore(record.old_row[table.primary_key_column],
                          record.old_row)
        elif record.kind == "delete":
            table.restore(record.pk, record.old_row)
        else:  # pragma: no cover - defensive
            raise DatabaseError(f"unknown undo kind {record.kind!r}")

    def _write(self, statement: Statement, params: Sequence[Any],
               runner: Callable) -> ExecutionResult:
        """Run a DML statement inside the open (or an implicit) txn."""
        implicit = self.transaction is None
        if implicit:
            self.transaction = Transaction()
        undo_start = len(self.transaction.undo)
        try:
            result, profile = runner(statement, params)
        except DatabaseError:
            if implicit:
                # Roll the implicit transaction back entirely.
                for record in reversed(self.transaction.undo):
                    self._undo(record)
                self.transaction = None
            raise
        if profile.rows_affected > 0:
            if self.binlog_format == "row":
                ops = self._row_ops_since(undo_start)
                self.transaction.record_statement(ops,
                                                  self.default_database)
            else:
                text = render_statement(statement, params)
                self.transaction.record_statement(text,
                                                  self.default_database)
        if implicit:
            committed = self.transaction.binlog_statements
            self.transaction = None
            if committed and self.commit_listener is not None:
                self.commit_listener(committed)
            return ExecutionResult(result, profile, committed=list(committed))
        return ExecutionResult(result, profile)

    def _row_ops_since(self, undo_start: int) -> tuple:
        """Row images for the undo records of the last statement.

        Captured immediately after the statement runs, so the images
        reflect its effects and not those of later statements.
        """
        from .rowevents import RowOp
        ops = []
        for record in self.transaction.undo[undo_start:]:
            table = self.tables[record.table]
            if record.kind == "insert":
                ops.append(RowOp("insert", record.table, record.pk,
                                 dict(table.rows[record.pk])))
            elif record.kind == "update":
                old_pk = record.old_row[table.primary_key_column]
                ops.append(RowOp("update", record.table, old_pk,
                                 dict(table.rows[record.pk])))
            else:
                ops.append(RowOp("delete", record.table, record.pk))
        return tuple(ops)

    # ----------------------------------------------------------------- DDL
    def _execute_ddl(self, statement: Statement) -> ExecutionResult:
        if self.transaction is not None:
            raise TransactionError("DDL inside a transaction is not "
                                   "supported (MySQL would implicitly "
                                   "commit; be explicit instead)")
        profile = ExecutionProfile("ddl")
        if isinstance(statement, CreateDatabaseStatement):
            if statement.name in self.databases:
                if not statement.if_not_exists:
                    raise SchemaError(
                        f"database {statement.name!r} already exists")
            self.databases.add(statement.name)
        elif isinstance(statement, CreateTableStatement):
            qualified = self.qualify(statement.table)
            database = qualified.split(".", 1)[0]
            if database not in self.databases:
                raise DatabaseError(f"unknown database {database!r}")
            if qualified in self.tables:
                if not statement.if_not_exists:
                    raise SchemaError(f"table {qualified!r} already exists")
            else:
                schema = schema_from_ast(qualified, statement.columns)
                self.tables[qualified] = Table(schema)
            profile.table = qualified
        elif isinstance(statement, CreateIndexStatement):
            table = self.table(statement.table)
            table.create_index(statement.name, statement.columns,
                               statement.unique)
            profile.table = table.name
            profile.rows_examined = len(table)
        elif isinstance(statement, DropTableStatement):
            qualified = self.qualify(statement.table)
            if qualified not in self.tables:
                if not statement.if_exists:
                    raise TableNotFoundError(
                        f"table {qualified!r} does not exist")
            else:
                del self.tables[qualified]
            profile.table = qualified
        text = render_statement(statement)
        committed = [(text, self.default_database)]
        if self.commit_listener is not None:
            self.commit_listener(committed)
        return ExecutionResult(ResultSet(), profile, committed=committed)

    # ----------------------------------------------------------------- DML
    def _execute_insert(self, statement: InsertStatement,
                        params: Sequence[Any]
                        ) -> tuple[ResultSet, ExecutionProfile]:
        table = self.table(statement.table)
        columns = statement.columns or tuple(table.schema.column_names)
        ctx = EvalContext(params=params, functions=self.functions)
        lastrowid = None
        for row_exprs in statement.rows:
            if len(row_exprs) != len(columns):
                raise SchemaError(
                    f"INSERT has {len(row_exprs)} values for "
                    f"{len(columns)} columns")
            values = {col: evaluate(expr, ctx)
                      for col, expr in zip(columns, row_exprs)}
            pk = table.insert(values)
            self.transaction.record(UndoRecord("insert", table.name, pk))
            if isinstance(pk, int):
                lastrowid = pk
        profile = ExecutionProfile("insert", table=table.name,
                                   rows_affected=len(statement.rows))
        result = ResultSet(rowcount=len(statement.rows), lastrowid=lastrowid)
        return result, profile

    def _execute_update(self, statement: UpdateStatement,
                        params: Sequence[Any]
                        ) -> tuple[ResultSet, ExecutionProfile]:
        table = self.table(statement.table)
        pks, examined, used_index = self._plan_where(
            table, statement.where, params)
        affected = 0
        for pk in list(pks):
            row = table.rows[pk]
            ctx = EvalContext(row=_namespace(table, None, row),
                              params=params, functions=self.functions)
            remaining = statement.where
            if remaining is not None and not _truthy(evaluate(remaining, ctx)):
                continue
            changes = {column: evaluate(expr, ctx)
                       for column, expr in statement.assignments}
            old_row = table.update(pk, changes)
            pk_column = table.primary_key_column
            new_pk = pk
            if pk_column in changes:
                new_pk = table.schema.primary_key.sql_type.coerce(
                    changes[pk_column], pk_column)
            self.transaction.record(
                UndoRecord("update", table.name, new_pk, old_row))
            affected += 1
        profile = ExecutionProfile("update", table=table.name,
                                   rows_examined=examined,
                                   rows_affected=affected,
                                   used_index=used_index)
        return ResultSet(rowcount=affected), profile

    def _execute_delete(self, statement: DeleteStatement,
                        params: Sequence[Any]
                        ) -> tuple[ResultSet, ExecutionProfile]:
        table = self.table(statement.table)
        pks, examined, used_index = self._plan_where(
            table, statement.where, params)
        affected = 0
        for pk in list(pks):
            row = table.rows[pk]
            ctx = EvalContext(row=_namespace(table, None, row),
                              params=params, functions=self.functions)
            if statement.where is not None \
                    and not _truthy(evaluate(statement.where, ctx)):
                continue
            old_row = table.delete(pk)
            self.transaction.record(
                UndoRecord("delete", table.name, pk, old_row))
            affected += 1
        profile = ExecutionProfile("delete", table=table.name,
                                   rows_examined=examined,
                                   rows_affected=affected,
                                   used_index=used_index)
        return ResultSet(rowcount=affected), profile

    # -------------------------------------------------------------- SELECT
    def _execute_select(self, statement: SelectStatement,
                        params: Sequence[Any]
                        ) -> tuple[ResultSet, ExecutionProfile]:
        profile = ExecutionProfile("select")
        if statement.table is None:
            # Table-less select: SELECT 1, SELECT USEC_NOW(), ...
            ctx = EvalContext(params=params, functions=self.functions)
            row = tuple(evaluate(item.expression, ctx)
                        for item in statement.items)
            columns = [_item_label(item, params) for item in statement.items]
            profile.rows_returned = 1
            return ResultSet(columns=columns, rows=[row], rowcount=1), profile

        table = self.table(statement.table)
        profile.table = table.name
        base_alias = statement.alias or _short_name(table.name)
        pks, examined, used_index = self._plan_where(
            table, statement.where, params)
        profile.used_index = used_index
        namespaces: list[dict[str, Any]] = []
        aliases: list[tuple[str, Table]] = [(base_alias, table)]
        for pk in pks:
            namespaces.append(_namespace(table, base_alias, table.rows[pk]))
        profile.rows_examined = examined

        # Joins: nested loop with index lookup where possible.
        for join in statement.joins:
            right = self.table(join.table)
            right_alias = join.alias or _short_name(right.name)
            aliases.append((right_alias, right))
            namespaces, join_examined = self._join(
                namespaces, right, right_alias, join.condition, params)
            profile.rows_examined += join_examined
            profile.joined_tables += 1

        # WHERE residual filtering (join rows need the full namespace).
        if statement.where is not None:
            filtered = []
            for namespace in namespaces:
                ctx = EvalContext(row=namespace, params=params,
                                  functions=self.functions)
                if _truthy(evaluate(statement.where, ctx)):
                    filtered.append(namespace)
            namespaces = filtered

        # Grouped / aggregate path.
        has_aggregate = any(_contains_aggregate(item.expression)
                            for item in statement.items) \
            or (statement.having is not None
                and _contains_aggregate(statement.having)) \
            or any(_contains_aggregate(o.expression)
                   for o in statement.order_by)
        if statement.group_by or has_aggregate:
            rows, columns = self._execute_grouped(statement, namespaces,
                                                  params)
            offset = statement.offset or 0
            if offset:
                rows = rows[offset:]
            if statement.limit is not None:
                rows = rows[:statement.limit]
            profile.rows_returned = len(rows)
            return ResultSet(columns=columns, rows=rows,
                             rowcount=len(rows)), profile

        # ORDER BY before projection (order keys may not be projected).
        if statement.order_by:
            namespaces = self._order(namespaces, statement.order_by, params)

        columns, rows = self._project(statement.items, namespaces, aliases,
                                      params)
        if statement.distinct:
            seen = set()
            unique_rows = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique_rows.append(row)
            rows = unique_rows
        offset = statement.offset or 0
        if offset:
            rows = rows[offset:]
        if statement.limit is not None:
            rows = rows[:statement.limit]
        profile.rows_returned = len(rows)
        return ResultSet(columns=columns, rows=rows,
                         rowcount=len(rows)), profile

    def _join(self, namespaces: list[dict], right: Table, right_alias: str,
              condition: Expression, params: Sequence[Any]
              ) -> tuple[list[dict], int]:
        examined = 0
        # Try to use an equality condition with the right table's pk or
        # an index:  left.col = right.col
        probe = _join_probe(condition, right, right_alias)
        joined: list[dict] = []
        for namespace in namespaces:
            if probe is not None:
                left_expr, right_column = probe
                ctx = EvalContext(row=namespace, params=params,
                                  functions=self.functions)
                value = evaluate(left_expr, ctx)
                candidate_pks = _lookup_by_column(right, right_column, value)
            else:
                candidate_pks = list(right.rows)
            for pk in candidate_pks:
                examined += 1
                combined = dict(namespace)
                combined.update(_namespace(right, right_alias,
                                           right.rows[pk]))
                ctx = EvalContext(row=combined, params=params,
                                  functions=self.functions)
                if _truthy(evaluate(condition, ctx)):
                    joined.append(combined)
        return joined, examined

    def _execute_grouped(self, statement: SelectStatement,
                         namespaces: list[dict], params: Sequence[Any]
                         ) -> tuple[list[tuple], list[str]]:
        """GROUP BY / aggregate execution.

        Follows MySQL's permissive (pre-ONLY_FULL_GROUP_BY) semantics:
        a non-aggregate expression in the select list evaluates against
        an arbitrary (the first) row of each group.
        """
        if statement.group_by:
            groups: dict[tuple, list[dict]] = {}
            for namespace in namespaces:
                ctx = EvalContext(row=namespace, params=params,
                                  functions=self.functions)
                key = tuple(_freeze(evaluate(g, ctx))
                            for g in statement.group_by)
                groups.setdefault(key, []).append(namespace)
            group_rows = list(groups.values())
        else:
            # Implicit single group — even over an empty input
            # (COUNT(*) of an empty table is 0, not no-rows).
            group_rows = [namespaces]

        columns = [_item_label(item, params) for item in statement.items]
        produced: list[tuple[tuple, tuple]] = []  # (order_keys, row)
        for members in group_rows:
            representative = members[0] if members else {}

            def group_eval(expr):
                substituted = self._substitute_aggregates(expr, members,
                                                          params)
                ctx = EvalContext(row=representative, params=params,
                                  functions=self.functions)
                return evaluate(substituted, ctx)

            if statement.having is not None \
                    and not _truthy(group_eval(statement.having)):
                continue
            row = tuple(group_eval(item.expression)
                        for item in statement.items)
            order_keys = tuple(
                (_sort_key(group_eval(o.expression)), o.descending)
                for o in statement.order_by)
            produced.append((order_keys, row))

        for index in reversed(range(len(statement.order_by))):
            descending = statement.order_by[index].descending
            produced.sort(key=lambda pair: pair[0][index][0],
                          reverse=descending)
        rows = [row for _keys, row in produced]
        if statement.distinct:
            seen: set = set()
            rows = [r for r in rows if not (r in seen or seen.add(r))]
        return rows, columns

    def _substitute_aggregates(self, expr: Expression,
                               members: list[dict],
                               params: Sequence[Any]) -> Expression:
        """Replace aggregate calls with their computed literals."""
        if isinstance(expr, FunctionCall):
            if expr.is_aggregate:
                return Literal(self._compute_aggregate(expr, members,
                                                       params))
            args = tuple(self._substitute_aggregates(a, members, params)
                         for a in expr.args)
            return FunctionCall(expr.name, args, expr.distinct)
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op,
                self._substitute_aggregates(expr.left, members, params),
                self._substitute_aggregates(expr.right, members, params))
        from ..sql.ast import UnaryOp
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self._substitute_aggregates(
                expr.operand, members, params))
        return expr

    def _compute_aggregate(self, call: FunctionCall, namespaces: list[dict],
                           params: Sequence[Any]) -> Any:
        if call.name == "COUNT" and (not call.args
                                     or isinstance(call.args[0], Star)):
            return len(namespaces)
        arg = call.args[0]
        samples = []
        for namespace in namespaces:
            ctx = EvalContext(row=namespace, params=params,
                              functions=self.functions)
            value = evaluate(arg, ctx)
            if value is not None:
                samples.append(value)
        if call.distinct:
            samples = list(dict.fromkeys(samples))
        if call.name == "COUNT":
            return len(samples)
        if not samples:
            return None
        if call.name == "SUM":
            return sum(samples)
        if call.name == "AVG":
            return sum(samples) / len(samples)
        if call.name == "MIN":
            return min(samples)
        if call.name == "MAX":
            return max(samples)
        raise DatabaseError(f"unknown aggregate {call.name!r}")

    def _order(self, namespaces: list[dict],
               order_by, params: Sequence[Any]) -> list[dict]:
        # Stable sorts applied in reverse clause order give multi-key
        # ordering with per-key ASC/DESC.
        ordered = namespaces
        for item in reversed(order_by):
            ordered = sorted(
                ordered,
                key=lambda ns, e=item.expression: _sort_key(
                    evaluate(e, EvalContext(row=ns, params=params,
                                            functions=self.functions))),
                reverse=item.descending)
        return ordered

    def _project(self, items, namespaces, aliases, params
                 ) -> tuple[list[str], list[tuple]]:
        columns: list[str] = []
        extractors: list[Callable[[dict], Any]] = []
        for item in items:
            expr = item.expression
            if isinstance(expr, Star):
                for alias, table in aliases:
                    if expr.table is not None and expr.table != alias:
                        continue
                    for column in table.schema.column_names:
                        columns.append(column)
                        extractors.append(
                            lambda ns, k=f"{alias}.{column}": ns[k])
                continue
            columns.append(_item_label(item, params))
            extractors.append(
                lambda ns, e=expr: evaluate(
                    e, EvalContext(row=ns, params=params,
                                   functions=self.functions)))
        rows = [tuple(fn(ns) for fn in extractors) for ns in namespaces]
        return columns, rows

    # ------------------------------------------------------------ planning
    def _plan_where(self, table: Table, where: Optional[Expression],
                    params: Sequence[Any]
                    ) -> tuple[Iterable[Any], int, bool]:
        """Choose an access path; returns (pks, rows_examined, used_index).

        The returned pks are *candidates*: the caller still applies the
        full WHERE as a residual filter.
        """
        if where is None:
            return list(table.rows), len(table), False
        ctx = EvalContext(params=params, functions=self.functions)
        for conjunct in _conjuncts(where):
            probe = _equality_probe(conjunct)
            if probe is None:
                continue
            column, value_expr = probe
            if not table.schema.has_column(column):
                continue
            value = evaluate(value_expr, ctx)
            if column == table.primary_key_column:
                pk_value = table.schema.primary_key.sql_type.coerce(
                    value, column)
                found = pk_value in table.rows
                return ([pk_value] if found else []), 1, True
            index = table.index_on(column)
            if index is not None and len(index.columns) == 1:
                # lookup() returns a frozenset; sort so unordered
                # SELECTs return rows in pk order, not hash order.
                pks = sorted(index.lookup((value,)))
                return pks, len(pks), True
        # Range probe on a single-column index.
        for conjunct in _conjuncts(where):
            probe = _range_probe(conjunct)
            if probe is None:
                continue
            column, low_expr, high_expr, incl_low, incl_high = probe
            index = table.index_on(column)
            if index is None or len(index.columns) != 1:
                continue
            low = (evaluate(low_expr, ctx),) if low_expr is not None else None
            high = (evaluate(high_expr, ctx),) \
                if high_expr is not None else None
            pks = list(index.range_scan(low, high, incl_low, incl_high))
            return pks, len(pks), True
        return list(table.rows), len(table), False

    # ------------------------------------------------------------ snapshot
    def snapshot(self) -> dict:
        """A deep copy of all data — the slave initial-sync payload.

        ``databases`` is a *sorted list*, not a set: the payload must
        serialize identically across runs (and across hosts with
        different hash seeds) for replay comparisons to hold.
        """
        return {
            "databases": sorted(self.databases),
            "default_database": self.default_database,
            "tables": copy.deepcopy(self.tables),
        }

    def restore(self, snapshot: dict) -> None:
        """Load a snapshot previously produced by :meth:`snapshot`."""
        self.databases = set(snapshot["databases"])
        self.default_database = snapshot["default_database"]
        self.tables = copy.deepcopy(snapshot["tables"])
        self.transaction = None

    def checksum(self) -> tuple:
        """Canonical snapshot of all table contents, for convergence
        checks between replicas."""
        return tuple(
            (name, self.tables[name].checksum_state())
            for name in sorted(self.tables))


# ------------------------------------------------------------------ helpers
def _short_name(qualified: str) -> str:
    return qualified.rsplit(".", 1)[-1]


def _namespace(table: Table, alias: Optional[str],
               row: dict[str, Any]) -> dict[str, Any]:
    prefix = alias or _short_name(table.name)
    return {f"{prefix}.{column}": value for column, value in row.items()}


def _truthy(value: Any) -> bool:
    return value is not None and bool(value)


def _sort_key(value: Any) -> tuple:
    """Total order over SQL values: NULLs first, then numbers, then text."""
    if value is None:
        return (0, 0.0, "")
    if isinstance(value, (bool, int, float)):
        return (1, float(value), "")
    return (2, 0.0, str(value))


def _item_label(item: SelectItem, params: Sequence[Any]) -> str:
    if item.alias:
        return item.alias
    expr = item.expression
    if isinstance(expr, ColumnRef):
        return expr.name
    return render_expression(expr, params).lower()


def _conjuncts(expr: Expression) -> list[Expression]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _is_constant(expr: Expression) -> bool:
    if isinstance(expr, (Literal, ParamRef)):
        return True
    if isinstance(expr, BinaryOp):
        return _is_constant(expr.left) and _is_constant(expr.right)
    return False


def _equality_probe(expr: Expression
                    ) -> Optional[tuple[str, Expression]]:
    """Match ``col = const`` / ``const = col``; return (column, value)."""
    if not isinstance(expr, BinaryOp) or expr.op != "=":
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and _is_constant(right):
        return left.name, right
    if isinstance(right, ColumnRef) and _is_constant(left):
        return right.name, left
    return None


def _range_probe(expr: Expression):
    """Match BETWEEN / single comparison on a column vs constants.

    Returns (column, low, high, include_low, include_high) or None.
    """
    if isinstance(expr, BetweenOp) and not expr.negated \
            and isinstance(expr.operand, ColumnRef) \
            and _is_constant(expr.low) and _is_constant(expr.high):
        return expr.operand.name, expr.low, expr.high, True, True
    if isinstance(expr, BinaryOp) and expr.op in ("<", ">", "<=", ">="):
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and _is_constant(right):
            column, value, op = left.name, right, expr.op
        elif isinstance(right, ColumnRef) and _is_constant(left):
            column, value = right.name, left
            op = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}[expr.op]
        else:
            return None
        if op == "<":
            return column, None, value, True, False
        if op == "<=":
            return column, None, value, True, True
        if op == ">":
            return column, value, None, False, True
        return column, value, None, True, True
    return None


def _join_probe(condition: Expression, right: Table, right_alias: str
                ) -> Optional[tuple[Expression, str]]:
    """Match ``left_expr = right_alias.col`` where col is pk/indexed.

    Returns (left_expr, right_column) so the executor can evaluate the
    left side per outer row and index-probe the right table.
    """
    for conjunct in _conjuncts(condition):
        if not isinstance(conjunct, BinaryOp) or conjunct.op != "=":
            continue
        for own, other in ((conjunct.left, conjunct.right),
                           (conjunct.right, conjunct.left)):
            if isinstance(own, ColumnRef) and own.table == right_alias:
                column = own.name
                if not right.schema.has_column(column):
                    continue
                if _mentions_alias(other, right_alias):
                    continue
                if column == right.primary_key_column \
                        or right.index_on(column) is not None:
                    return other, column
    return None


def _mentions_alias(expr: Expression, alias: str) -> bool:
    if isinstance(expr, ColumnRef):
        return expr.table == alias
    if isinstance(expr, BinaryOp):
        return _mentions_alias(expr.left, alias) \
            or _mentions_alias(expr.right, alias)
    if isinstance(expr, FunctionCall):
        return any(_mentions_alias(a, alias) for a in expr.args)
    return False


def _lookup_by_column(table: Table, column: str, value: Any) -> list:
    if column == table.primary_key_column:
        return [value] if value in table.rows else []
    index = table.index_on(column)
    if index is not None and len(index.columns) == 1:
        return list(index.lookup((value,)))
    return list(table.rows)


def _freeze(value: Any):
    """Hashable form of a group key component."""
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _contains_aggregate(expr: Expression) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.is_aggregate:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return _contains_aggregate(expr.left) \
            or _contains_aggregate(expr.right)
    return False

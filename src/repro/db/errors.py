"""Database error hierarchy."""

from __future__ import annotations

__all__ = ["DatabaseError", "SchemaError", "TableNotFoundError",
           "DuplicateKeyError", "ConstraintError", "TransactionError"]


class DatabaseError(Exception):
    """Base class for all storage-engine errors."""


class SchemaError(DatabaseError):
    """Invalid schema definition or DDL misuse."""


class TableNotFoundError(DatabaseError):
    """Referenced table does not exist."""


class DuplicateKeyError(DatabaseError):
    """Primary-key or unique-index violation."""


class ConstraintError(DatabaseError):
    """NOT NULL or type constraint violation."""


class TransactionError(DatabaseError):
    """Invalid transaction-control sequence."""

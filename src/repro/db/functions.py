"""Scalar SQL functions.

The registry is built per server because time functions must read the
*instance's local clock* — that is the heart of the paper's replication
delay measurement: the master inserts ``USEC_NOW()`` into the heartbeat
table, the statement replicates as text and each slave re-evaluates
``USEC_NOW()`` against its own (drifting, NTP-disciplined) clock.

``NOW()`` truncates to whole seconds, mirroring MySQL's one-second
resolution that the paper found unacceptable; ``USEC_NOW()`` is the
microsecond-resolution user-defined function the authors built as a
workaround for MySQL bug #8523.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping, Optional

__all__ = ["standard_functions"]


def standard_functions(wall_clock: Callable[[], float],
                       rand: Optional[Callable[[], float]] = None
                       ) -> Mapping[str, Callable]:
    """Build the scalar-function registry for one server.

    ``wall_clock`` returns the server's local wall-clock time in
    seconds; ``rand`` (optional) returns uniform [0, 1) floats.
    """

    def sql_now() -> float:
        # MySQL's native time functions have one-second resolution.
        return float(math.floor(wall_clock()))

    def sql_usec_now() -> float:
        # The paper's UDF: microsecond resolution.
        return round(wall_clock(), 6)

    def sql_unix_timestamp(value: Optional[float] = None) -> int:
        return int(math.floor(wall_clock() if value is None else value))

    def sql_concat(*args: Any) -> Optional[str]:
        if any(a is None for a in args):
            return None
        return "".join(str(a) for a in args)

    def sql_substring(value: Optional[str], start: int,
                      length: Optional[int] = None) -> Optional[str]:
        if value is None:
            return None
        begin = max(start - 1, 0)  # SQL is 1-based
        if length is None:
            return value[begin:]
        return value[begin:begin + length]

    def sql_coalesce(*args: Any) -> Any:
        for arg in args:
            if arg is not None:
                return arg
        return None

    def sql_ifnull(value: Any, fallback: Any) -> Any:
        return fallback if value is None else value

    def sql_rand() -> float:
        if rand is None:
            raise ValueError("RAND() requires a seeded generator; "
                             "this server was built without one")
        return rand()

    def nullsafe(fn: Callable) -> Callable:
        def wrapped(value, *rest):
            if value is None:
                return None
            return fn(value, *rest)
        return wrapped

    return {
        "NOW": sql_now,
        "CURRENT_TIMESTAMP": sql_now,
        "USEC_NOW": sql_usec_now,
        "UNIX_TIMESTAMP": sql_unix_timestamp,
        "LOWER": nullsafe(lambda v: str(v).lower()),
        "UPPER": nullsafe(lambda v: str(v).upper()),
        "LENGTH": nullsafe(lambda v: len(str(v))),
        "ABS": nullsafe(abs),
        "ROUND": nullsafe(lambda v, digits=0: round(v, int(digits))),
        "FLOOR": nullsafe(lambda v: math.floor(v)),
        "CEILING": nullsafe(lambda v: math.ceil(v)),
        "MOD": nullsafe(lambda a, b: None if b == 0 else a % b),
        "CONCAT": sql_concat,
        "SUBSTRING": sql_substring,
        "COALESCE": sql_coalesce,
        "IFNULL": sql_ifnull,
        "RAND": sql_rand,
    }

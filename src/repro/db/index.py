"""Secondary indexes.

An index maps a key tuple (one or more column values) to the set of
primary keys whose rows carry that key, and keeps keys in sorted order
for range scans.  ``None`` keys are indexed (MySQL indexes NULLs too)
but excluded from range scans.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Optional

from .errors import DuplicateKeyError

__all__ = ["Index"]


class Index:
    """An ordered secondary index over one or more columns."""

    def __init__(self, name: str, columns: tuple[str, ...],
                 unique: bool = False):
        self.name = name
        self.columns = columns
        self.unique = unique
        self._buckets: dict[tuple, set] = {}
        self._sorted_keys: list[tuple] = []

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def key_of(self, row: dict[str, Any]) -> tuple:
        return tuple(row[c] for c in self.columns)

    # -- maintenance ---------------------------------------------------------
    def add(self, row: dict[str, Any], pk: Any) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = set()
            self._buckets[key] = bucket
            if not _has_none(key):
                bisect.insort(self._sorted_keys, key)
        elif self.unique and bucket:
            raise DuplicateKeyError(
                f"duplicate entry {key!r} for unique index {self.name!r}")
        bucket.add(pk)

    def remove(self, row: dict[str, Any], pk: Any) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None or pk not in bucket:
            raise KeyError(f"pk {pk!r} not present under key {key!r} "
                           f"in index {self.name!r}")
        bucket.discard(pk)
        if not bucket:
            del self._buckets[key]
            if not _has_none(key):
                position = bisect.bisect_left(self._sorted_keys, key)
                if position < len(self._sorted_keys) \
                        and self._sorted_keys[position] == key:
                    self._sorted_keys.pop(position)

    def rebuild(self, rows: Iterable[tuple[Any, dict[str, Any]]]) -> None:
        """Rebuild from scratch from ``(pk, row)`` pairs."""
        self._buckets.clear()
        self._sorted_keys = []
        for pk, row in rows:
            self.add(row, pk)

    # -- lookups ---------------------------------------------------------------
    def lookup(self, key: tuple) -> frozenset:
        """Primary keys whose rows match ``key`` exactly."""
        return frozenset(self._buckets.get(key, ()))

    def range_scan(self, low: Optional[tuple] = None,
                   high: Optional[tuple] = None,
                   include_low: bool = True,
                   include_high: bool = True) -> Iterator[Any]:
        """Primary keys with keys in [low, high], in key order."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._sorted_keys, low)
        else:
            start = bisect.bisect_right(self._sorted_keys, low)
        if high is None:
            stop = len(self._sorted_keys)
        elif include_high:
            stop = bisect.bisect_right(self._sorted_keys, high)
        else:
            stop = bisect.bisect_left(self._sorted_keys, high)
        for position in range(start, stop):
            # Buckets are sets; yield them sorted so the scan order is
            # a pure function of the data, not of hash/insertion order.
            yield from sorted(self._buckets[self._sorted_keys[position]])

    def keys_in_order(self) -> list[tuple]:
        return list(self._sorted_keys)


def _has_none(key: tuple) -> bool:
    return any(part is None for part in key)

"""Row-based replication events.

MySQL's alternative to statement-based replication ships *row images*
instead of SQL text: the master logs exactly which rows changed; the
slave applies them without re-executing (or even parsing) the original
statement.  Consequences this reproduction models:

* apply is cheaper (no parse/plan) but events are larger on the wire;
* non-deterministic functions are evaluated **once, on the master** —
  which makes replicas byte-identical, and *breaks* the paper's
  heartbeat methodology (the slave would commit the master's
  timestamp, not its own local clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .errors import DatabaseError

__all__ = ["RowOp", "apply_row_ops", "row_ops_size_bytes"]


@dataclass(frozen=True, slots=True)
class RowOp:
    """One replicated row mutation.

    ``kind`` is ``insert`` (install ``row``), ``update`` (replace the
    row at ``pk`` with ``row``, which may carry a new primary key) or
    ``delete`` (remove the row at ``pk``).
    """

    kind: str
    table: str          # qualified name
    pk: Any             # pre-image primary key (insert: the new pk)
    row: Optional[dict] = None

    def __post_init__(self):
        if self.kind not in ("insert", "update", "delete"):
            raise DatabaseError(f"unknown row-op kind {self.kind!r}")
        if self.kind in ("insert", "update") and self.row is None:
            raise DatabaseError(f"{self.kind} row-op requires a row image")


def apply_row_ops(engine, ops: tuple) -> int:
    """Apply a batch of row ops to ``engine``; returns rows affected."""
    for op in ops:
        table = engine.tables.get(op.table)
        if table is None:
            raise DatabaseError(f"row event references missing table "
                                f"{op.table!r}")
        if op.kind == "insert":
            table.insert(dict(op.row))
        elif op.kind == "update":
            table.delete(op.pk)
            new_pk = op.row[table.primary_key_column]
            table.restore(new_pk, dict(op.row))
        else:
            table.delete(op.pk)
    return len(ops)


def row_ops_size_bytes(ops: tuple) -> int:
    """Approximate wire size of a row-event batch."""
    total = 0
    for op in ops:
        total += 40 + len(op.table)
        if op.row is not None:
            total += sum(len(str(k)) + len(str(v))
                         for k, v in op.row.items())
    return total

"""Table schemas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..sql.ast import ColumnDef
from .errors import ConstraintError, SchemaError
from .types import SqlType, resolve_type

__all__ = ["Column", "TableSchema", "schema_from_ast"]


@dataclass(frozen=True)
class Column:
    """One column of a table schema."""

    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False
    auto_increment: bool = False
    default: Any = None
    has_default: bool = False


@dataclass
class TableSchema:
    """An ordered set of columns with exactly one primary key."""

    name: str
    columns: list[Column]
    _by_name: dict[str, Column] = field(init=False, repr=False)

    def __post_init__(self):
        self._by_name = {}
        pk_count = 0
        for column in self.columns:
            if column.name in self._by_name:
                raise SchemaError(f"duplicate column {column.name!r} "
                                  f"in table {self.name!r}")
            self._by_name[column.name] = column
            if column.primary_key:
                pk_count += 1
                if column.auto_increment \
                        and column.sql_type.python_type is not int:
                    raise SchemaError("AUTO_INCREMENT requires an integer "
                                      "primary key")
        if pk_count != 1:
            raise SchemaError(f"table {self.name!r} must have exactly one "
                              f"primary-key column, found {pk_count}")

    @property
    def primary_key(self) -> Column:
        for column in self.columns:
            if column.primary_key:
                return column
        raise SchemaError("unreachable: schema has no primary key")

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table "
                              f"{self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def coerce_row(self, values: dict[str, Any],
                   auto_increment_value: Optional[int] = None
                   ) -> dict[str, Any]:
        """Build a full storage row from partial ``values``.

        Missing columns take their default (or the auto-increment
        value for the PK).  NOT NULL violations raise ConstraintError.
        """
        row: dict[str, Any] = {}
        for column in self.columns:
            if column.name in values:
                value = column.sql_type.coerce(values[column.name],
                                               column.name)
            elif column.auto_increment:
                value = auto_increment_value
            elif column.has_default:
                value = column.sql_type.coerce(column.default, column.name)
            else:
                value = None
            if value is None and not column.nullable \
                    and not column.auto_increment:
                raise ConstraintError(
                    f"column {column.name!r} of table {self.name!r} "
                    f"cannot be NULL")
            row[column.name] = value
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown column(s) {sorted(unknown)!r} "
                              f"for table {self.name!r}")
        return row


def schema_from_ast(table: str, defs: tuple[ColumnDef, ...]) -> TableSchema:
    """Build a TableSchema from parsed CREATE TABLE column definitions."""
    columns = []
    for definition in defs:
        sql_type = resolve_type(definition.type_name, definition.type_arg)
        has_default = definition.default is not None
        columns.append(Column(
            name=definition.name,
            sql_type=sql_type,
            nullable=definition.nullable and not definition.primary_key,
            primary_key=definition.primary_key,
            auto_increment=definition.auto_increment,
            default=definition.default.value if has_default else None,
            has_default=has_default,
        ))
    return TableSchema(table, columns)

"""In-memory tables with primary-key storage and secondary indexes."""

from __future__ import annotations

from typing import Any, Iterator, Optional

from .errors import DuplicateKeyError, SchemaError
from .index import Index
from .schema import TableSchema

__all__ = ["Table"]


class Table:
    """Row storage keyed on the primary key, plus secondary indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: dict[Any, dict[str, Any]] = {}
        self.indexes: dict[str, Index] = {}
        self._next_auto_increment = 1

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def primary_key_column(self) -> str:
        return self.schema.primary_key.name

    # -- indexes ---------------------------------------------------------------
    def create_index(self, name: str, columns: tuple[str, ...],
                     unique: bool = False) -> Index:
        if name in self.indexes:
            raise SchemaError(f"index {name!r} already exists on "
                              f"table {self.name!r}")
        for column in columns:
            self.schema.column(column)  # validates existence
        index = Index(name, columns, unique)
        index.rebuild(self.rows.items())
        self.indexes[name] = index
        return index

    def index_on(self, column: str) -> Optional[Index]:
        """Any index whose leading column is ``column``."""
        for index in self.indexes.values():
            if index.columns[0] == column:
                return index
        return None

    # -- mutations ---------------------------------------------------------------
    def insert(self, values: dict[str, Any]) -> Any:
        """Insert a row from partial column values; returns the pk."""
        pk_column = self.primary_key_column
        auto_value = None
        if self.schema.primary_key.auto_increment \
                and pk_column not in values:
            auto_value = self._next_auto_increment
        row = self.schema.coerce_row(values, auto_increment_value=auto_value)
        pk = row[pk_column]
        if pk is None:
            raise SchemaError(f"primary key {pk_column!r} cannot be NULL")
        if pk in self.rows:
            raise DuplicateKeyError(
                f"duplicate primary key {pk!r} in table {self.name!r}")
        # Maintain auto-increment high-water mark (MySQL semantics).
        if isinstance(pk, int) and pk >= self._next_auto_increment:
            self._next_auto_increment = pk + 1
        for index in self.indexes.values():
            index.add(row, pk)  # may raise DuplicateKeyError for unique
        self.rows[pk] = row
        return pk

    def update(self, pk: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply ``changes`` to the row at ``pk``; returns the OLD row."""
        row = self.rows[pk]
        old_row = dict(row)
        new_row = dict(row)
        for column, value in changes.items():
            col = self.schema.column(column)
            new_row[column] = col.sql_type.coerce(value, column)
            if new_row[column] is None and not col.nullable:
                raise SchemaError(f"column {column!r} cannot be NULL")
        new_pk = new_row[self.primary_key_column]
        if new_pk != pk:
            if new_pk in self.rows:
                raise DuplicateKeyError(
                    f"duplicate primary key {new_pk!r} in {self.name!r}")
            del self.rows[pk]
            self.rows[new_pk] = new_row
        else:
            self.rows[pk] = new_row
        for index in self.indexes.values():
            index.remove(old_row, pk)
            index.add(new_row, new_pk)
        return old_row

    def delete(self, pk: Any) -> dict[str, Any]:
        """Remove the row at ``pk``; returns it."""
        row = self.rows.pop(pk)
        for index in self.indexes.values():
            index.remove(row, pk)
        return row

    def restore(self, pk: Any, row: dict[str, Any]) -> None:
        """Undo helper: put a previously deleted row back verbatim."""
        if pk in self.rows:
            raise DuplicateKeyError(f"pk {pk!r} already present")
        self.rows[pk] = dict(row)
        for index in self.indexes.values():
            index.add(row, pk)

    # -- reads ------------------------------------------------------------------
    def get(self, pk: Any) -> Optional[dict[str, Any]]:
        return self.rows.get(pk)

    def scan(self) -> Iterator[tuple[Any, dict[str, Any]]]:
        """All (pk, row) pairs in insertion order."""
        yield from self.rows.items()

    def checksum_state(self) -> tuple:
        """A canonical, comparable snapshot of table contents.

        Used by tests and by the replication manager's consistency
        checker to verify that replicas converge to identical state.
        """
        pk_column = self.primary_key_column
        ordered = sorted(self.rows, key=lambda k: (str(type(k)), str(k)))
        return tuple(
            (pk, tuple(sorted(self.rows[pk].items())))
            for pk in ordered)

"""Transaction state: undo log and buffered binlog statements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["UndoRecord", "Transaction"]


@dataclass(frozen=True, slots=True)
class UndoRecord:
    """Enough information to reverse one row mutation.

    ``kind`` is ``insert`` (undo = delete pk), ``update`` (undo =
    restore old row) or ``delete`` (undo = re-insert old row).
    """

    kind: str
    table: str
    pk: Any
    old_row: Optional[dict] = None


@dataclass(slots=True)
class Transaction:
    """An open transaction on one engine session."""

    undo: list[UndoRecord] = field(default_factory=list)
    #: (statement_text, database) pairs, binlogged on commit.
    binlog_statements: list[tuple[str, str]] = field(default_factory=list)

    def record(self, record: UndoRecord) -> None:
        self.undo.append(record)

    def record_statement(self, text: str, database: str) -> None:
        self.binlog_statements.append((text, database))

"""SQL value types and coercion rules.

Timestamps are stored as ``float`` seconds since the simulation epoch.
The distinction the paper cares about — MySQL's built-in second
resolution vs. the microsecond-resolution UDF of bug #8523 — lives in
the function registry (``NOW()`` truncates, ``USEC_NOW()`` does not),
not in the storage type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .errors import ConstraintError, SchemaError

__all__ = ["SqlType", "resolve_type"]


@dataclass(frozen=True)
class SqlType:
    """A storage type with validation/coercion."""

    name: str
    python_type: type
    max_length: Optional[int] = None

    def coerce(self, value: Any, column: str) -> Any:
        """Coerce ``value`` for storage; raise ConstraintError if invalid."""
        if value is None:
            return None
        if self.python_type is int:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise ConstraintError(
                f"column {column!r} expects an integer, got {value!r}")
        if self.python_type is float:
            if isinstance(value, bool):
                raise ConstraintError(
                    f"column {column!r} expects a number, got {value!r}")
            if isinstance(value, (int, float)):
                return float(value)
            raise ConstraintError(
                f"column {column!r} expects a number, got {value!r}")
        if self.python_type is str:
            if not isinstance(value, str):
                value = str(value)
            if self.max_length is not None and len(value) > self.max_length:
                raise ConstraintError(
                    f"value too long for column {column!r} "
                    f"({len(value)} > {self.max_length})")
            return value
        if self.python_type is bool:
            if isinstance(value, bool):
                return value
            if isinstance(value, int):
                return bool(value)
            raise ConstraintError(
                f"column {column!r} expects a boolean, got {value!r}")
        raise SchemaError(f"unhandled storage type {self.name!r}")


_TYPES = {
    "INTEGER": SqlType("INTEGER", int),
    "INT": SqlType("INTEGER", int),
    "BIGINT": SqlType("BIGINT", int),
    "FLOAT": SqlType("FLOAT", float),
    "DOUBLE": SqlType("DOUBLE", float),
    "TEXT": SqlType("TEXT", str),
    "TIMESTAMP": SqlType("TIMESTAMP", float),
    "DATETIME": SqlType("DATETIME", float),
    "BOOLEAN": SqlType("BOOLEAN", bool),
}


def resolve_type(type_name: str, type_arg: Optional[int] = None) -> SqlType:
    """Resolve a type keyword (plus optional length) to a SqlType."""
    upper = type_name.upper()
    if upper == "VARCHAR":
        if type_arg is None:
            raise SchemaError("VARCHAR requires a length")
        return SqlType("VARCHAR", str, max_length=type_arg)
    base = _TYPES.get(upper)
    if base is None:
        raise SchemaError(f"unknown type {type_name!r}")
    return base

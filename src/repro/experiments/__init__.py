"""Experiment harness: configs, runner, sweeps, figure generators."""

from .config import (ExperimentConfig, LocationConfig, PAPER_50_50,
                     PAPER_80_20)
from .figures import (LOCATIONS, ScaleProfile, bench_scale,
                      render_delay_table, render_fig4,
                      render_instance_variation, render_rtt_table,
                      render_saturation_schedule, render_throughput_table,
                      run_fig4_clock_sync, run_instance_variation,
                      run_rtt_characterization, run_throughput_delay_grid)
from .runner import ExperimentResult, run_experiment
from .sweeps import (SweepResult, USERS_50_50, USERS_80_20, max_throughput,
                     run_grid, run_user_sweep, saturation_point)

__all__ = [
    "ExperimentConfig",
    "LocationConfig",
    "PAPER_50_50",
    "PAPER_80_20",
    "ExperimentResult",
    "run_experiment",
    "SweepResult",
    "run_user_sweep",
    "run_grid",
    "saturation_point",
    "max_throughput",
    "USERS_50_50",
    "USERS_80_20",
    "ScaleProfile",
    "bench_scale",
    "LOCATIONS",
    "run_throughput_delay_grid",
    "render_throughput_table",
    "render_delay_table",
    "render_saturation_schedule",
    "run_fig4_clock_sync",
    "render_fig4",
    "run_rtt_characterization",
    "render_rtt_table",
    "run_instance_variation",
    "render_instance_variation",
]

"""Experiment configuration.

An experiment *cell* is one run: a location configuration, a read/write
ratio, a number of slaves and a number of concurrent users — the axes
of the paper's Figs. 2, 3, 5 and 6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..cloud.regions import DEFAULT_CATALOG, MASTER_PLACEMENT, Placement
from ..workloads.cloudstone import MIX_50_50, MIX_80_20, OperationMix, Phases

__all__ = ["LocationConfig", "ExperimentConfig", "PAPER_50_50",
           "PAPER_80_20"]


class LocationConfig(enum.Enum):
    """Where the slaves live relative to the master (§III-A).

    The master (and the load generator) always run in the master's
    zone; the three configurations match the paper's: same zone, a
    different zone of the same region, or a different region.
    """

    SAME_ZONE = "same_zone"
    DIFFERENT_ZONE = "different_zone"
    DIFFERENT_REGION = "different_region"

    def slave_placement(self, master: Placement = MASTER_PLACEMENT
                        ) -> Placement:
        if self is LocationConfig.SAME_ZONE:
            return master
        if self is LocationConfig.DIFFERENT_ZONE:
            region = DEFAULT_CATALOG.region(master.region)
            for zone in region.zones:
                if zone != master.zone:
                    return Placement(master.region, zone)
            raise ValueError(f"region {master.region} has a single zone")
        return DEFAULT_CATALOG.placement("eu-west-1a")


@dataclass(frozen=True)
class ExperimentConfig:
    """One cell of the paper's sweep."""

    location: LocationConfig
    mix: OperationMix
    n_slaves: int
    n_users: int
    data_size: int
    phases: Phases
    seed: int = 0
    think_time_mean: float = 7.0
    heartbeat_interval: float = 1.0
    pool_size: Optional[int] = None     # default: one per user
    ntp_period: Optional[float] = 1.0
    #: Seconds of idle (no workload) heartbeat collection used as the
    #: relative-delay baseline, run before the workload starts.
    baseline_duration: float = 60.0
    #: Pin the master to validated nominal hardware (the paper's §IV-A
    #: advice); slaves always keep the physical-host lottery, which is
    #: what produced the paper's Fig. 2b/2c anomaly.
    validated_master: bool = True

    def __post_init__(self):
        if self.n_slaves < 0:
            raise ValueError("n_slaves must be >= 0")
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        if self.data_size < 1:
            raise ValueError("data_size must be >= 1")

    @property
    def label(self) -> str:
        return (f"{self.location.value}/{self.mix.name} "
                f"slaves={self.n_slaves} users={self.n_users}")


def PAPER_50_50(location: LocationConfig, n_slaves: int, n_users: int,
                phases: Phases, seed: int = 0,
                **overrides) -> ExperimentConfig:
    """A cell of the 50/50 sweep (Figs. 2 and 5): data size 300."""
    overrides.setdefault("data_size", 300)
    return ExperimentConfig(location=location, mix=MIX_50_50,
                            n_slaves=n_slaves, n_users=n_users,
                            phases=phases, seed=seed, **overrides)


def PAPER_80_20(location: LocationConfig, n_slaves: int, n_users: int,
                phases: Phases, seed: int = 0,
                **overrides) -> ExperimentConfig:
    """A cell of the 80/20 sweep (Figs. 3 and 6): data size 600."""
    overrides.setdefault("data_size", 600)
    return ExperimentConfig(location=location, mix=MIX_80_20,
                            n_slaves=n_slaves, n_users=n_users,
                            phases=phases, seed=seed, **overrides)

"""Regenerate every figure of the paper's evaluation section.

The paper has five result figures (plus an in-text RTT table, the
saturation narrative and the instance-variation observation):

* **Fig. 2** — end-to-end throughput, 50/50 ratio, data size 300,
  1-4 slaves, 50-200 users, three placements;
* **Fig. 3** — throughput, 80/20 ratio, data size 600, 1-11 slaves,
  50-450 users, three placements;
* **Fig. 4** — clock difference of two instances over 20 minutes,
  NTP once vs. every second;
* **Fig. 5** — average relative replication delay for the Fig. 2 sweep;
* **Fig. 6** — average relative replication delay for the Fig. 3 sweep.

Figs. 2+5 (and 3+6) come from the *same* runs, so the grid is executed
once and rendered twice.  ``ScaleProfile`` shrinks run durations and
grid density so the benches finish in minutes; ``full`` reproduces the
paper's exact grid and 35-minute runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..cloud.clock import LocalClock
from ..cloud.instance import SMALL, draw_instance_hardware
from ..cloud.network import Network, PAPER_LATENCY
from ..cloud.ntp import NtpDaemon
from ..cloud.regions import MASTER_PLACEMENT
from ..metrics import summarize
from ..obs.analyze import detect_knee
from ..sim import RandomStreams, Simulator
from ..workloads.cloudstone import Phases
from .config import LocationConfig, PAPER_50_50, PAPER_80_20
from .sweeps import (SweepResult, USERS_50_50, USERS_80_20, max_throughput,
                     run_grid, saturation_point)

__all__ = ["ScaleProfile", "bench_scale", "run_throughput_delay_grid",
           "render_throughput_table", "render_delay_table",
           "run_fig4_clock_sync", "render_fig4",
           "run_rtt_characterization", "render_rtt_table",
           "run_instance_variation", "render_instance_variation",
           "render_saturation_schedule", "LOCATIONS"]

LOCATIONS = (LocationConfig.SAME_ZONE, LocationConfig.DIFFERENT_ZONE,
             LocationConfig.DIFFERENT_REGION)


@dataclass(frozen=True)
class ScaleProfile:
    """How much of the paper's grid a bench run covers."""

    name: str
    time_factor: float           # applied to the 35-minute phases
    baseline_duration: float
    slaves_50_50: tuple[int, ...]
    users_50_50: tuple[int, ...]
    slaves_80_20: tuple[int, ...]
    users_80_20: tuple[int, ...]

    @property
    def phases(self) -> Phases:
        return Phases().scaled(self.time_factor)


_PROFILES = {
    "quick": ScaleProfile(
        "quick", time_factor=0.05, baseline_duration=20.0,
        slaves_50_50=(1, 2, 4), users_50_50=(50, 100, 150, 200),
        slaves_80_20=(1, 4, 11), users_80_20=(100, 250, 450)),
    "standard": ScaleProfile(
        "standard", time_factor=0.1, baseline_duration=30.0,
        slaves_50_50=(1, 2, 3, 4), users_50_50=(50, 100, 150, 175, 200),
        slaves_80_20=(1, 2, 4, 6, 8, 10, 11),
        users_80_20=(50, 150, 250, 350, 450)),
    "full": ScaleProfile(
        "full", time_factor=1.0, baseline_duration=60.0,
        slaves_50_50=(1, 2, 3, 4), users_50_50=USERS_50_50,
        slaves_80_20=tuple(range(1, 12)), users_80_20=USERS_80_20),
}


def bench_scale() -> ScaleProfile:
    """Profile selected by the ``REPRO_SCALE`` environment variable
    (``quick`` default; ``standard``; ``full`` = the paper's grid)."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(f"REPRO_SCALE must be one of "
                         f"{sorted(_PROFILES)}, got {name!r}") from None


# ------------------------------------------------------- Figs 2/3 + 5/6
def run_throughput_delay_grid(ratio: str, location: LocationConfig,
                              profile: ScaleProfile,
                              seed: int = 0) -> list[SweepResult]:
    """Run one sub-figure's grid (``ratio`` is '50/50' or '80/20').

    The same runs feed the throughput figure (2 or 3) and the delay
    figure (5 or 6).
    """
    if ratio == "50/50":
        factory, slaves, users = (PAPER_50_50, profile.slaves_50_50,
                                  profile.users_50_50)
    elif ratio == "80/20":
        factory, slaves, users = (PAPER_80_20, profile.slaves_80_20,
                                  profile.users_80_20)
    else:
        raise ValueError(f"ratio must be '50/50' or '80/20', got {ratio!r}")
    return run_grid(factory, location, slaves, users, profile.phases,
                    seed=seed, baseline_duration=profile.baseline_duration)


def render_throughput_table(grids: list[SweepResult], title: str) -> str:
    """Fig. 2/3-style table: rows = user counts, one column per slave
    count, cells = end-to-end throughput (operations per second)."""
    return _render_metric_table(
        grids, title, lambda result: f"{result.throughput:8.1f}")


def render_delay_table(grids: list[SweepResult], title: str) -> str:
    """Fig. 5/6-style table: average relative replication delay (ms).

    The paper plots these on a log axis spanning 10^0..10^6 ms.
    """
    def cell(result):
        delay = result.relative_delay_ms
        if delay is None:
            return "     n/a"
        return f"{max(delay, 0.01):8.1f}"
    return _render_metric_table(grids, title, cell)


def _render_metric_table(grids, title, cell) -> str:
    users = grids[0].users
    lines = [title]
    header = "users  " + " ".join(f"{g.n_slaves:3d}-slave" for g in grids)
    lines.append(header)
    for row_index, n_users in enumerate(users):
        cells = " ".join(cell(g.results[row_index]) for g in grids)
        lines.append(f"{n_users:5d}  {cells}")
    return "\n".join(lines)


def render_saturation_schedule(grids: list[SweepResult]) -> str:
    """The §IV-A narrative: per slave count, the observed maximum
    throughput, the saturation point, the fitted knee (linear limit +
    capacity intersection, see :mod:`repro.obs.analyze.knee`), and
    which tier saturated there."""
    lines = ["slaves  max-tput@users  saturation-point  linear-limit  "
             "knee-users  saturated  bottleneck"]
    for sweep in grids:
        best_users, best_tput = max_throughput(sweep)
        saturation = saturation_point(sweep)
        best = max(sweep.results, key=lambda r: r.throughput)
        knee = detect_knee(sweep.users, sweep.throughputs)
        knee_text = (f"{knee.knee_users:10.1f}" if knee.knee_users
                     is not None else "       n/a")
        lines.append(f"{sweep.n_slaves:6d}  {best_tput:8.1f}@{best_users:<5d}"
                     f"  {str(saturation):>16s}  "
                     f"{knee.linear_limit_users:12d}  {knee_text}  "
                     f"{best.saturated_resource:>9s}  "
                     f"{best.bottleneck:>10s}")
    return "\n".join(lines)


# ------------------------------------------------------------------ Fig 4
def run_fig4_clock_sync(duration: float = 1200.0,
                        sample_period: float = 10.0,
                        seed: int = 0) -> dict[str, list[float]]:
    """Reproduce Fig. 4: |clock difference| (ms) of two instances over
    20 minutes, under the paper's two NTP policies.

    The pair is pinned to the paper's observed anecdote: ~7 ms initial
    difference and ~36 ppm relative drift (7 -> 50 ms over 20 min).
    """
    series: dict[str, list[float]] = {}
    for policy, period in (("sync_once", None), ("sync_every_second", 1.0)):
        sim = Simulator()
        streams = RandomStreams(seed)
        clock_a = LocalClock(sim, offset=0.004, drift_rate=18e-6)
        clock_b = LocalClock(sim, offset=-0.003, drift_rate=-18e-6)
        if period is not None:
            NtpDaemon(sim, clock_a, streams, period=period,
                      stream_name="ntp.a")
            NtpDaemon(sim, clock_b, streams, period=period,
                      stream_name="ntp.b")
        samples: list[float] = []

        def sampler(sim, samples=samples):
            while True:
                yield sim.timeout(sample_period)
                samples.append(abs(clock_a.difference(clock_b)) * 1000.0)

        sim.process(sampler(sim))
        sim.run(until=duration)
        series[policy] = samples
    return series


def render_fig4(series: dict[str, list[float]]) -> str:
    """Fig. 4 as summary rows (paper: sync-once median 28.23 ms,
    σ 12.31; every-second median 3.30 ms, σ 1.19)."""
    lines = ["policy              first_ms  last_ms  median_ms  std_ms"]
    for policy, samples in series.items():
        stats = summarize(samples)
        lines.append(f"{policy:18s} {samples[0]:9.2f} {samples[-1]:8.2f} "
                     f"{stats.median:10.2f} {stats.std:7.2f}")
    return "\n".join(lines)


# ------------------------------------------------------------- RTT table
def run_rtt_characterization(probes: int = 1200,
                             seed: int = 0) -> dict[str, float]:
    """§IV-B.2: median 1/2 round-trip (ms) per location configuration
    (paper: 16 / 21 / 173 ms), ping once a second for 20 minutes."""
    sim = Simulator()
    network = Network(sim, RandomStreams(seed), PAPER_LATENCY)
    half_rtts: dict[str, float] = {}
    for location in LOCATIONS:
        destination = location.slave_placement()
        if location is LocationConfig.SAME_ZONE:
            # ping between two distinct hosts in the master's zone
            samples = [
                2 * network.streams.lognormal_around(
                    "rtt.same_zone", PAPER_LATENCY.same_zone_ms,
                    PAPER_LATENCY.jitter_sigma)
                for _ in range(probes)]
        else:
            samples = [network.ping(MASTER_PLACEMENT, destination)
                       for _ in range(probes)]
        half_rtts[location.value] = float(np.median(samples)) / 2.0
    return half_rtts


def render_rtt_table(half_rtts: dict[str, float]) -> str:
    lines = ["location           half-RTT-ms  (paper)"]
    paper = {"same_zone": 16.0, "different_zone": 21.0,
             "different_region": 173.0}
    for location, measured in half_rtts.items():
        lines.append(f"{location:18s} {measured:11.1f}  "
                     f"({paper[location]:.0f})")
    return "\n".join(lines)


# ------------------------------------------- instance performance variation
def run_instance_variation(launches: int = 2000,
                           seed: int = 0) -> dict[str, float]:
    """§IV-A: the coefficient of variation of small-instance CPU
    performance (Schad et al. report ~21 %)."""
    streams = RandomStreams(seed)
    speeds = []
    models: dict[str, int] = {}
    for _ in range(launches):
        model, noise = draw_instance_hardware(streams, SMALL)
        speeds.append(model.speed_factor * noise)
        models[model.name] = models.get(model.name, 0) + 1
    arr = np.asarray(speeds)
    return {
        "cov": float(arr.std() / arr.mean()),
        "mean_speed": float(arr.mean()),
        "launches": float(launches),
        "distinct_models": float(len(models)),
    }


def render_instance_variation(stats: dict[str, float]) -> str:
    return (f"small-instance CPU lottery over {int(stats['launches'])} "
            f"launches: CoV = {stats['cov'] * 100:.1f}% "
            f"(paper cites ~21%), mean relative speed "
            f"{stats['mean_speed']:.2f}, "
            f"{int(stats['distinct_models'])} physical CPU models")

"""Markdown report generation.

Turns sweep grids and the standalone characterizations into a single
Markdown document in the spirit of ``EXPERIMENTS.md`` — handy for
comparing a fresh run (different seed, scale, or cost-model tweak)
against the committed reference numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics import summarize
from ..obs.analyze import detect_knee
from .sweeps import SweepResult, max_throughput, saturation_point

__all__ = ["MarkdownReport", "grid_section", "fig4_section",
           "rtt_section"]


@dataclass
class MarkdownReport:
    """An accumulating Markdown document."""

    title: str
    _chunks: list[str] = field(default_factory=list)

    def add_heading(self, text: str, level: int = 2) -> None:
        self._chunks.append(f"{'#' * level} {text}")

    def add_paragraph(self, text: str) -> None:
        self._chunks.append(text)

    def add_table(self, headers: list[str], rows: list[list[str]]) -> None:
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "|".join("---" for _ in headers) + "|"]
        for row in rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        self._chunks.append("\n".join(lines))

    def render(self) -> str:
        return f"# {self.title}\n\n" + "\n\n".join(self._chunks) + "\n"

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())


def grid_section(report: MarkdownReport, grids: list[SweepResult],
                 title: str) -> None:
    """One sub-figure: throughput table, delay table, saturation rows."""
    report.add_heading(title)
    users = grids[0].users
    headers = ["users"] + [f"{g.n_slaves}-slave" for g in grids]

    throughput_rows = [
        [str(n)] + [f"{g.results[i].throughput:.1f}" for g in grids]
        for i, n in enumerate(users)]
    report.add_paragraph("**End-to-end throughput (operations/second)**")
    report.add_table(headers, throughput_rows)

    delay_rows = [
        [str(n)] + [_delay_cell(g.results[i]) for g in grids]
        for i, n in enumerate(users)]
    report.add_paragraph("**Average relative replication delay (ms)**")
    report.add_table(headers, delay_rows)

    saturation_rows = []
    for sweep in grids:
        best_users, best_tput = max_throughput(sweep)
        saturation = saturation_point(sweep)
        knee = detect_knee(sweep.users, sweep.throughputs)
        heaviest = sweep.results[-1]
        saturation_rows.append([
            str(sweep.n_slaves),
            f"{best_tput:.1f} @ {best_users}",
            str(saturation) if saturation is not None
            else "still rising",
            str(knee.linear_limit_users),
            f"{knee.knee_users:.1f}" if knee.knee_users is not None
            else "n/a",
            heaviest.saturated_resource,
            heaviest.bottleneck,
        ])
    report.add_paragraph("**Saturation**")
    report.add_table(["slaves", "max tput @ users", "saturation point",
                      "linear limit", "knee (users)",
                      "saturated resource", "bottleneck"],
                     saturation_rows)


def _delay_cell(result) -> str:
    if result.relative_delay_ms is None:
        return "n/a"
    return f"{max(result.relative_delay_ms, 0.01):.1f}"


def fig4_section(report: MarkdownReport,
                 series: dict[str, list[float]]) -> None:
    report.add_heading("Clock synchronization (Fig. 4)")
    rows = []
    for policy, samples in series.items():
        stats = summarize(samples)
        rows.append([policy, f"{samples[0]:.2f}", f"{samples[-1]:.2f}",
                     f"{stats.median:.2f}", f"{stats.std:.2f}"])
    report.add_table(["policy", "first (ms)", "last (ms)", "median (ms)",
                      "std (ms)"], rows)
    report.add_paragraph(
        "Paper reference: sync-once 7 → 50 ms (median 28.23, σ 12.31); "
        "sync-every-second 1–8 ms band (median 3.30, σ 1.19).")


def rtt_section(report: MarkdownReport,
                half_rtts: dict[str, float]) -> None:
    report.add_heading("Half-RTT characterization (§IV-B.2)")
    paper = {"same_zone": 16.0, "different_zone": 21.0,
             "different_region": 173.0}
    rows = [[location, f"{measured:.1f}", f"{paper[location]:.0f}"]
            for location, measured in half_rtts.items()]
    report.add_table(["location", "measured (ms)", "paper (ms)"], rows)

"""Run one experiment cell end to end.

The timeline of a run mirrors the paper's §III-B:

1. build the cloud, launch the master, pre-load the Cloudstone data;
2. attach the slaves (each from a fresh, fully-synchronized snapshot)
   at the configured location; start NTP (sync every second) and the
   heartbeat plug-in;
3. collect an idle **baseline** heartbeat window (the reference the
   relative-delay estimator subtracts);
4. run the workload through ramp-up / steady / ramp-down;
5. report steady-stage throughput, CPU utilizations, and the average
   relative replication delay per slave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cloud.instance import CpuModel
from ..cloud.provisioner import Cloud
from ..cloud.regions import MASTER_PLACEMENT
from ..replication.heartbeat import (HeartbeatPlugin,
                                     average_relative_delay_ms,
                                     collect_delays)
from ..obs import Observability
from ..obs.analyze import CellSignals, attribute_bottleneck
from ..replication.manager import ReplicationManager
from ..replication.monitor import ClusterMonitor
from ..replication.pool import ConnectionPool
from ..sim import RandomStreams, Simulator
from ..workloads.cloudstone import LoadGenerator, load_initial_data
from .config import ExperimentConfig

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything measured in one cell."""

    config: ExperimentConfig
    throughput: float                  # steady-stage operations/second
    achieved_read_fraction: float
    mean_latency_s: float
    master_cpu: float                  # utilization over the steady stage
    slave_cpus: list[float]
    relative_delay_ms: Optional[float]  # averaged across slaves
    per_slave_delay_ms: list[float] = field(default_factory=list)
    heartbeat_counts: list[int] = field(default_factory=list)
    #: Steady-stage operation-latency percentiles, seconds.
    latency_percentiles_s: dict = field(default_factory=dict)
    #: Bottleneck attribution for the cell (resource + evidence), from
    #: :func:`repro.obs.analyze.attribute_bottleneck` — None only for
    #: hand-built results (tests, fixtures).
    diagnosis: Optional[dict] = None
    #: Canonical incident timeline (``incidents.json`` payload) when
    #: the run carried an SLO spec; None otherwise.
    incidents: Optional[dict] = None
    #: Watchboard transcript (empty unless the run's
    #: :class:`~repro.obs.live.LiveSession` asked for frames).
    watch_text: str = ""

    @property
    def bottleneck(self) -> str:
        """The attributed resource (``none`` when undiagnosed)."""
        if self.diagnosis is None:
            return "none"
        return self.diagnosis["resource"]

    @property
    def max_slave_cpu(self) -> float:
        return max(self.slave_cpus) if self.slave_cpus else 0.0

    @property
    def saturated_resource(self) -> str:
        """Which tier hit the wall (>= 90 % busy), if any."""
        if self.master_cpu >= 0.90:
            return "master"
        if self.slave_cpus and self.max_slave_cpu >= 0.90:
            return "slaves"
        return "none"

    def row(self) -> str:
        delay = (f"{self.relative_delay_ms:12.2f}"
                 if self.relative_delay_ms is not None else "         n/a")
        return (f"{self.config.n_slaves:7d} {self.config.n_users:6d} "
                f"{self.throughput:10.2f} {delay} "
                f"{self.master_cpu:11.2f} {self.max_slave_cpu:10.2f} "
                f"{self.saturated_resource:>9s}")


def run_experiment(config: ExperimentConfig,
                   observe: Optional[Observability] = None,
                   sanitizer=None, slo=None) -> ExperimentResult:
    """Execute one cell and return its measurements.

    Pass an :class:`~repro.obs.Observability` session to record spans,
    metrics and a kernel profile for the run; observation is read-only,
    so results are identical with or without it.  A
    :class:`~repro.analysis.race.RaceSanitizer` likewise watches the
    cell's shared surfaces without perturbing it.

    ``slo`` (an :class:`~repro.obs.live.SLOSpec` or
    :class:`~repro.obs.live.LiveSession`) turns the live telemetry
    plane on: streaming aggregates over the metrics bus and SLO alert
    evaluation at sim-time, with the incident timeline on
    ``result.incidents``.  An observed registry is required for the
    stream tap, so a bare ``slo`` implies a default
    :class:`Observability`.
    """
    live = None
    if slo is not None:
        from ..obs.live import LiveSession
        live = LiveSession.of(slo)
        if observe is None:
            observe = Observability()
    sim = Simulator()
    if observe is not None:
        observe.attach(sim)
    if sanitizer is not None:
        sanitizer.attach(sim)
    if live is not None:
        live.attach(sim)
    streams = RandomStreams(config.seed)
    cloud = Cloud(sim, streams)
    manager = ReplicationManager(sim, cloud, ntp_period=config.ntp_period)
    master = manager.create_master(MASTER_PLACEMENT)
    if config.validated_master:
        master.instance.pin_hardware(
            CpuModel("Intel Xeon E5430 2.66GHz", 1.0))
    state = load_initial_data(master, config.data_size,
                              streams.stream("loader"))
    heartbeat = HeartbeatPlugin(sim, master,
                                interval=config.heartbeat_interval)
    heartbeat.install()
    slave_placement = config.location.slave_placement()
    for _ in range(config.n_slaves):
        manager.add_slave(slave_placement)
    heartbeat.start()

    monitor = None
    if observe is not None and observe.monitor_period is not None:
        monitor = ClusterMonitor(sim, manager,
                                 period=observe.monitor_period)
        monitor.start()

    # Idle baseline window for the relative-delay estimator.
    with sim.tracer.span("phase.baseline", category="experiment",
                         track="experiment"):
        sim.run(until=config.baseline_duration)
    workload_start = sim.now

    proxy = manager.build_proxy(MASTER_PLACEMENT)
    pool = ConnectionPool(sim, max_active=config.pool_size
                          or config.n_users)
    if sanitizer is not None:
        from ..analysis.race import instrument_cluster
        instrument_cluster(sanitizer, pool=pool, proxy=proxy,
                           manager=manager)
    generator = LoadGenerator(sim, proxy, pool, config.mix, state, streams,
                              n_users=config.n_users,
                              think_time_mean=config.think_time_mean,
                              phases=config.phases)
    generator.start()

    # CPU utilization probes over the steady stage.
    steady_start = workload_start + config.phases.steady_start
    steady_end = workload_start + config.phases.steady_end
    instances = [master.instance] + [s.instance for s in manager.slaves]
    busy_at_start: dict[str, float] = {}
    busy_at_end: dict[str, float] = {}
    backlog_at_start: dict[str, int] = {}
    backlog_at_end: dict[str, int] = {}

    def cpu_probe(sim):
        yield sim.timeout(steady_start - sim.now)
        for instance in instances:
            busy_at_start[instance.name] = instance.busy_time
        for slave in manager.slaves:
            backlog_at_start[slave.name] = slave.relay_backlog
        yield sim.timeout(steady_end - sim.now)
        for instance in instances:
            busy_at_end[instance.name] = instance.busy_time
        for slave in manager.slaves:
            backlog_at_end[slave.name] = slave.relay_backlog

    sim.process(cpu_probe(sim))
    with sim.tracer.span("phase.workload", category="experiment",
                         track="experiment", users=config.n_users,
                         slaves=config.n_slaves,
                         workload_start=workload_start,
                         steady_start=steady_start,
                         steady_end=steady_end):
        sim.run(until=workload_start + config.phases.total)
    heartbeat.stop()
    if monitor is not None:
        monitor.stop()

    utilizations = {}
    window = steady_end - steady_start
    for instance in instances:
        used = busy_at_end[instance.name] - busy_at_start[instance.name]
        utilizations[instance.name] = min(
            used / (window * instance.itype.cores), 1.0)

    per_slave_delay: list[float] = []
    heartbeat_counts: list[int] = []
    for slave in manager.slaves:
        baseline = collect_delays(heartbeat, slave, window_start=0.0,
                                  window_end=workload_start)
        loaded = collect_delays(heartbeat, slave,
                                window_start=steady_start,
                                window_end=steady_end)
        heartbeat_counts.append(len(loaded))
        if baseline and loaded:
            delay_ms = average_relative_delay_ms(loaded, baseline)
        elif baseline:
            # Every steady-stage heartbeat is still unapplied: the
            # delay is at least the whole steady stage.
            delay_ms = window * 1000.0
        else:
            continue
        per_slave_delay.append(delay_ms)
        if sim.metrics.enabled:
            sim.metrics.gauge(
                f"slave.{slave.name}.relative_delay_ms").set(delay_ms)
    relative_delay = (sum(per_slave_delay) / len(per_slave_delay)
                      if per_slave_delay else None)

    # Cell-level bottleneck attribution from the endpoint measurements
    # (ship share needs a recorded trace, so it is 0 here — network
    # verdicts come from ``repro analyze`` over the artifacts).
    backlog_slopes = {
        name: (backlog_at_end[name] - backlog_at_start[name]) / window
        for name in backlog_at_start}
    signals = CellSignals(
        master_util=utilizations[master.instance.name],
        slave_utils={s.name: utilizations[s.instance.name]
                     for s in manager.slaves},
        backlog_slopes=backlog_slopes,
        pool_wait_share=min(
            pool.mean_wait_time
            / max(generator.steady_mean_latency(), 1e-9), 1.0),
        ship_share=0.0,
        window=(steady_start, steady_end))
    diagnosis = attribute_bottleneck(signals)

    if sim.metrics.enabled:
        sim.metrics.gauge("result.throughput").set(
            generator.steady_throughput())
        sim.metrics.gauge("result.mean_latency_s").set(
            generator.steady_mean_latency())
        if relative_delay is not None:
            sim.metrics.gauge("result.relative_delay_ms").set(
                relative_delay)
    if observe is not None:
        observe.finalize()

    incidents = None
    watch_text = ""
    if live is not None:
        incidents = live.document(sim.now,
                                  bottleneck=diagnosis.as_dict())
        watch_text = live.render_watch()

    return ExperimentResult(
        config=config,
        throughput=generator.steady_throughput(),
        achieved_read_fraction=generator.steady_read_write_ratio(),
        mean_latency_s=generator.steady_mean_latency(),
        master_cpu=utilizations[master.instance.name],
        slave_cpus=[utilizations[s.instance.name]
                    for s in manager.slaves],
        relative_delay_ms=relative_delay,
        per_slave_delay_ms=per_slave_delay,
        heartbeat_counts=heartbeat_counts,
        latency_percentiles_s=generator.steady_latency_percentiles(),
        diagnosis=diagnosis.as_dict(),
        incidents=incidents,
        watch_text=watch_text,
    )
"""Grid sweeps and saturation detection.

The paper sweeps the number of concurrent users and the number of
slaves "at a fixed step" and stops when "no more throughput can be
obtained" (§III-B); the saturation *point* is "the point right after
the observed maximum throughput of a number of slaves" (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..workloads.cloudstone import Phases
from .config import LocationConfig
from .runner import ExperimentResult, run_experiment

__all__ = ["SweepResult", "run_user_sweep", "run_grid",
           "saturation_point", "max_throughput"]

#: The paper's user grids: 50-200 step 25 at 50/50, 50-450 step 50 at
#: 80/20.
USERS_50_50 = tuple(range(50, 201, 25))
USERS_80_20 = tuple(range(50, 451, 50))


@dataclass
class SweepResult:
    """All cells of one (location, mix, n_slaves) user sweep."""

    location: LocationConfig
    mix_name: str
    n_slaves: int
    results: list[ExperimentResult] = field(default_factory=list)

    @property
    def users(self) -> list[int]:
        return [r.config.n_users for r in self.results]

    @property
    def throughputs(self) -> list[float]:
        return [r.throughput for r in self.results]

    @property
    def delays_ms(self) -> list[Optional[float]]:
        return [r.relative_delay_ms for r in self.results]


def run_user_sweep(make_config, location: LocationConfig, n_slaves: int,
                   users: Sequence[int], phases: Phases,
                   seed: int = 0, **overrides) -> SweepResult:
    """Run one curve: fixed slave count, increasing users.

    ``make_config`` is :func:`~repro.experiments.config.PAPER_50_50`
    or :func:`PAPER_80_20` (or a compatible factory).
    """
    sweep = SweepResult(location, "", n_slaves)
    for n_users in users:
        config = make_config(location, n_slaves, n_users, phases,
                             seed=seed, **overrides)
        sweep.mix_name = config.mix.name
        sweep.results.append(run_experiment(config))
    return sweep


def run_grid(make_config, location: LocationConfig,
             slave_counts: Sequence[int], users: Sequence[int],
             phases: Phases, seed: int = 0,
             **overrides) -> list[SweepResult]:
    """One sub-figure: a user sweep per slave count."""
    return [run_user_sweep(make_config, location, n_slaves, users,
                           phases, seed=seed, **overrides)
            for n_slaves in slave_counts]


def max_throughput(sweep: SweepResult) -> tuple[int, float]:
    """(users, ops/s) at the observed maximum of one curve."""
    best = max(sweep.results, key=lambda r: r.throughput)
    return best.config.n_users, best.throughput


def saturation_point(sweep: SweepResult,
                     tolerance: float = 0.03) -> Optional[int]:
    """The paper's saturation point: the user count right after the
    observed maximum throughput — None when the curve is still rising
    at the end of the sweep (no saturation observed).

    ``tolerance`` treats near-flat growth as saturation, mirroring how
    one reads a knee off the paper's plots.
    """
    throughputs = sweep.throughputs
    users = sweep.users
    best_index = max(range(len(throughputs)), key=throughputs.__getitem__)
    if best_index == len(throughputs) - 1:
        final_gain = (throughputs[-1] - throughputs[-2]) \
            / max(throughputs[-2], 1e-9) if len(throughputs) > 1 else 1.0
        if final_gain > tolerance:
            return None
        return users[-1]
    return users[best_index + 1]

"""Measurement utilities shared by the heartbeat estimator, the
workload driver and the experiment harness."""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["trimmed_mean", "Summary", "summarize", "TimeSeries",
           "CpuUtilizationProbe"]


def trimmed_mean(samples: Sequence[float], trim: float = 0.05) -> float:
    """Mean with the top and bottom ``trim`` fraction cut as outliers.

    This is the paper's estimator (§IV-B.1): "Both average is sampled
    with the top 5% and the bottom 5% data cut out as outliers, because
    of network fluctuation."
    """
    if not 0.0 <= trim < 0.5:
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    if len(samples) == 0:
        raise ValueError("cannot take the mean of no samples")
    ordered = sorted(samples)
    cut = int(math.floor(len(ordered) * trim))
    kept = ordered[cut:len(ordered) - cut] if cut else ordered
    return float(np.mean(kept))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample set."""

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean:.3f} "
                f"median={self.median:.3f} std={self.std:.3f} "
                f"min={self.minimum:.3f} max={self.maximum:.3f}")


def summarize(samples: Sequence[float]) -> Summary:
    if len(samples) == 0:
        raise ValueError("cannot summarize no samples")
    arr = np.asarray(samples, dtype=float)
    return Summary(count=len(arr), mean=float(arr.mean()),
                   median=float(np.median(arr)), std=float(arr.std()),
                   minimum=float(arr.min()), maximum=float(arr.max()))


class TimeSeries:
    """(time, value) samples with window filtering.

    Samples must be recorded in non-decreasing time order (simulated
    clocks only move forward), which lets the window queries run in
    O(log n) via bisect instead of scanning every sample.
    """

    def __init__(self):
        self.times: list[float] = []
        self.values: list[float] = []

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"samples must be time-ordered: {time} after "
                f"{self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def _bounds(self, start: float, end: float) -> tuple[int, int]:
        """Index range [lo, hi) of samples with ``start <= time <
        end``."""
        if end <= start or not self.times:
            return 0, 0
        lo = bisect.bisect_left(self.times, start)
        hi = bisect.bisect_left(self.times, end, lo)
        return lo, hi

    def window(self, start: float, end: float) -> list[float]:
        """Values with ``start <= time < end``."""
        lo, hi = self._bounds(start, end)
        return self.values[lo:hi]

    def count_in(self, start: float, end: float) -> int:
        lo, hi = self._bounds(start, end)
        return hi - lo

    def rate_in(self, start: float, end: float) -> float:
        """Events per second over the window."""
        span = end - start
        if span <= 0:
            return 0.0
        return self.count_in(start, end) / span


class CpuUtilizationProbe:
    """Samples an instance's CPU utilization over a window."""

    def __init__(self, instance):
        self.instance = instance
        self._start_time: Optional[float] = None
        self._start_busy = 0.0

    def start(self) -> None:
        self._start_time = self.instance.sim.now
        self._start_busy = self.instance.busy_time

    def stop(self) -> float:
        """Utilization in [0, 1] since :meth:`start`."""
        if self._start_time is None:
            raise ValueError("probe was never started")
        return self.instance.utilization(self._start_time, self._start_busy)

"""Deterministic, sim-time observability for the reproduction.

Three pillars (see ISSUE 3 / README "Observability"):

* **tracing** — :class:`Tracer` / :class:`Span`: named sim-time
  intervals with parent links, instrumented through the request
  lifecycle (driver op → proxy route → pool acquire → engine execute)
  and the replication pipeline (commit → binlog → ship → relay →
  apply);
* **metrics** — :class:`MetricsRegistry`: counters, gauges and
  histograms every component publishes into;
* **kernel profiling** — :class:`KernelProfiler`: per-process event
  counts and consumed sim-time.

All three are zero-cost when disabled (the ``NULL_*`` singletons are
what a fresh :class:`~repro.sim.Simulator` carries) and fully
deterministic when enabled — timestamps are simulated seconds, so the
exported artifacts are byte-identical across same-seed runs.

The :mod:`repro.obs.analyze` subpackage is the analysis plane over
these artifacts (staleness waterfalls, bottleneck attribution, knee
detection) — import it explicitly; it is not re-exported here so the
kernel's import of the null singletons stays lean.

This package must not import :mod:`repro.sim` (the kernel imports the
null singletons from here).
"""

from .export import (chrome_trace, metrics_jsonl, span_record,
                     sorted_spans, spans_jsonl, trace_meta)
from .kernelprof import KernelProfiler, render_profile
from .metrics import (Counter, DEFAULT_BUCKETS, Gauge, Histogram,
                      MetricsRegistry, NullMetrics, NULL_METRICS)
from .session import Observability
from .tracer import NullTracer, NULL_TRACER, Span, Tracer

__all__ = [
    "Tracer", "Span", "NullTracer", "NULL_TRACER",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "NullMetrics", "NULL_METRICS", "DEFAULT_BUCKETS",
    "KernelProfiler", "render_profile",
    "Observability",
    "chrome_trace", "spans_jsonl", "metrics_jsonl", "span_record",
    "sorted_spans", "trace_meta",
]

"""Trace analysis: staleness waterfalls, bottleneck attribution, knees.

The analysis plane over PR 3's artifacts (see ISSUE 4): everything the
paper diagnoses by eyeballing its figures, computed —

* :mod:`.waterfall` — per-event staleness decomposition
  (binlog-wait / ship / relay-wait / apply) with per-cell aggregates
  and reconciliation against the heartbeat estimator;
* :mod:`.bottleneck` — the saturated resource per cell
  (``master-cpu`` / ``slave-cpu`` / ``pool`` / ``network`` / ``none``)
  with its evidence;
* :mod:`.knee` — throughput-curve saturation points (Fig. 2/3 knees
  as numbers);
* :mod:`.loader` / :mod:`.render` — artifact parsing, health gating
  and the ``python -m repro analyze`` report.

No imports of ``repro.sim`` or ``repro.experiments`` anywhere in the
package: the kernel imports ``repro.obs``, and analysis must work from
artifacts on disk alone.
"""

from .bottleneck import (BACKLOG_SLOPE_THRESHOLD, CellSignals,
                         CPU_SATURATION_THRESHOLD, Diagnosis,
                         POOL_WAIT_SHARE_THRESHOLD,
                         SHIP_SHARE_THRESHOLD, attribute_bottleneck,
                         signals_from_trace)
from .knee import Knee, LINEAR_TOLERANCE, detect_knee
from .loader import (AnalysisError, RESIDUE_TOLERANCE_S, TraceData,
                     from_session, health_errors, load_artifacts)
from .render import (analyze_trace, render_analysis_json,
                     render_analysis_text)
from .waterfall import (EventWaterfall, HeartbeatReconciliation,
                        PhaseWindows, RECONCILE_ABS_TOLERANCE_MS,
                        RECONCILE_REL_TOLERANCE, STAGES, StageStats,
                        aggregate_stages, build_waterfalls,
                        phase_windows, reconcile_heartbeats,
                        telescoping_error, trimmed_mean_of)

__all__ = [
    "AnalysisError", "TraceData", "load_artifacts", "from_session",
    "health_errors", "RESIDUE_TOLERANCE_S",
    "EventWaterfall", "StageStats", "PhaseWindows", "STAGES",
    "build_waterfalls", "aggregate_stages", "phase_windows",
    "telescoping_error", "reconcile_heartbeats",
    "HeartbeatReconciliation", "trimmed_mean_of",
    "RECONCILE_ABS_TOLERANCE_MS", "RECONCILE_REL_TOLERANCE",
    "CellSignals", "Diagnosis", "attribute_bottleneck",
    "signals_from_trace", "CPU_SATURATION_THRESHOLD",
    "BACKLOG_SLOPE_THRESHOLD", "POOL_WAIT_SHARE_THRESHOLD",
    "SHIP_SHARE_THRESHOLD",
    "Knee", "detect_knee", "LINEAR_TOLERANCE",
    "analyze_trace", "render_analysis_text", "render_analysis_json",
]

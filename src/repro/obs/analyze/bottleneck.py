"""Bottleneck attribution: name the saturated resource, with evidence.

The paper's saturation narrative (§IV-A) is a sequence of hand-read
diagnoses — "with one slave the slave CPU saturates first; from the
third slave the master's write path is the wall".  This module computes
that verdict per cell from the joined signals:

* **CPU utilizations** over the steady window (monitor gauges, or the
  runner's endpoint probes) against the same 0.90 threshold the
  pressure detector uses;
* **relay-backlog growth slope** (events/s, least squares over the
  steady window) — a positive slope is the queue-theoretic signature
  of an overloaded apply thread;
* **pool-wait share** — fraction of client latency spent waiting for a
  pooled connection (an undersized pool starves the driver before any
  server saturates);
* **ship share** — fraction of mean staleness spent on the wire, from
  the stage waterfalls (a remote slave can be delay-bound on the
  network with every CPU idle).

Priority order mirrors the paper's causality: a saturated master
explains everything downstream, so it wins; then slave CPU, then the
client-side pool, then the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from .loader import TraceData
from .waterfall import EventWaterfall, PhaseWindows

__all__ = ["CellSignals", "Diagnosis", "attribute_bottleneck",
           "signals_from_trace", "CPU_SATURATION_THRESHOLD",
           "BACKLOG_SLOPE_THRESHOLD", "POOL_WAIT_SHARE_THRESHOLD",
           "SHIP_SHARE_THRESHOLD"]

#: Same knee the monitor's pressure detector uses.
CPU_SATURATION_THRESHOLD = 0.90
#: Relay log growing faster than this (events/s) over the whole steady
#: window is divergence, not jitter.
BACKLOG_SLOPE_THRESHOLD = 0.5
#: Pool is the bottleneck when waiting for a connection is at least
#: this share of client latency.
POOL_WAIT_SHARE_THRESHOLD = 0.25
#: Network is the bottleneck when the wire is at least this share of
#: staleness (and nothing upstream saturated).
SHIP_SHARE_THRESHOLD = 0.5


@dataclass(frozen=True)
class CellSignals:
    """Everything the attributor looks at, already reduced to numbers.

    Built either from live endpoint measurements (the runner) or from
    recorded artifacts (:func:`signals_from_trace`).
    """

    master_util: float
    slave_utils: Mapping[str, float] = field(default_factory=dict)
    backlog_slopes: Mapping[str, float] = field(default_factory=dict)
    pool_wait_share: float = 0.0
    ship_share: float = 0.0
    window: tuple[float, float] = (0.0, 0.0)

    @property
    def worst_slave(self) -> Optional[str]:
        if not self.slave_utils:
            return None
        return max(sorted(self.slave_utils), key=self.slave_utils.get)


@dataclass(frozen=True)
class Diagnosis:
    """The verdict plus the numbers that produced it."""

    resource: str       # master-cpu | slave-cpu | pool | network | none
    evidence: dict

    def as_dict(self) -> dict:
        return {"resource": self.resource, "evidence": self.evidence}

    def render(self) -> str:
        details = ", ".join(f"{key}={value}"
                            for key, value in sorted(
                                self.evidence.items()))
        return f"{self.resource} ({details})"


def _round(value: float) -> float:
    """Evidence is for reading; 4 decimals keeps it deterministic and
    diff-friendly without implying micro-precision."""
    return round(value, 4)


def attribute_bottleneck(signals: CellSignals) -> Diagnosis:
    """Name the saturated resource for one cell."""
    window = [_round(edge) for edge in signals.window]
    evidence: dict = {"master_util": _round(signals.master_util),
                      "utilization_window": window}
    worst = signals.worst_slave
    if worst is not None:
        evidence["worst_slave"] = worst
        evidence["worst_slave_util"] = _round(
            signals.slave_utils[worst])
    growing = {name: _round(slope)
               for name, slope in sorted(signals.backlog_slopes.items())
               if slope > BACKLOG_SLOPE_THRESHOLD}
    if growing:
        evidence["backlog_slope_events_per_s"] = growing
    if signals.master_util >= CPU_SATURATION_THRESHOLD:
        return Diagnosis("master-cpu", evidence)
    if worst is not None and (
            signals.slave_utils[worst] >= CPU_SATURATION_THRESHOLD
            or signals.backlog_slopes.get(worst, 0.0)
            > BACKLOG_SLOPE_THRESHOLD):
        return Diagnosis("slave-cpu", evidence)
    if signals.pool_wait_share >= POOL_WAIT_SHARE_THRESHOLD:
        evidence["pool_wait_share"] = _round(signals.pool_wait_share)
        return Diagnosis("pool", evidence)
    if signals.ship_share >= SHIP_SHARE_THRESHOLD:
        evidence["ship_share_of_staleness"] = _round(signals.ship_share)
        return Diagnosis("network", evidence)
    return Diagnosis("none", evidence)


# ---------------------------------------------------- artifact signals
def _window_mean(samples: list[tuple[float, float]]) -> float:
    if not samples:
        return 0.0
    return sum(value for _, value in samples) / len(samples)


def _slope(samples: list[tuple[float, float]]) -> float:
    """Least-squares slope of (time, value) samples, per second."""
    if len(samples) < 2:
        return 0.0
    n = len(samples)
    mean_t = sum(t for t, _ in samples) / n
    mean_v = sum(v for _, v in samples) / n
    denominator = sum((t - mean_t) ** 2 for t, _ in samples)
    if denominator == 0.0:
        return 0.0
    numerator = sum((t - mean_t) * (v - mean_v) for t, v in samples)
    return numerator / denominator


def signals_from_trace(data: TraceData, windows: PhaseWindows,
                       waterfalls: Mapping[str, list[EventWaterfall]]
                       ) -> CellSignals:
    """Reduce recorded gauges + waterfalls to attribution signals.

    Utilizations are steady-window means of the monitor's gauges;
    backlog slopes are least-squares fits over the same window; the
    pool-wait share comes from the ``pool.wait_s`` vs
    ``driver.latency_s`` histogram sums; the ship share from the
    steady-window waterfalls.
    """
    start, end = windows.steady_start, windows.steady_end
    master_util = _window_mean(
        data.gauge_window("master.cpu_util", start, end))
    slave_utils: dict[str, float] = {}
    backlog_slopes: dict[str, float] = {}
    for name in data.gauge_names(".cpu_util"):
        if not name.startswith("slave."):
            continue
        slave = name[len("slave."):-len(".cpu_util")]
        slave_utils[slave] = _window_mean(
            data.gauge_window(name, start, end))
        backlog_slopes[slave] = _slope(data.gauge_window(
            f"slave.{slave}.relay_backlog", start, end))
    pool_wait = data.metric("pool.wait_s")
    latency = data.metric("driver.latency_s")
    pool_wait_share = 0.0
    if pool_wait is not None and latency is not None and \
            latency.get("sum", 0.0) > 0.0:
        pool_wait_share = min(pool_wait["sum"] / latency["sum"], 1.0)
    steady = [w for per_slave in waterfalls.values()
              for w in per_slave
              if start <= w.binlog_time < end]
    ship_share = 0.0
    if steady:
        total = sum(w.staleness for w in steady)
        if total > 0.0:
            ship_share = sum(w.ship for w in steady) / total
    return CellSignals(master_util=master_util,
                       slave_utils=slave_utils,
                       backlog_slopes=backlog_slopes,
                       pool_wait_share=pool_wait_share,
                       ship_share=ship_share,
                       window=(start, end))

"""Knee detection: where does a throughput-vs-users curve saturate?

The paper reads its knees off the plots ("the knee of the one-slave
curve is at about 100 users; with two or more slaves it moves to about
175").  This module turns that reading into two asserted numbers per
curve:

* ``linear_limit_users`` — the last *grid point* still on the
  linear-scaling line (offered load fully served): the paper's "knee
  at ~100 users" for the 1-slave curve is this number, since the next
  grid point already falls short of linear.
* ``knee_users`` — the continuous capacity-intersection estimate: the
  user count where the extrapolated linear-regime line crosses the
  observed plateau.  Grid-free, so it lands between sample points
  (~170 for the ≥2-slave curves on the quick grid).

Both are reported because a coarse grid makes either one alone
misleading: the linear limit quantizes to the grid, the intersection
extrapolates past it.

Pure sequences in, dataclass out — no simulation imports, so the same
fit runs over a live sweep or numbers read back from a report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["Knee", "detect_knee", "LINEAR_TOLERANCE"]

#: A point is still "linear" while its throughput is within 10 % of
#: the linear-regime extrapolation — the slack jittery quick-scale
#: runs need without letting a real shortfall pass.
LINEAR_TOLERANCE = 0.10


@dataclass(frozen=True)
class Knee:
    """One curve's saturation reading."""

    knee_users: Optional[float]        # capacity / linear slope
    linear_limit_users: Optional[int]  # last grid point on the line
    capacity: float                    # plateau throughput (ops/s)
    slope: float                       # linear-regime ops/s per user
    saturated: bool                    # curve actually flattened

    def as_dict(self) -> dict:
        return {"knee_users": self.knee_users,
                "linear_limit_users": self.linear_limit_users,
                "capacity": self.capacity, "slope": self.slope,
                "saturated": self.saturated}


def detect_knee(users: Sequence[int], throughputs: Sequence[float],
                tolerance: float = LINEAR_TOLERANCE) -> Knee:
    """Fit one throughput-vs-users curve.

    The linear regime is anchored on the first point (throughput per
    user at the lightest load, where nothing is saturated), grown
    while points stay within ``tolerance`` of it, then refit through
    the origin over the points it kept.  Capacity is the observed
    maximum; the knee is their intersection.  A curve whose every
    point is linear is still rising — ``knee_users`` is None and
    ``saturated`` is False.
    """
    if len(users) != len(throughputs):
        raise ValueError(f"users/throughputs length mismatch: "
                         f"{len(users)} vs {len(throughputs)}")
    if not users:
        raise ValueError("cannot detect a knee on an empty sweep")
    if users[0] <= 0 or throughputs[0] <= 0:
        raise ValueError("the first sweep point must have positive "
                         "users and throughput to anchor the linear "
                         "regime")
    anchor = throughputs[0] / users[0]
    linear = [(u, t) for u, t in zip(users, throughputs)
              if t >= (1.0 - tolerance) * anchor * u]
    # Through-origin least squares over the linear points.
    slope = (sum(u * t for u, t in linear)
             / sum(u * u for u, _ in linear))
    capacity = max(throughputs)
    linear_limit = max(u for u, _ in linear)
    saturated = len(linear) < len(users)
    knee_users = capacity / slope if saturated and slope > 0 else None
    return Knee(knee_users=knee_users, linear_limit_users=linear_limit,
                capacity=capacity, slope=slope, saturated=saturated)

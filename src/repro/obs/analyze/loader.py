"""Load trace artifacts (or a live session) into one analyzable bundle.

The analysis plane consumes exactly what PR 3's exporters emit — the
``spans.jsonl`` records (plus the ``"kind": "meta"`` health line), the
``metrics.jsonl`` instrument snapshots, and the ``kernelProfile`` rider
of ``trace.json`` — so a :class:`TraceData` can be built either from a
directory of artifacts or straight from an in-memory
:class:`~repro.obs.Observability` without re-running anything.

This module (like the whole ``obs.analyze`` package) must not import
``repro.sim`` or ``repro.experiments``: the kernel imports ``repro.obs``
for its null singletons, and the analyzer has to stay loadable from
artifacts alone.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["AnalysisError", "TraceData", "load_artifacts",
           "from_session", "health_errors", "RESIDUE_TOLERANCE_S"]

#: Clock advances telescope, so the profiler's unattributed residue is
#: float rounding noise on a healthy run; anything past this bound
#: means an advance bypassed attribution and the profile shares lie.
RESIDUE_TOLERANCE_S = 1e-6


class AnalysisError(Exception):
    """The artifacts cannot support the requested analysis."""


@dataclass
class TraceData:
    """One run's artifacts, parsed: spans, metrics, health meta, profile."""

    spans: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    meta: dict = field(default_factory=dict)
    profile: Optional[dict] = None

    # -- indexed access ----------------------------------------------------
    def spans_named(self, name: str) -> list[dict]:
        return [span for span in self.spans if span["name"] == name]

    def metric(self, name: str) -> Optional[dict]:
        for snapshot in self.metrics:
            if snapshot["name"] == name:
                return snapshot
        return None

    def gauge_window(self, name: str, start: float,
                     end: float) -> list[tuple[float, float]]:
        """(time, value) samples of a gauge with start < time <= end."""
        snapshot = self.metric(name)
        if snapshot is None or snapshot.get("kind") != "gauge":
            return []
        return [(t, v) for t, v in zip(snapshot["times"],
                                       snapshot["values"])
                if start < t <= end]

    def gauge_names(self, suffix: str) -> list[str]:
        return sorted(s["name"] for s in self.metrics
                      if s.get("kind") == "gauge"
                      and s["name"].endswith(suffix))


def load_artifacts(directory: str) -> TraceData:
    """Parse a ``repro trace`` output directory."""
    spans_path = os.path.join(directory, "spans.jsonl")
    if not os.path.exists(spans_path):
        raise AnalysisError(
            f"no spans.jsonl under {directory!r} — run "
            f"'python -m repro trace --out {directory}' first")
    spans: list[dict] = []
    meta: dict = {}
    with open(spans_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "meta":
                meta = record
            else:
                spans.append(record)
    metrics: list[dict] = []
    metrics_path = os.path.join(directory, "metrics.jsonl")
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            metrics = [json.loads(line) for line in handle
                       if line.strip()]
    profile = None
    trace_path = os.path.join(directory, "trace.json")
    if os.path.exists(trace_path):
        with open(trace_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        profile = document.get("kernelProfile")
        for key in ("droppedSpans", "finalSimTime",
                    "unattributedSimTime"):
            if key in document and key not in meta:
                meta[key] = document[key]
    return TraceData(spans=spans, metrics=metrics, meta=meta,
                     profile=profile)


def from_session(observe) -> TraceData:
    """Build the same bundle from a live (attached) Observability."""
    from ..export import sorted_spans, span_record
    if observe.tracer is None:
        raise AnalysisError("the session has no tracer — analysis "
                            "needs spans (Observability(trace=True))")
    spans = [span_record(span)
             for span in sorted_spans(observe.tracer)]
    metrics = observe.metrics.snapshot() if observe.metrics is not None \
        else []
    profile = observe.profiler.snapshot() \
        if observe.profiler is not None else None
    return TraceData(spans=spans, metrics=metrics, meta=observe.meta(),
                     profile=profile)


def health_errors(meta: dict) -> list[str]:
    """Why these artifacts must not be analyzed (empty = healthy).

    Dropped spans mean the tracer discarded late ``end()`` calls — the
    span set is incomplete, so waterfall sums would silently miss
    events.  Unattributed sim-time means clock advances bypassed the
    profiler, so its shares misstate where time went.
    """
    errors: list[str] = []
    dropped = meta.get("droppedSpans", 0)
    if dropped:
        errors.append(
            f"tracer dropped {dropped} late span end(s) — the trace is "
            f"incomplete; fix the instrumentation leak (close spans "
            f"before Observability.finalize()) and re-record")
    residue = meta.get("unattributedSimTime")
    if residue is not None and abs(residue) > RESIDUE_TOLERANCE_S:
        errors.append(
            f"kernel profiler left {residue:.9f}s of clock advance "
            f"unattributed (tolerance {RESIDUE_TOLERANCE_S:g}s) — the "
            f"profile is not a faithful decomposition; re-record with "
            f"a kernel that attributes every advance")
    return errors

"""Assemble and render one run's full analysis report.

``analyze_trace`` is the one-call entry the CLI, the CI smoke step and
the examples use: health check, per-slave staleness waterfalls,
heartbeat reconciliation, telescoping verification and the bottleneck
verdict, as one plain dict (JSON mode dumps it with sorted keys and
fixed separators, so same-seed runs are byte-identical).
"""

from __future__ import annotations

import json

from .bottleneck import attribute_bottleneck, signals_from_trace
from .loader import AnalysisError, TraceData, health_errors
from .waterfall import (STAGES, aggregate_stages, build_waterfalls,
                        phase_windows, reconcile_heartbeats,
                        telescoping_error)

__all__ = ["analyze_trace", "render_analysis_text",
           "render_analysis_json"]

#: One ulp of slack per telescoping float sum (the identity is exact
#: in real arithmetic; tests assert abs=1e-12 on the raw spans).
TELESCOPING_TOLERANCE_S = 1e-9


def analyze_trace(data: TraceData) -> dict:
    """The whole diagnosis for one recorded run.

    Raises :class:`AnalysisError` when the artifacts are unhealthy
    (dropped spans, unattributed profiler residue) or too bare to
    analyze — a broken trace must fail loudly, not produce a
    plausible-looking report.
    """
    errors = health_errors(data.meta)
    if errors:
        raise AnalysisError("unhealthy trace artifacts:\n  " +
                            "\n  ".join(errors))
    windows = phase_windows(data)
    waterfalls = build_waterfalls(data)
    if not waterfalls:
        raise AnalysisError("no fully-traced replication events in the "
                            "artifacts — was the cell run with slaves "
                            "attached and tracing enabled?")
    per_slave: dict[str, dict] = {}
    worst_telescoping = 0.0
    total_events = 0
    for slave, events in sorted(waterfalls.items()):
        total_events += len(events)
        worst_telescoping = max(
            worst_telescoping,
            max(telescoping_error(w) for w in events))
        aggregates = aggregate_stages(events)
        reconciliation = reconcile_heartbeats(data, slave, events,
                                              windows)
        per_slave[slave] = {
            "events": len(events),
            "stages_ms": {
                stage: _ms(aggregates[stage].as_dict())
                for stage in STAGES},
            "staleness_ms": _ms(aggregates["staleness"].as_dict()),
            "heartbeats": reconciliation.as_dict(),
        }
    signals = signals_from_trace(data, windows, waterfalls)
    diagnosis = attribute_bottleneck(signals)
    workload = data.spans_named("phase.workload")[0].get("attrs", {})
    return {
        "cell": {"users": workload.get("users"),
                 "slaves": workload.get("slaves")},
        "health": {
            "droppedSpans": data.meta.get("droppedSpans", 0),
            "unattributedSimTime": data.meta.get("unattributedSimTime"),
        },
        "windows": {
            "baseline": [windows.baseline_start, windows.baseline_end],
            "steady": [windows.steady_start, windows.steady_end],
        },
        "telescoping": {
            "events": total_events,
            "max_error_s": worst_telescoping,
            "ok": worst_telescoping <= TELESCOPING_TOLERANCE_S,
        },
        "waterfall": per_slave,
        "bottleneck": diagnosis.as_dict(),
    }


def _ms(stats: dict) -> dict:
    """Stage stats from seconds to milliseconds (rounded for reading;
    10 nanoseconds of print precision keeps the export deterministic
    without implying more than the simulation resolves)."""
    return {key: (value if key == "count"
                  else round(value * 1000.0, 5))
            for key, value in stats.items()}


def render_analysis_json(report: dict) -> str:
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


def render_analysis_text(report: dict) -> str:
    lines: list[str] = []
    cell = report["cell"]
    lines.append(f"cell: users={cell['users']} slaves={cell['slaves']}")
    steady = report["windows"]["steady"]
    lines.append(f"steady window: [{steady[0]:.1f}s, {steady[1]:.1f}s)")
    telescoping = report["telescoping"]
    lines.append(
        f"telescoping: {telescoping['events']} events, max error "
        f"{telescoping['max_error_s']:.2e}s "
        f"({'ok' if telescoping['ok'] else 'VIOLATED'})")
    for slave, entry in sorted(report["waterfall"].items()):
        lines.append("")
        lines.append(f"staleness waterfall — {slave} "
                     f"({entry['events']} events, ms)")
        lines.append(f"{'stage':<12s} {'mean':>10s} {'p50':>10s} "
                     f"{'p95':>10s} {'max':>10s}")
        for stage in (*STAGES, "staleness"):
            stats = entry["staleness_ms"] if stage == "staleness" \
                else entry["stages_ms"][stage]
            lines.append(f"{stage:<12s} {stats['mean']:>10.3f} "
                         f"{stats['p50']:>10.3f} {stats['p95']:>10.3f} "
                         f"{stats['max']:>10.3f}")
        heartbeats = entry["heartbeats"]
        estimator = heartbeats["estimator_relative_ms"]
        waterfall_ms = heartbeats["waterfall_relative_ms"]
        lines.append(
            f"heartbeats: {heartbeats['loaded']} loaded / "
            f"{heartbeats['baseline']} baseline / "
            f"{heartbeats['censored']} censored")
        lines.append(
            "reconciliation: waterfall "
            + (f"{waterfall_ms:.2f}" if waterfall_ms is not None
               else "n/a")
            + " ms vs estimator "
            + (f"{estimator:.2f}" if estimator is not None else "n/a")
            + " ms"
            + ("" if heartbeats["within_tolerance"] is None else
               (" (within tolerance)"
                if heartbeats["within_tolerance"]
                else " (OUTSIDE tolerance)")))
    bottleneck = report["bottleneck"]
    lines.append("")
    evidence = ", ".join(f"{key}={value}" for key, value
                         in sorted(bottleneck["evidence"].items()))
    lines.append(f"bottleneck: {bottleneck['resource']} ({evidence})")
    return "\n".join(lines)

"""Staleness waterfalls: decompose each replication event's delay.

For every binlog event that completed the full pipeline on a slave we
know four instants from the stage spans (which telescope by
construction — PR 3's instrumentation asserts ``ship.end ==
relay.start`` and ``relay.end == apply.start``):

====================  ====================================================
``binlog_time``       ``repl.binlog`` instant — commit appended the event
``ship_start``        the master's dump thread put it on the wire
``ship_end``          the slave's IO thread received it (= relay start)
``relay_end``         the SQL thread popped it (= apply start)
``apply_end``         the statement finished re-executing
====================  ====================================================

giving the per-event decomposition the paper's Figs. 5/6 narrative
talks around but never plots::

    staleness = binlog_wait + ship + relay_wait + apply

``binlog_wait`` (commit → dump pickup) is structurally ~0 in this
simulator — the dump thread wakes at commit time and shipping has no
CPU cost — but the stage is kept explicit so the identity telescopes
and a future costed dump thread shows up where it belongs.

Heartbeat reconciliation: restricted to the heartbeat population
(``repl.heartbeat`` instants mark their binlog positions), censored
the same way, windowed the same way and trimmed the same 5 %, the
waterfall's loaded-minus-baseline staleness must agree with the
heartbeat estimator's measured relative delay up to NTP clock wobble —
Fig. 4's sync-every-second policy keeps local clocks within a
millisecond band of true time, so the documented tolerance is a few
milliseconds plus a small relative term (see
:data:`RECONCILE_ABS_TOLERANCE_MS`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .loader import AnalysisError, TraceData

__all__ = ["EventWaterfall", "StageStats", "PhaseWindows", "STAGES",
           "phase_windows", "build_waterfalls", "aggregate_stages",
           "telescoping_error", "HeartbeatReconciliation",
           "reconcile_heartbeats", "trimmed_mean_of",
           "RECONCILE_ABS_TOLERANCE_MS", "RECONCILE_REL_TOLERANCE"]

#: Stage names, pipeline order.
STAGES = ("binlog_wait", "ship", "relay_wait", "apply")

#: Documented reconciliation tolerance: the estimator reads NTP-synced
#: *local clocks* (Fig. 4: a 1–8 ms wobble band under sync-every-
#: second), the waterfall reads the simulated true clock; baseline
#: subtraction cancels the mean skew but not its wander, and the
#: USEC_NOW() evaluation points sit inside (not at the edges of) the
#: spans.  |waterfall − estimator| ≤ ABS + REL·estimator.
RECONCILE_ABS_TOLERANCE_MS = 5.0
RECONCILE_REL_TOLERANCE = 0.15


@dataclass(frozen=True)
class EventWaterfall:
    """One replication event's staleness decomposition on one slave."""

    position: int
    slave: str
    binlog_time: float
    ship_start: float
    ship_end: float
    relay_end: float
    apply_end: float

    @property
    def binlog_wait(self) -> float:
        return self.ship_start - self.binlog_time

    @property
    def ship(self) -> float:
        return self.ship_end - self.ship_start

    @property
    def relay_wait(self) -> float:
        return self.relay_end - self.ship_end

    @property
    def apply(self) -> float:
        return self.apply_end - self.relay_end

    @property
    def staleness(self) -> float:
        """Commit-to-applied delay, seconds (what the paper measures)."""
        return self.apply_end - self.binlog_time

    def stage(self, name: str) -> float:
        return getattr(self, name)


@dataclass(frozen=True)
class StageStats:
    """Per-cell aggregate of one stage (or of total staleness)."""

    count: int
    mean: float
    p50: float
    p95: float
    max: float

    def as_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean,
                "p50": self.p50, "p95": self.p95, "max": self.max}


@dataclass(frozen=True)
class PhaseWindows:
    """The run's measurement windows, recovered from the phase spans."""

    baseline_start: float
    baseline_end: float
    workload_start: float
    steady_start: float
    steady_end: float


def phase_windows(data: TraceData) -> PhaseWindows:
    baseline = data.spans_named("phase.baseline")
    workload = data.spans_named("phase.workload")
    if not baseline or not workload:
        raise AnalysisError(
            "phase.baseline/phase.workload spans missing — artifacts "
            "predate the analysis plane; re-record with repro trace")
    attrs = workload[0].get("attrs", {})
    for key in ("workload_start", "steady_start", "steady_end"):
        if key not in attrs:
            raise AnalysisError(
                f"phase.workload span lacks the {key!r} attribute — "
                f"re-record with repro trace")
    return PhaseWindows(
        baseline_start=baseline[0]["start"],
        baseline_end=baseline[0]["end"],
        workload_start=attrs["workload_start"],
        steady_start=attrs["steady_start"],
        steady_end=attrs["steady_end"])


def build_waterfalls(data: TraceData) -> dict[str, list[EventWaterfall]]:
    """Per-slave waterfalls for every fully-traced replication event.

    Events without all three stage spans on a slave (e.g. data-load
    events that predate slave attachment, or events still in flight at
    the end of the run) are skipped — they have no completed delay to
    decompose.  Slave names come from the ``repl:<slave>`` track.
    """
    binlog_time: dict[int, float] = {}
    for span in data.spans_named("repl.binlog"):
        position = span["attrs"]["position"]
        binlog_time.setdefault(position, span["start"])
    stages: dict[tuple[str, int], dict[str, dict]] = {}
    for name in ("repl.ship", "repl.relay", "repl.apply"):
        for span in data.spans_named(name):
            if span.get("attrs", {}).get("dropped"):
                continue
            key = (span["track"], span["attrs"]["position"])
            stages.setdefault(key, {})[name] = span
    waterfalls: dict[str, list[EventWaterfall]] = {}
    for (track, position), spans in sorted(stages.items()):
        if len(spans) != 3 or position not in binlog_time:
            continue
        slave = track.split(":", 1)[1] if ":" in track else track
        waterfalls.setdefault(slave, []).append(EventWaterfall(
            position=position,
            slave=slave,
            binlog_time=binlog_time[position],
            ship_start=spans["repl.ship"]["start"],
            ship_end=spans["repl.ship"]["end"],
            relay_end=spans["repl.relay"]["end"],
            apply_end=spans["repl.apply"]["end"]))
    return waterfalls


def telescoping_error(waterfall: EventWaterfall) -> float:
    """|sum of post-commit stages − (apply_end − ship_start)|.

    Exactly zero in real arithmetic; float summation of the three
    telescoping differences can leave one ulp.
    """
    total = waterfall.ship + waterfall.relay_wait + waterfall.apply
    return abs(total - (waterfall.apply_end - waterfall.ship_start))


def _percentile(ordered: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending list."""
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


def _stats(values: list[float]) -> StageStats:
    ordered = sorted(values)
    return StageStats(count=len(ordered),
                      mean=sum(ordered) / len(ordered),
                      p50=_percentile(ordered, 0.50),
                      p95=_percentile(ordered, 0.95),
                      max=ordered[-1])


def aggregate_stages(waterfalls: list[EventWaterfall]
                     ) -> dict[str, StageStats]:
    """Per-stage aggregates plus the total ``staleness`` row."""
    if not waterfalls:
        raise AnalysisError("no fully-traced replication events — "
                            "nothing to aggregate")
    aggregates = {stage: _stats([w.stage(stage) for w in waterfalls])
                  for stage in STAGES}
    aggregates["staleness"] = _stats([w.staleness for w in waterfalls])
    return aggregates


def trimmed_mean_of(values: list[float], trim: float = 0.05) -> float:
    """5 %-per-end trimmed mean — the estimator's exact recipe
    (re-implemented here so the analyzer stays import-free of the
    simulation stack)."""
    if not values:
        raise AnalysisError("trimmed mean of an empty window")
    ordered = sorted(values)
    drop = int(len(ordered) * trim)
    kept = ordered[drop:len(ordered) - drop] or ordered
    return sum(kept) / len(kept)


@dataclass(frozen=True)
class HeartbeatReconciliation:
    """Waterfall staleness vs. the heartbeat estimator, one slave."""

    slave: str
    loaded: int                      # steady-window heartbeats applied
    baseline: int                    # baseline-window heartbeats applied
    censored: int                    # steady-window heartbeats unapplied
    waterfall_relative_ms: Optional[float]
    estimator_relative_ms: Optional[float]

    @property
    def discrepancy_ms(self) -> Optional[float]:
        if self.waterfall_relative_ms is None or \
                self.estimator_relative_ms is None:
            return None
        return self.waterfall_relative_ms - self.estimator_relative_ms

    @property
    def within_tolerance(self) -> Optional[bool]:
        gap = self.discrepancy_ms
        if gap is None:
            return None
        bound = RECONCILE_ABS_TOLERANCE_MS + RECONCILE_REL_TOLERANCE * \
            abs(self.estimator_relative_ms)
        return abs(gap) <= bound

    def as_dict(self) -> dict:
        return {"loaded": self.loaded, "baseline": self.baseline,
                "censored": self.censored,
                "waterfall_relative_ms": self.waterfall_relative_ms,
                "estimator_relative_ms": self.estimator_relative_ms,
                "discrepancy_ms": self.discrepancy_ms,
                "within_tolerance": self.within_tolerance}


def reconcile_heartbeats(data: TraceData, slave: str,
                         waterfalls: list[EventWaterfall],
                         windows: PhaseWindows
                         ) -> HeartbeatReconciliation:
    """Mirror the estimator on the heartbeat population, in sim time.

    Same population (heartbeats only), same censoring (unapplied
    heartbeats excluded), same windows (insert time in the baseline
    resp. steady window) and the same 5 % trim — the only differences
    left are the local-clock wobble and USEC_NOW() evaluation offsets
    the documented tolerance covers.
    """
    hb_position: dict[int, float] = {}
    for span in data.spans_named("repl.heartbeat"):
        attrs = span["attrs"]
        hb_position[attrs["position"]] = attrs["inserted"]
    staleness_at = {w.position: w.staleness for w in waterfalls}
    loaded: list[float] = []
    baseline: list[float] = []
    censored = 0
    for position, inserted in sorted(hb_position.items()):
        applied = staleness_at.get(position)
        in_steady = windows.steady_start <= inserted < windows.steady_end
        in_baseline = inserted < windows.workload_start
        if applied is None:
            censored += 1 if in_steady else 0
            continue
        if in_steady:
            loaded.append(applied)
        elif in_baseline:
            baseline.append(applied)
    waterfall_ms = None
    if loaded and baseline:
        waterfall_ms = (trimmed_mean_of(loaded) -
                        trimmed_mean_of(baseline)) * 1000.0
    estimator_ms = None
    gauge = data.metric(f"slave.{slave}.relative_delay_ms")
    if gauge is not None and gauge.get("values"):
        estimator_ms = gauge["values"][-1]
    return HeartbeatReconciliation(
        slave=slave, loaded=len(loaded), baseline=len(baseline),
        censored=censored, waterfall_relative_ms=waterfall_ms,
        estimator_relative_ms=estimator_ms)

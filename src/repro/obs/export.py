"""Trace and metrics exporters: JSONL and Chrome trace-event format.

Both exports are **byte-deterministic**: spans are sorted on
``(start, span_id)``, JSON objects are dumped with sorted keys and
fixed separators, and every timestamp is simulated time — so two runs
with the same seed write identical files (the determinism test diffs
them byte for byte).

The Chrome document is the *JSON object format* (a ``traceEvents``
array plus metadata keys), loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Sim seconds are
exported as microseconds, the unit the format expects; each span
track (one per simulation process, or an explicit track name) becomes
a named thread via ``thread_name`` metadata events.
"""

from __future__ import annotations

import json
from typing import Optional

from .kernelprof import KernelProfiler
from .metrics import MetricsRegistry
from .tracer import ROOT, Span, Tracer

__all__ = ["sorted_spans", "span_record", "spans_jsonl",
           "metrics_jsonl", "chrome_trace", "trace_meta"]

_PID = 1


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sorted_spans(tracer: Tracer) -> list[Span]:
    """Finished spans in (start, id) order — the canonical export order."""
    return sorted(tracer.spans, key=lambda s: (s.start, s.span_id))


def span_record(span: Span) -> dict:
    """One span as a plain JSON-able dict (the JSONL schema)."""
    record = {
        "id": span.span_id,
        "name": span.name,
        "cat": span.category,
        "track": span.track,
        "start": span.start,
        "end": span.end_time,
        "dur": span.end_time - span.start,
    }
    if span.parent_id != ROOT:
        record["parent"] = span.parent_id
    if span.instant:
        record["instant"] = True
    if span.attributes:
        record["attrs"] = span.attributes
    return record


def trace_meta(tracer: Tracer,
               profiler: Optional[KernelProfiler] = None,
               final_sim_time: Optional[float] = None) -> dict:
    """The health rider: dropped-span count and profiler residue.

    ``repro analyze`` refuses artifacts whose meta shows dropped spans
    or an unattributed clock advance — both mean the trace is not the
    faithful record the waterfall arithmetic assumes.
    """
    meta: dict = {"kind": "meta", "droppedSpans": tracer.dropped}
    if final_sim_time is not None:
        meta["finalSimTime"] = final_sim_time
        if profiler is not None:
            meta["attributedSimTime"] = profiler.total_sim_time
            meta["unattributedSimTime"] = profiler.unattributed(
                final_sim_time)
    return meta


def spans_jsonl(tracer: Tracer, meta: Optional[dict] = None) -> str:
    """One JSON object per finished span, one per line.

    ``meta`` (see :func:`trace_meta`) is prepended as a first line
    marked ``"kind": "meta"`` so line-oriented consumers can tell it
    from span records.
    """
    lines = [_dumps(span_record(span)) for span in sorted_spans(tracer)]
    if meta is not None:
        lines.insert(0, _dumps(meta))
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per instrument, one per line, sorted by name."""
    lines = [_dumps(snapshot) for snapshot in registry.snapshot()]
    return "\n".join(lines) + ("\n" if lines else "")


def chrome_trace(tracer: Tracer,
                 profiler: Optional[KernelProfiler] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 final_sim_time: Optional[float] = None) -> str:
    """The full run as a Chrome trace-event JSON document.

    Spans become complete (``"ph": "X"``) events, instants become
    instant (``"ph": "i"``) events; the kernel profile and the metrics
    snapshot ride along as top-level metadata keys, which trace viewers
    ignore but tooling can read back.
    """
    spans = sorted_spans(tracer)
    tracks: dict[str, int] = {}
    events: list[dict] = [{
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulation"},
    }]
    for span in spans:
        tid = tracks.get(span.track)
        if tid is None:
            tid = len(tracks) + 1
            tracks[span.track] = tid
            events.append({
                "ph": "M", "pid": _PID, "tid": tid,
                "name": "thread_name", "args": {"name": span.track}})
            events.append({
                "ph": "M", "pid": _PID, "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid}})
        args = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id != ROOT:
            args["parent_id"] = span.parent_id
        event = {
            "ph": "i" if span.instant else "X",
            "pid": _PID, "tid": tid,
            "ts": span.start * 1e6,
            "name": span.name, "cat": span.category, "args": args,
        }
        if span.instant:
            event["s"] = "t"
        else:
            event["dur"] = (span.end_time - span.start) * 1e6
        events.append(event)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if tracer.dropped:
        document["droppedSpans"] = tracer.dropped
    if final_sim_time is not None:
        document["finalSimTime"] = final_sim_time
        if profiler is not None:
            document["unattributedSimTime"] = profiler.unattributed(
                final_sim_time)
    if profiler is not None:
        document["kernelProfile"] = profiler.snapshot()
    if metrics is not None:
        document["metrics"] = metrics.snapshot()
    return _dumps(document)

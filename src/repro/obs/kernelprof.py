"""Kernel profiler: where did simulated time go?

When attached to a :class:`~repro.sim.kernel.Simulator`, every
scheduled event is stamped with the *owner* — the name of the process
that scheduled it (``<kernel>`` for setup code and event callbacks) —
and every :meth:`step` attributes the clock advance it causes to that
owner.  Clock advances telescope, so the per-owner sums are an exact
decomposition of the final simulation time: a run ends with a table
saying "binlog-dump threads consumed 12 % of simulated time, user
think-timers 71 %, …" — the profile the ROADMAP's hot-path work needs.

Owner names are aggregated raw and also *grouped* (digit runs
collapsed to ``*``), so 200 ``user-N`` processes render as one
``user-*`` row.
"""

from __future__ import annotations

import re

__all__ = ["KernelProfiler", "render_profile"]

_DIGITS = re.compile(r"\d+")


class KernelProfiler:
    """Per-owner scheduled/executed event counts and consumed sim-time."""

    __slots__ = ("_stats",)

    def __init__(self):
        #: owner -> [scheduled, executed, consumed sim-time]
        self._stats: dict[str, list] = {}

    # -- hot-path hooks (called by the kernel when attached) ---------------
    def on_schedule(self, owner: str) -> None:
        entry = self._stats.get(owner)
        if entry is None:
            self._stats[owner] = [1, 0, 0.0]
        else:
            entry[0] += 1

    def on_execute(self, owner: str, advance: float) -> None:
        entry = self._stats.get(owner)
        if entry is None:
            self._stats[owner] = [0, 1, advance]
        else:
            entry[1] += 1
            entry[2] += advance

    # -- results ------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(entry[1] for entry in self._stats.values())

    @property
    def total_sim_time(self) -> float:
        """Sum of attributed clock advances == final ``sim.now`` (the
        kernel books any trailing ``run(until=...)`` idle tail to the
        synthetic ``<idle>`` owner, so the decomposition is exact)."""
        return sum(entry[2] for entry in self._stats.values())

    def unattributed(self, final_sim_time: float) -> float:
        """Advance residue the per-owner sums fail to explain.

        Clock advances telescope, so this is float rounding noise
        (≲ 1e-6 s) on a healthy run; anything larger means an advance
        bypassed :meth:`on_execute` — ``repro analyze`` refuses such
        traces.
        """
        return final_sim_time - self.total_sim_time

    def rows(self, grouped: bool = True) -> list[dict]:
        """Per-owner stats, most sim-time first (ties: by name).

        ``grouped`` collapses digit runs in owner names (``user-17`` →
        ``user-*``) so wide fan-outs aggregate into one row.
        """
        stats: dict[str, list] = {}
        for owner in sorted(self._stats):
            key = _DIGITS.sub("*", owner) if grouped else owner
            entry = stats.get(key)
            if entry is None:
                stats[key] = list(self._stats[owner]) + [1]
            else:
                for position in range(3):
                    entry[position] += self._stats[owner][position]
                entry[3] += 1
        return [
            {"owner": owner, "processes": entry[3],
             "scheduled": entry[0], "executed": entry[1],
             "sim_time": entry[2]}
            for owner, entry in sorted(
                stats.items(), key=lambda kv: (-kv[1][2], kv[0]))]

    def snapshot(self, grouped: bool = True) -> dict:
        return {"total_events": self.total_events,
                "total_sim_time": self.total_sim_time,
                "rows": self.rows(grouped=grouped)}


def render_profile(profiler: KernelProfiler, grouped: bool = True,
                   max_rows: int = 30) -> str:
    """The end-of-run "where did simulated time go" table."""
    rows = profiler.rows(grouped=grouped)
    total = profiler.total_sim_time
    lines = [
        "kernel profile (sim-time attributed to the scheduling process)",
        f"{'process':<28s} {'procs':>6s} {'sched':>9s} {'exec':>9s} "
        f"{'sim-time':>12s} {'share':>7s}",
    ]
    for row in rows[:max_rows]:
        share = row["sim_time"] / total if total > 0 else 0.0
        lines.append(
            f"{row['owner']:<28s} {row['processes']:>6d} "
            f"{row['scheduled']:>9d} {row['executed']:>9d} "
            f"{row['sim_time']:>12.3f} {share:>6.1%}")
    if len(rows) > max_rows:
        lines.append(f"... {len(rows) - max_rows} more row(s)")
    lines.append(f"{'total':<28s} {'':>6s} {'':>9s} "
                 f"{profiler.total_events:>9d} {total:>12.3f} "
                 f"{1.0 if total > 0 else 0.0:>6.1%}")
    return "\n".join(lines)

"""The live telemetry plane: streaming aggregation, SLOs, alerts.

Where :mod:`repro.obs.analyze` explains a run *after* it ends, this
package watches it *while it executes* — incrementally-maintained
aggregates over the metrics bus (:mod:`.streams`), declarative SLO
rules with hysteresis (:mod:`.slo`, :mod:`.alerts`), a
byte-deterministic incident timeline (:mod:`.incidents`), detection
scoring against chaos ground truth (:mod:`.score`) and a periodic
text dashboard (:mod:`.watch`).  :class:`~repro.obs.live.session.
LiveSession` bundles it all for one run, the way
:class:`~repro.obs.Observability` bundles the recorders.

Like the rest of :mod:`repro.obs`, nothing here may import
:mod:`repro.sim` at module level — the kernel imports
:data:`NULL_LIVE` from :mod:`.streams`, and every sim-facing hook
imports lazily inside its generator.
"""

from .alerts import AlertEngine, AlertState, Incident
from .incidents import (incidents_document, render_incidents_text,
                        write_incidents)
from .score import FAULT_ALERTS, score_detection
from .session import LiveSession
from .slo import (AlertRule, SLOSpec, default_slo_spec,
                  load_slo_file)
from .streams import (Combine, Ewma, Latest, LivePipeline, Mapped,
                      Node, NullLivePipeline, NULL_LIVE, Operator,
                      SlidingMax, SlidingMin, SlidingQuantile,
                      WindowedMean, WindowedRate)
from .watch import Watchboard

__all__ = [
    "LivePipeline", "NullLivePipeline", "NULL_LIVE", "Node",
    "Operator", "Latest", "Ewma", "WindowedRate", "WindowedMean",
    "SlidingMax", "SlidingMin", "SlidingQuantile", "Mapped",
    "Combine",
    "AlertRule", "SLOSpec", "default_slo_spec", "load_slo_file",
    "AlertEngine", "AlertState", "Incident",
    "incidents_document", "render_incidents_text", "write_incidents",
    "FAULT_ALERTS", "score_detection",
    "LiveSession", "Watchboard",
]

"""The alert engine: SLO rules evaluated at sim-time with hysteresis.

Each (rule, matched-stream) pair owns an independent state machine::

    idle --breach--> pending --held for_s--> firing
    pending --recovers--> idle
    firing --below clear bound--> clearing --held clear_for_s--> idle
    clearing --re-breach of clear bound--> firing

Fires and resolves emit ``alert.fire`` / ``alert.resolve`` instant
spans on the ``slo`` track plus ``alerts.fired`` / ``alerts.resolved``
counters, and accumulate :class:`Incident` records — the raw material
of the ``incidents.json`` timeline (:mod:`repro.obs.live.incidents`).

The engine is usable headless (:meth:`AlertEngine.evaluate` on any
pipeline — the ``obs.stream`` bench drives it this way) or attached to
a simulator as a kernel process (:meth:`AlertEngine.attach`).

This module must not import :mod:`repro.sim` at module level (the
kernel imports ``NULL_LIVE`` from this package) — the interrupt type
is imported lazily inside the evaluation loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..tracer import NULL_TRACER
from .slo import AlertRule, SLOSpec
from .streams import Ewma, LivePipeline, Mapped, WindowedMean

__all__ = ["AlertEngine", "AlertState", "Incident"]


def _round(value: float, places: int = 6) -> float:
    """Canonical float rounding (matches the export plane)."""
    return round(value + 0.0, places)


@dataclass
class Incident:
    """One fire..resolve episode of a (rule, stream) alert."""

    incident_id: int
    rule: str
    stream: str
    severity: str
    fired_at_s: float
    resolved_at_s: Optional[float] = None
    #: Worst observed value while pending/firing (per comparison).
    peak: Optional[float] = None
    #: Evidence streams at fire time: ``{stream: value}``.
    evidence: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.resolved_at_s is None

    def as_dict(self) -> dict:
        return {
            "id": self.incident_id,
            "rule": self.rule,
            "stream": self.stream,
            "severity": self.severity,
            "fired_at_s": _round(self.fired_at_s),
            "resolved_at_s": (None if self.resolved_at_s is None
                              else _round(self.resolved_at_s)),
            "open": self.open,
            "peak": (None if self.peak is None
                     else _round(self.peak)),
            "evidence": {name: _round(value)
                         for name, value in self.evidence.items()},
        }


class AlertState:
    """Hysteresis state for one (rule, stream) pair."""

    __slots__ = ("rule", "stream", "firing", "pending_since",
                 "clear_since", "peak", "incident")

    def __init__(self, rule: AlertRule, stream: str):
        self.rule = rule
        self.stream = stream
        self.firing = False
        #: Sim time the current uninterrupted breach began.
        self.pending_since: Optional[float] = None
        #: Sim time the current uninterrupted recovery began.
        self.clear_since: Optional[float] = None
        self.peak: Optional[float] = None
        self.incident: Optional[Incident] = None

    def track_peak(self, value: float) -> None:
        rule = self.rule
        if self.peak is None or rule.breaches(value, self.peak):
            self.peak = value
        if self.incident is not None and (
                self.incident.peak is None
                or rule.breaches(value, self.incident.peak)):
            self.incident.peak = value


class AlertEngine:
    """Evaluates an :class:`SLOSpec` against a live pipeline."""

    def __init__(self, pipeline: LivePipeline, spec: SLOSpec,
                 tracer=NULL_TRACER, metrics=None):
        self.pipeline = pipeline
        self.spec = spec
        self.tracer = tracer
        self.metrics = metrics
        #: (rule name, stream) -> AlertState.
        self._states: dict = {}
        #: Closed + open incidents, in fire order.
        self.incidents: list = []
        self.fired = 0
        self.resolved = 0
        self.evaluations = 0
        self._next_incident_id = 1
        #: burn-rate bookkeeping: (rule name, stream) pairs whose
        #: derived indicator nodes exist already.
        self._burn_nodes: dict = {}
        #: smoothed-threshold bookkeeping, same keying.
        self._smooth_nodes: dict = {}

    # -- state lookup -------------------------------------------------------
    def state(self, rule_name: str,
              stream: str) -> Optional[AlertState]:
        return self._states.get((rule_name, stream))

    def active(self) -> list:
        """Currently firing (rule, stream) pairs, sorted."""
        return sorted((rule_name, stream)
                      for (rule_name, stream), st in
                      self._states.items() if st.firing)

    # -- burn-rate plumbing -------------------------------------------------
    def _burn_reader(self, rule: AlertRule, stream: str):
        """Fast/slow windowed-mean nodes over the violation indicator
        of ``stream``, created on first need."""
        key = (rule.name, stream)
        nodes = self._burn_nodes.get(key)
        if nodes is None:
            objective, breaches = rule.objective, rule.breaches
            indicator = self.pipeline.derive(
                f"_slo.{rule.name}.{stream}.violation",
                Mapped(lambda v: 1.0 if breaches(v, objective)
                       else 0.0),
                stream)
            fast = self.pipeline.derive(
                f"_slo.{rule.name}.{stream}.burn_fast",
                WindowedMean(rule.fast_window_s), indicator)
            slow = self.pipeline.derive(
                f"_slo.{rule.name}.{stream}.burn_slow",
                WindowedMean(rule.slow_window_s), indicator)
            nodes = (fast, slow)
            self._burn_nodes[key] = nodes
        return nodes

    def _smooth_reader(self, rule: AlertRule, stream: str):
        """EWMA node over ``stream`` for a smoothed threshold rule,
        created on first need."""
        key = (rule.name, stream)
        node = self._smooth_nodes.get(key)
        if node is None:
            node = self.pipeline.derive(
                f"_slo.{rule.name}.{stream}.ewma",
                Ewma(rule.smooth_tau_s), stream)
            self._smooth_nodes[key] = node
        return node

    # -- rule conditions ----------------------------------------------------
    def _condition(self, rule: AlertRule, stream: str, now: float,
                   firing: bool):
        """(breaching, recovered, observed value) for one stream.

        ``breaching`` uses the fire bound; ``recovered`` uses the
        hysteresis clear bound — between the two bounds an alert
        neither fires anew nor resolves.
        """
        if rule.kind == "absence":
            last = self.pipeline.last_update(stream)
            if last is None:
                return False, True, None  # never armed
            silence = now - last
            return (silence > rule.threshold,
                    silence <= rule.threshold, silence)
        if rule.kind == "burn-rate":
            fast, slow = self._burn_reader(rule, stream)
            fast_burn, slow_burn = fast.read(now), slow.read(now)
            if fast_burn is None or slow_burn is None:
                return False, True, None
            burning = (fast_burn >= rule.threshold
                       and slow_burn >= rule.threshold)
            return burning, not burning, max(fast_burn, slow_burn)
        if rule.smooth_tau_s is not None:
            value = self._smooth_reader(rule, stream).read(now)
        else:
            value = self.pipeline.read(stream, now)
        if value is None:
            return False, not firing, None
        return (rule.breaches(value, rule.threshold),
                not rule.breaches(value, rule.clear_bound), value)

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, now: float) -> None:
        """One evaluation pass over every rule at sim time ``now``."""
        self.evaluations += 1
        for rule in self.spec.rules:
            for stream in self._match(rule):
                self._step(rule, stream, now)

    def _match(self, rule: AlertRule) -> list:
        streams = self.pipeline.match(rule.stream)
        if rule.kind == "absence" and not streams:
            # Absence rules watch for a stream that may exist later;
            # track the literal name so state survives pattern misses.
            if not any(ch in rule.stream for ch in "*?["):
                return [rule.stream]
        return streams

    def _step(self, rule: AlertRule, stream: str,
              now: float) -> None:
        key = (rule.name, stream)
        st = self._states.get(key)
        if st is None:
            st = self._states[key] = AlertState(rule, stream)
        breaching, recovered, value = self._condition(
            rule, stream, now, st.firing)
        if value is not None and rule.kind != "absence":
            st.track_peak(value)
        if not st.firing:
            if breaching:
                if st.pending_since is None:
                    st.pending_since = now
                    st.peak = value
                elif value is not None:
                    st.track_peak(value)
                if now - st.pending_since >= rule.for_s:
                    self._fire(st, now, value)
            else:
                st.pending_since = None
        else:
            if recovered:
                if st.clear_since is None:
                    st.clear_since = now
                if now - st.clear_since >= rule.clear_for_s:
                    self._resolve(st, now)
            else:
                st.clear_since = None

    # -- transitions --------------------------------------------------------
    def _fire(self, st: AlertState, now: float,
              value: Optional[float]) -> None:
        st.firing = True
        st.clear_since = None
        incident = Incident(
            incident_id=self._next_incident_id,
            rule=st.rule.name,
            stream=st.stream,
            severity=st.rule.severity,
            fired_at_s=now,
            peak=st.peak if st.peak is not None else value,
            evidence=self._snapshot_evidence(st.rule, now),
        )
        self._next_incident_id += 1
        st.incident = incident
        self.incidents.append(incident)
        self.fired += 1
        self.tracer.instant(
            "alert.fire", category="slo", track="slo",
            rule=st.rule.name, stream=st.stream,
            severity=st.rule.severity)
        if self.metrics is not None:
            self.metrics.counter("alerts.fired").inc()

    def _resolve(self, st: AlertState, now: float) -> None:
        st.firing = False
        st.pending_since = None
        st.clear_since = None
        st.peak = None
        if st.incident is not None:
            st.incident.resolved_at_s = now
            st.incident = None
        self.resolved += 1
        self.tracer.instant(
            "alert.resolve", category="slo", track="slo",
            rule=st.rule.name, stream=st.stream)
        if self.metrics is not None:
            self.metrics.counter("alerts.resolved").inc()

    def _snapshot_evidence(self, rule: AlertRule,
                           now: float) -> dict:
        evidence = {}
        for pattern in rule.evidence:
            for stream in self.pipeline.match(pattern):
                if stream.startswith("_slo."):
                    continue
                value = self.pipeline.read(stream, now)
                if value is not None:
                    evidence[stream] = value
        return dict(sorted(evidence.items()))

    # -- kernel process -----------------------------------------------------
    def attach(self, sim):
        """Start the evaluation loop as a kernel process."""
        return sim.process(self._run(sim), name="slo-engine")

    def _run(self, sim):
        from ...sim import Interrupt  # lazy: no sim import at module load
        period = self.spec.period_s
        try:
            while True:
                yield sim.timeout(period)
                self.evaluate(sim.now)
        except Interrupt:
            pass

"""The incident timeline: a canonical, byte-deterministic document.

Everything the alert engine saw — fires, resolves, peaks, evidence —
rendered as one JSON document (sorted keys, rounded floats, content
digest) plus a fixed-format text timeline.  Two same-seed runs produce
byte-identical files, so CI can ``cmp`` them.

The document cross-links the post-hoc planes: the ``bottleneck``
section carries the :mod:`repro.obs.analyze` verdict for the same run
(what the system *was* limited by) next to the live alerts (what the
SLO plane *noticed*, and when), and ``detection`` carries the
fault-matching scorecard (:mod:`repro.obs.live.score`) when the run
was a chaos drill.

This module must not import :mod:`repro.sim` (the kernel imports
``NULL_LIVE`` from this package).
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

__all__ = ["incidents_document", "render_incidents_text",
           "write_incidents"]


def _round(value: float, places: int = 6) -> float:
    return round(float(value) + 0.0, places)


def incidents_document(engine, final_time: float,
                       bottleneck: Optional[dict] = None,
                       detection: Optional[dict] = None) -> dict:
    """The canonical incident timeline for one run.

    ``engine`` is the run's :class:`~repro.obs.live.alerts.
    AlertEngine`; ``bottleneck`` the ``obs/analyze`` diagnosis dict
    (None when the run was not analyzed); ``detection`` the chaos
    scorecard (None outside drills).
    """
    spec = engine.spec
    document = {
        "spec": {
            "name": spec.name,
            "digest": spec.digest(),
            "rules": len(spec.rules),
            "period_s": _round(spec.period_s),
        },
        "final_time_s": _round(final_time),
        "evaluations": engine.evaluations,
        "fired": engine.fired,
        "resolved": engine.resolved,
        "incidents": [incident.as_dict()
                      for incident in engine.incidents],
        "bottleneck": bottleneck,
        "detection": detection,
    }
    canonical = json.dumps(document, sort_keys=True,
                           separators=(",", ":"))
    document["digest"] = hashlib.sha256(
        canonical.encode("utf-8")).hexdigest()
    return document


def render_incidents_text(document: dict) -> str:
    """Fixed-format text timeline (byte-identical per seed)."""
    spec = document["spec"]
    lines = [
        f"incident timeline — spec {spec['name']!r} "
        f"({spec['rules']} rules, digest {spec['digest'][:16]}…)",
        f"run: {document['final_time_s']:.3f}s sim, "
        f"{document['evaluations']} evaluations, "
        f"{document['fired']} fired / {document['resolved']} resolved",
        "",
    ]
    if not document["incidents"]:
        lines.append("no incidents")
    for incident in document["incidents"]:
        if incident["open"]:
            span = f"t={incident['fired_at_s']:9.3f}s … (open)"
        else:
            span = (f"t={incident['fired_at_s']:9.3f}s … "
                    f"{incident['resolved_at_s']:9.3f}s")
        peak = "-" if incident["peak"] is None \
            else f"{incident['peak']:.3f}"
        lines.append(
            f"  #{incident['id']:<3d} [{incident['severity']:<4s}] "
            f"{incident['rule']:<18s} {incident['stream']:<32s} "
            f"{span}  peak={peak}")
        for stream, value in incident["evidence"].items():
            lines.append(f"        evidence {stream} = {value:.3f}")
    detection = document.get("detection")
    if detection is not None:
        lines.append("")
        lines.append(
            f"detection vs injected faults: "
            f"{detection['detected']}/{detection['scored']} detected "
            f"({detection['unscored']} fault(s) with no mapped rule)")
        for entry in detection["faults"]:
            if entry["mapped_rules"] == []:
                verdict = "unmapped"
            elif entry["detected"]:
                verdict = (f"detected in "
                           f"{entry['time_to_detect_s']:.3f}s "
                           f"by {entry['matched_rule']}")
            else:
                verdict = "MISSED"
            target = entry["target"] or "-"
            lines.append(
                f"  t=+{entry['at_s']:8.3f}s {entry['kind']:<13s} "
                f"{target:<22s} {verdict}")
    bottleneck = document.get("bottleneck")
    if bottleneck is not None:
        lines.append("")
        lines.append(f"bottleneck verdict (obs/analyze): "
                     f"{bottleneck.get('verdict', '?')}")
    lines.append("")
    lines.append(f"document digest: {document['digest']}")
    return "\n".join(lines)


def write_incidents(document: dict, path) -> None:
    """Write the canonical ``incidents.json`` (sorted keys, compact
    separators, trailing newline — byte-identical per seed)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")

"""Detection scoring: alert fire-times vs the injector's ground truth.

A chaos drill knows exactly what went wrong and when — the fault
schedule is the ground truth the SLO plane is graded against.  For
every injected fault with a mapped alert rule, the score is the
**time-to-detect**: first matching incident fired inside the fault's
detection window, minus the fault's injection time.  A fault whose
alert was *already firing* when it landed (drills overlap faults on
purpose) counts as detected with a zero time-to-detect.

The schedule is duck-typed (iterable of objects with ``at``, ``kind``,
``target``, ``duration``) so this module stays import-light — it must
not import :mod:`repro.sim` or :mod:`repro.chaos` at module level (the
kernel imports ``NULL_LIVE`` from this package).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["FAULT_ALERTS", "score_detection"]

#: fault kind -> alert rule names that should catch it (default spec).
#: ``latency`` is deliberately unmapped: a 120 ms one-way surge is
#: within the staleness budget and must *not* page.
FAULT_ALERTS = {
    "slave-slow": ("staleness", "staleness-burn", "slave-cpu"),
    "partition": ("repl-gap", "staleness", "staleness-burn"),
    "repl-stall": ("repl-gap", "staleness", "staleness-burn"),
    "slave-crash": ("repl-gap", "staleness", "staleness-burn"),
    "master-crash": ("master-unavailable",),
    "latency": (),
}


def _round(value: float, places: int = 6) -> float:
    return round(float(value) + 0.0, places)


def _matches_target(fault, stream: str) -> bool:
    """Slave-targeted faults must be detected *on that slave's*
    stream; link faults and crashes accept any stream."""
    if fault.kind in ("slave-slow", "repl-stall", "slave-crash"):
        return f".{fault.target}." in f".{stream}."
    return True


def score_detection(incidents: list, schedule, offset: float = 0.0,
                    tolerance_s: float = 30.0,
                    fault_alerts: Optional[dict] = None) -> dict:
    """Match alert fire-times against a fault schedule.

    ``incidents`` are :class:`~repro.obs.live.alerts.Incident`
    records; ``schedule`` iterates faults whose ``at`` is relative to
    ``offset`` (the drill's workload start); ``tolerance_s`` bounds
    the detection window past the fault's own duration.
    """
    mapping = FAULT_ALERTS if fault_alerts is None else fault_alerts
    rows = []
    scored = detected_count = 0
    per_kind: dict = {}
    for fault in schedule:
        mapped = list(mapping.get(fault.kind, ()))
        injected_at = offset + fault.at
        window_end = injected_at + fault.duration + tolerance_s
        row = {
            "kind": fault.kind,
            "target": fault.target,
            "at_s": _round(injected_at),
            "mapped_rules": mapped,
            "detected": False,
            "matched_rule": None,
            "matched_stream": None,
            "time_to_detect_s": None,
        }
        if mapped:
            scored += 1
            best = None
            for incident in incidents:
                if incident.rule not in mapped:
                    continue
                if not _matches_target(fault, incident.stream):
                    continue
                resolved = incident.resolved_at_s
                if incident.fired_at_s <= injected_at:
                    # Already firing when the fault landed: detected,
                    # trivially — unless it resolved before injection.
                    if resolved is not None and resolved < injected_at:
                        continue
                    candidate = (0.0, incident)
                elif incident.fired_at_s <= window_end:
                    candidate = (incident.fired_at_s - injected_at,
                                 incident)
                else:
                    continue
                if best is None or candidate[0] < best[0]:
                    best = candidate
            if best is not None:
                ttd, incident = best
                detected_count += 1
                row["detected"] = True
                row["matched_rule"] = incident.rule
                row["matched_stream"] = incident.stream
                row["time_to_detect_s"] = _round(ttd)
                kind_stats = per_kind.setdefault(
                    fault.kind, {"scored": 0, "detected": 0,
                                 "ttd_s": []})
                kind_stats["detected"] += 1
                kind_stats["ttd_s"].append(_round(ttd))
                kind_stats["scored"] += 1
            else:
                kind_stats = per_kind.setdefault(
                    fault.kind, {"scored": 0, "detected": 0,
                                 "ttd_s": []})
                kind_stats["scored"] += 1
        rows.append(row)
    summary = {}
    for kind in sorted(per_kind):
        stats = per_kind[kind]
        ttds = stats["ttd_s"]
        summary[kind] = {
            "scored": stats["scored"],
            "detected": stats["detected"],
            "ttd_s": ttds,
            "max_ttd_s": max(ttds) if ttds else None,
        }
    return {
        "tolerance_s": _round(tolerance_s),
        "scored": scored,
        "detected": detected_count,
        "missed": scored - detected_count,
        "unscored": sum(1 for row in rows if not row["mapped_rules"]),
        "faults": rows,
        "per_kind": summary,
    }

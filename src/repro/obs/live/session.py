"""The live-plane bundle: pipeline + alert engine (+ watchboard) for
one run.

``run_experiment(config, slo=LiveSession(default_slo_spec()))`` (or
``run_drill(..., slo=...)``) attaches the streaming pipeline to the
simulator, taps the run's :class:`~repro.obs.metrics.MetricsRegistry`
so every gauge/counter/histogram update flows through the operator
DAG, and starts the alert engine as a kernel process.  After the run,
:meth:`document` produces the canonical ``incidents.json`` payload.

A bare :class:`~repro.obs.live.slo.SLOSpec` is also accepted wherever
a ``LiveSession`` is — the runners wrap it via :meth:`LiveSession.of`.

This module must not import :mod:`repro.sim` at module level (the
kernel imports ``NULL_LIVE`` from this package).
"""

from __future__ import annotations

from typing import Optional

from .alerts import AlertEngine
from .incidents import incidents_document
from .slo import SLOSpec
from .streams import LivePipeline
from .watch import Watchboard

__all__ = ["LiveSession"]


class LiveSession:
    """Configuration + live handles for one run's SLO plane."""

    def __init__(self, spec: SLOSpec,
                 watch_interval: Optional[float] = None):
        self.spec = spec
        #: None: no watchboard; else the dashboard frame period (s).
        self.watch_interval = watch_interval
        self.pipeline: Optional[LivePipeline] = None
        self.engine: Optional[AlertEngine] = None
        self.board: Optional[Watchboard] = None
        self._sim = None

    @classmethod
    def of(cls, slo) -> "LiveSession":
        """Coerce an ``SLOSpec`` (or pass a session through)."""
        if isinstance(slo, cls):
            return slo
        if isinstance(slo, SLOSpec):
            return cls(slo)
        raise TypeError(f"slo must be an SLOSpec or LiveSession, "
                        f"got {type(slo).__name__}")

    @property
    def attached(self) -> bool:
        return self._sim is not None

    def attach(self, sim) -> "LiveSession":
        """Wire the live plane into ``sim`` (once).

        Call *after* :class:`~repro.obs.Observability` so the metrics
        registry tap sees the run's real registry; a run without
        metrics still works — components can publish directly through
        ``sim.live``.
        """
        if self._sim is not None:
            raise RuntimeError("LiveSession is already attached — "
                               "use one session per run")
        self._sim = sim
        self.pipeline = LivePipeline(now_fn=lambda: sim.now)
        if sim.metrics.enabled:
            self.pipeline.attach_metrics(sim.metrics)
        sim.live = self.pipeline
        self.engine = AlertEngine(self.pipeline, self.spec,
                                  tracer=sim.tracer,
                                  metrics=sim.metrics
                                  if sim.metrics.enabled else None)
        self.engine.attach(sim)
        if self.watch_interval is not None:
            self.board = Watchboard(self.pipeline, self.engine,
                                    interval=self.watch_interval)
            self.board.attach(sim)
        return self

    @property
    def incidents(self) -> list:
        return self.engine.incidents if self.engine is not None \
            else []

    def document(self, final_time: float,
                 bottleneck: Optional[dict] = None,
                 detection: Optional[dict] = None) -> dict:
        """The canonical incident timeline for this run."""
        if self.engine is None:
            raise RuntimeError("LiveSession was never attached to a "
                               "run — pass it to run_experiment")
        return incidents_document(self.engine, final_time,
                                  bottleneck=bottleneck,
                                  detection=detection)

    def render_watch(self) -> str:
        """The watchboard transcript (empty without watch_interval)."""
        return self.board.render() if self.board is not None else ""

"""Declarative SLOs: alert rules over live streams.

An :class:`SLOSpec` is data, not code — a named set of
:class:`AlertRule` records that the :class:`~repro.obs.live.alerts.
AlertEngine` evaluates against a :class:`~repro.obs.live.streams.
LivePipeline` at sim-time.  Specs round-trip through plain dicts
(:meth:`SLOSpec.as_dict` / :meth:`SLOSpec.from_dict`) so they can be
loaded from a JSON file (:func:`load_slo_file`), and carry a canonical
digest so ``incidents.json`` records exactly which policy produced it.

Three rule kinds:

* ``threshold`` — the stream's current value breaches a bound and
  holds it for ``for_s`` sim-seconds; resolves with hysteresis (a
  separate ``clear`` bound held for ``clear_for_s``).
* ``absence`` — the stream stops updating for more than ``threshold``
  sim-seconds (dead-man switch; e.g. heartbeat rows stop arriving when
  the master dies).  A stream that has never updated is not absent —
  the rule arms on first sample.
* ``burn-rate`` — multi-window error-budget burn: each sample is
  mapped to a violation indicator (1.0 when it breaches
  ``objective``), and the rule fires when the violating *fraction*
  over both a fast and a slow window exceeds ``burn_threshold`` —
  fast-window spikes alone don't page, slow-window averages alone
  can't hide a sustained breach.

This module must not import :mod:`repro.sim` (the kernel imports
``NULL_LIVE`` from this package).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["AlertRule", "SLOSpec", "load_slo_file",
           "default_slo_spec", "RULE_KINDS", "SEVERITIES"]

RULE_KINDS = ("threshold", "absence", "burn-rate")
SEVERITIES = ("page", "warn", "info")
_COMPARISONS = ("gt", "lt")


@dataclass(frozen=True)
class AlertRule:
    """One alert rule; immutable so specs hash and share safely.

    ``stream`` may be an ``fnmatch`` pattern — each matching stream
    gets its own independent alert state (per-slave staleness pages
    name the slave, not the fleet).
    """

    name: str
    kind: str
    stream: str
    #: Fire bound: value bound for ``threshold``/``burn-rate`` rules
    #: (per ``comparison``), max silent sim-seconds for ``absence``.
    threshold: float
    comparison: str = "gt"
    #: Breach must hold this long before the alert fires.
    for_s: float = 0.0
    #: Hysteresis: resolve bound (defaults to ``threshold``) held for
    #: ``clear_for_s`` before the alert resolves.
    clear: Optional[float] = None
    clear_for_s: float = 0.0
    severity: str = "page"
    #: burn-rate only: a sample violates the objective when it
    #: breaches this value (per ``comparison``).
    objective: Optional[float] = None
    fast_window_s: float = 5.0
    slow_window_s: float = 60.0
    #: threshold only: evaluate an EWMA of the stream (this sim-time
    #: constant) instead of the raw value — one isolated spike can't
    #: page, a sustained shift can't hide between samples.
    smooth_tau_s: Optional[float] = None
    #: Streams snapshotted into the incident's evidence on fire.
    evidence: Tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("alert rule needs a name")
        if self.kind not in RULE_KINDS:
            raise ValueError(f"rule {self.name!r}: kind must be one "
                             f"of {RULE_KINDS}, got {self.kind!r}")
        if self.comparison not in _COMPARISONS:
            raise ValueError(f"rule {self.name!r}: comparison must "
                             f"be one of {_COMPARISONS}, got "
                             f"{self.comparison!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"rule {self.name!r}: severity must be "
                             f"one of {SEVERITIES}, got "
                             f"{self.severity!r}")
        if self.for_s < 0 or self.clear_for_s < 0:
            raise ValueError(f"rule {self.name!r}: hold durations "
                             f"must be >= 0")
        if self.kind == "burn-rate":
            if self.objective is None:
                raise ValueError(f"rule {self.name!r}: burn-rate "
                                 f"rules need an objective")
            if not 0.0 < self.threshold <= 1.0:
                raise ValueError(f"rule {self.name!r}: burn-rate "
                                 f"threshold is a fraction in "
                                 f"(0, 1], got {self.threshold}")
            if not 0 < self.fast_window_s <= self.slow_window_s:
                raise ValueError(f"rule {self.name!r}: windows must "
                                 f"satisfy 0 < fast <= slow")
        if self.kind == "absence" and self.threshold <= 0:
            raise ValueError(f"rule {self.name!r}: absence threshold "
                             f"(max silence) must be positive")
        if self.smooth_tau_s is not None:
            if self.kind != "threshold":
                raise ValueError(f"rule {self.name!r}: smoothing "
                                 f"applies to threshold rules only")
            if self.smooth_tau_s <= 0:
                raise ValueError(f"rule {self.name!r}: smooth_tau_s "
                                 f"must be positive")

    @property
    def clear_bound(self) -> float:
        """Resolve bound; equal to the fire bound when unset."""
        return self.threshold if self.clear is None else self.clear

    def breaches(self, value: float, bound: float) -> bool:
        """Does ``value`` breach ``bound`` under this comparison?"""
        return value > bound if self.comparison == "gt" \
            else value < bound

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "kind": self.kind,
            "stream": self.stream,
            "threshold": self.threshold,
            "comparison": self.comparison,
            "for_s": self.for_s,
            "clear": self.clear,
            "clear_for_s": self.clear_for_s,
            "severity": self.severity,
            "evidence": list(self.evidence),
            "description": self.description,
        }
        if self.kind == "burn-rate":
            record["objective"] = self.objective
            record["fast_window_s"] = self.fast_window_s
            record["slow_window_s"] = self.slow_window_s
        if self.smooth_tau_s is not None:
            record["smooth_tau_s"] = self.smooth_tau_s
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "AlertRule":
        known = {"name", "kind", "stream", "threshold", "comparison",
                 "for_s", "clear", "clear_for_s", "severity",
                 "objective", "fast_window_s", "slow_window_s",
                 "smooth_tau_s", "evidence", "description"}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"alert rule has unknown fields: "
                             f"{sorted(unknown)}")
        fields = dict(record)
        fields["evidence"] = tuple(fields.get("evidence") or ())
        return cls(**fields)


@dataclass(frozen=True)
class SLOSpec:
    """A named, digestible set of alert rules."""

    name: str
    rules: Tuple[AlertRule, ...]
    #: Engine evaluation period in sim-seconds.
    period_s: float = 0.5

    def __post_init__(self):
        if not self.name:
            raise ValueError("SLO spec needs a name")
        if self.period_s <= 0:
            raise ValueError(f"spec {self.name!r}: period_s must be "
                             f"positive, got {self.period_s}")
        seen = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ValueError(f"spec {self.name!r}: duplicate "
                                 f"rule name {rule.name!r}")
            seen.add(rule.name)

    def as_dict(self) -> dict:
        return {"name": self.name, "period_s": self.period_s,
                "rules": [rule.as_dict() for rule in self.rules]}

    @classmethod
    def from_dict(cls, record: dict) -> "SLOSpec":
        known = {"name", "period_s", "rules"}
        unknown = set(record) - known
        if unknown:
            raise ValueError(f"SLO spec has unknown fields: "
                             f"{sorted(unknown)}")
        return cls(name=record["name"],
                   period_s=record.get("period_s", 0.5),
                   rules=tuple(AlertRule.from_dict(rule)
                               for rule in record.get("rules", ())))

    def digest(self) -> str:
        canonical = json.dumps(self.as_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_slo_file(path) -> SLOSpec:
    """Load an :class:`SLOSpec` from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return SLOSpec.from_dict(json.load(handle))


def default_slo_spec() -> SLOSpec:
    """The stock policy used by drills, CI smoke and the CLI.

    Thresholds are tuned against the default chaos drill (see
    EXPERIMENTS.md ALERT): staleness pages catch slave-slow,
    partition, repl-stall and slave-crash faults; the heartbeat
    dead-man switch catches master crashes; utilization rules warn on
    saturation before staleness pages.
    """
    return SLOSpec(
        name="default",
        period_s=0.5,
        rules=(
            AlertRule(
                name="staleness",
                kind="threshold",
                stream="slave.*.seconds_behind",
                threshold=2.0,
                for_s=2.0,
                clear=1.0,
                clear_for_s=5.0,
                severity="page",
                evidence=("slave.*.seconds_behind",
                          "slave.*.relay_backlog",
                          "master.binlog_head"),
                description="replica staleness above the 2 s bound",
            ),
            AlertRule(
                name="staleness-burn",
                kind="burn-rate",
                stream="slave.*.seconds_behind",
                objective=1.0,
                threshold=0.5,
                fast_window_s=5.0,
                slow_window_s=30.0,
                for_s=0.0,
                clear_for_s=10.0,
                severity="warn",
                evidence=("slave.*.seconds_behind",),
                description="staleness error budget burning in both "
                            "the 5 s and 30 s windows",
            ),
            AlertRule(
                name="repl-gap",
                kind="threshold",
                stream="slave.*.repl_gap",
                threshold=15.0,
                for_s=2.5,
                clear=10.0,
                clear_for_s=5.0,
                severity="page",
                evidence=("slave.*.repl_gap",
                          "slave.*.relay_backlog",
                          "master.binlog_head"),
                description="committed-but-unapplied event gap — "
                            "catches partitions and stalled dump "
                            "connections the relay-log oracle "
                            "cannot see",
            ),
            AlertRule(
                name="slave-cpu",
                kind="threshold",
                stream="slave.*.cpu_util",
                threshold=0.45,
                smooth_tau_s=5.0,
                for_s=5.0,
                clear=0.3,
                clear_for_s=7.5,
                severity="warn",
                evidence=("slave.*.cpu_util", "slave.*.cpu_queue"),
                description="sustained slave CPU pressure (EWMA) — "
                            "a degraded instance or a read hot spot",
            ),
            AlertRule(
                name="master-cpu",
                kind="threshold",
                stream="master.cpu_util",
                threshold=0.9,
                for_s=10.0,
                clear=0.75,
                clear_for_s=10.0,
                severity="warn",
                evidence=("master.cpu_util", "master.cpu_queue"),
                description="master CPU saturated (the paper's "
                            "write knee)",
            ),
            AlertRule(
                name="master-unavailable",
                kind="absence",
                stream="heartbeat.beat",
                threshold=3.0,
                clear_for_s=2.0,
                severity="page",
                evidence=("master.binlog_head",),
                description="heartbeat rows stopped arriving at the "
                            "master",
            ),
        ),
    )

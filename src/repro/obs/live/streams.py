"""Streaming aggregation over live telemetry: an explicit operator DAG.

The post-hoc planes (``obs/analyze``, the waterfall, the bottleneck
verdict) re-scan recorded :class:`~repro.metrics.TimeSeries` after a
run ends.  The *live* plane cannot afford that: an SLO evaluated every
sim-second over a gauge with tens of thousands of samples would turn
each evaluation into a scan.  This module keeps every aggregate
**incremental**: a :class:`Node` wraps one operator whose state updates
in O(1)-ish work per published sample, and nodes form an explicit DAG
so derived streams (per-slave staleness p99, pool-wait share) compose
from primitive ones.

Everything is keyed on *simulated* time — the pipeline never reads a
wall clock, so two same-seed runs push byte-identical sample sequences
through byte-identical operator states.

Disabled path: :data:`NULL_LIVE` (``enabled`` is False) is the
process-wide null pipeline every :class:`~repro.sim.Simulator` starts
with, mirroring ``NULL_TRACER``/``NULL_METRICS`` — publish sites pay a
single truthiness guard when no SLO spec is attached.
"""

from __future__ import annotations

import math
from fnmatch import fnmatchcase
from typing import Callable, Iterable, Optional, Sequence

__all__ = [
    "Operator", "Latest", "Ewma", "WindowedRate", "WindowedMean",
    "SlidingMax", "SlidingMin", "SlidingQuantile", "Mapped", "Combine",
    "Node", "LivePipeline", "NullLivePipeline", "NULL_LIVE",
    "STALENESS_BUCKETS",
]

#: Staleness/latency-flavoured histogram edges, in seconds, for the
#: sliding-quantile operator (upper edges; one +inf bucket follows).
STALENESS_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                     2.0, 5.0, 10.0, 30.0, 60.0)


class Operator:
    """Incremental aggregate: ``update`` per sample, ``read`` at any
    later sim time.  ``read`` may return None before the first sample
    (or when the window is empty)."""

    def update(self, t: float, value: float, slot: int = 0) -> None:
        raise NotImplementedError

    def read(self, now: float) -> Optional[float]:
        raise NotImplementedError


class Latest(Operator):
    """Identity: the most recent sample (gauges are step functions)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Optional[float] = None

    def update(self, t: float, value: float, slot: int = 0) -> None:
        self.value = value

    def read(self, now: float) -> Optional[float]:
        return self.value


class Ewma(Operator):
    """Exponentially weighted moving average with a sim-time constant.

    The decay is continuous-time (``alpha = 1 - exp(-dt / tau)``), so
    irregular sampling — a monitor that misses beats during a partition
    — still weights history by *elapsed sim time*, not sample count.
    """

    __slots__ = ("tau", "value", "_last_t")

    def __init__(self, tau: float):
        if tau <= 0:
            raise ValueError(f"ewma tau must be positive, got {tau}")
        self.tau = tau
        self.value: Optional[float] = None
        self._last_t: Optional[float] = None

    def update(self, t: float, value: float, slot: int = 0) -> None:
        if self.value is None:
            self.value = value
        else:
            dt = max(t - self._last_t, 0.0)
            alpha = 1.0 - math.exp(-dt / self.tau)
            self.value += alpha * (value - self.value)
        self._last_t = t

    def read(self, now: float) -> Optional[float]:
        return self.value


class _WindowDeque:
    """Shared eviction for trailing-window operators: samples with
    ``t <= now - window`` fall out."""

    __slots__ = ("window", "entries")

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.entries: list[tuple[float, float]] = []

    def evict(self, now: float) -> None:
        cutoff = now - self.window
        entries = self.entries
        drop = 0
        for t, _value in entries:
            if t > cutoff:
                break
            drop += 1
        if drop:
            del entries[:drop]


class WindowedRate(Operator):
    """Updates per second over a trailing sim-time window.

    ``mode="count"`` rates the *number* of updates (event streams);
    ``mode="delta"`` rates the *increase* of a monotonic total
    (counter streams) — the publish delivers the cumulative value and
    the operator differences it.
    """

    __slots__ = ("_window", "mode", "_last_total")

    def __init__(self, window: float, mode: str = "count"):
        if mode not in ("count", "delta"):
            raise ValueError(f"mode must be 'count' or 'delta', "
                             f"got {mode!r}")
        self._window = _WindowDeque(window)
        self.mode = mode
        self._last_total: Optional[float] = None

    def update(self, t: float, value: float, slot: int = 0) -> None:
        if self.mode == "delta":
            previous = self._last_total
            self._last_total = value
            weight = value - previous if previous is not None else 0.0
        else:
            weight = 1.0
        self._window.entries.append((t, weight))
        self._window.evict(t)

    def read(self, now: float) -> Optional[float]:
        self._window.evict(now)
        total = math.fsum(w for _t, w in self._window.entries)
        return total / self._window.window


class WindowedMean(Operator):
    """Arithmetic mean of the samples in a trailing window (None when
    the window holds no samples) — the burn-rate rules' workhorse over
    violation-indicator streams."""

    __slots__ = ("_window",)

    def __init__(self, window: float):
        self._window = _WindowDeque(window)

    def update(self, t: float, value: float, slot: int = 0) -> None:
        self._window.entries.append((t, value))
        self._window.evict(t)

    def read(self, now: float) -> Optional[float]:
        self._window.evict(now)
        entries = self._window.entries
        if not entries:
            return None
        return math.fsum(v for _t, v in entries) / len(entries)


class _SlidingExtreme(Operator):
    """Monotonic-deque max/min over a trailing window."""

    __slots__ = ("_window", "_better")

    def __init__(self, window: float, better):
        self._window = _WindowDeque(window)
        self._better = better

    def update(self, t: float, value: float, slot: int = 0) -> None:
        entries = self._window.entries
        while entries and not self._better(entries[-1][1], value):
            entries.pop()
        entries.append((t, value))
        self._window.evict(t)

    def read(self, now: float) -> Optional[float]:
        self._window.evict(now)
        entries = self._window.entries
        return entries[0][1] if entries else None


class SlidingMax(_SlidingExtreme):
    """Maximum over a trailing sim-time window."""

    def __init__(self, window: float):
        super().__init__(window, lambda kept, new: kept > new)


class SlidingMin(_SlidingExtreme):
    """Minimum over a trailing sim-time window."""

    def __init__(self, window: float):
        super().__init__(window, lambda kept, new: kept < new)


class SlidingQuantile(Operator):
    """Sliding quantile via fixed-bucket histogram merge.

    Time is cut into ``slots`` sub-windows of ``window / slots``
    seconds; each keeps one fixed-edge histogram.  An update lands in
    its sub-window's histogram in O(log buckets); a read merges the
    live sub-windows and walks the cumulative counts.  The estimate is
    the smallest bucket upper edge covering the requested rank —
    deterministic, bounded memory, and conservative (never under the
    true quantile by more than one bucket's width).
    """

    __slots__ = ("q", "window", "edges", "slots", "_granularity",
                 "_ring", "_counts")

    def __init__(self, q: float, window: float,
                 edges: Sequence[float] = STALENESS_BUCKETS,
                 slots: int = 16):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if list(edges) != sorted(edges) or not edges:
            raise ValueError(f"edges must be non-empty and sorted, "
                             f"got {edges!r}")
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.q = q
        self.window = window
        self.edges = tuple(edges)
        self.slots = slots
        self._granularity = window / slots
        #: slot index -> counts per bucket (+1 overflow), ordered by
        #: insertion (slot indexes only grow: sim time is monotonic).
        self._ring: dict[int, list[int]] = {}

    def _slot(self, t: float) -> int:
        return int(t // self._granularity)

    def _evict(self, now: float) -> None:
        # A sub-window is live while any part of it can still hold
        # samples newer than ``now - window``.
        oldest_live = self._slot(now) - self.slots
        ring = self._ring
        for index in [index for index in ring if index <= oldest_live]:
            del ring[index]

    def update(self, t: float, value: float, slot: int = 0) -> None:
        counts = self._ring.get(self._slot(t))
        if counts is None:
            counts = [0] * (len(self.edges) + 1)
            self._ring[self._slot(t)] = counts
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        counts[lo] += 1
        self._evict(t)

    def read(self, now: float) -> Optional[float]:
        self._evict(now)
        if not self._ring:
            return None
        merged = [0] * (len(self.edges) + 1)
        for index in sorted(self._ring):
            for bucket, count in enumerate(self._ring[index]):
                merged[bucket] += count
        total = sum(merged)
        if total == 0:
            return None
        rank = self.q * total
        running = 0
        for bucket, count in enumerate(merged):
            running += count
            if running >= rank:
                if bucket < len(self.edges):
                    return self.edges[bucket]
                return math.inf  # beyond the last edge
        return math.inf


class Mapped(Operator):
    """Pointwise transform of the parent stream (e.g. a violation
    indicator: 1.0 when over target, else 0.0)."""

    __slots__ = ("fn", "value")

    def __init__(self, fn: Callable[[float], float]):
        self.fn = fn
        self.value: Optional[float] = None

    def update(self, t: float, value: float, slot: int = 0) -> None:
        self.value = self.fn(value)

    def read(self, now: float) -> Optional[float]:
        return self.value


class Combine(Operator):
    """N-ary combination of parent streams by positional slot.

    Holds the latest value per slot; reads None until every slot has
    reported (a share of nothing is not zero, it is unknown).
    """

    __slots__ = ("fn", "_values")

    def __init__(self, fn: Callable[..., float], arity: int):
        if arity < 1:
            raise ValueError(f"arity must be >= 1, got {arity}")
        self.fn = fn
        self._values: list[Optional[float]] = [None] * arity

    def update(self, t: float, value: float, slot: int = 0) -> None:
        self._values[slot] = value

    def read(self, now: float) -> Optional[float]:
        if any(value is None for value in self._values):
            return None
        return self.fn(*self._values)


class Node:
    """One stream in the DAG: an operator plus its downstream edges."""

    __slots__ = ("name", "op", "children", "last_time", "updates")

    def __init__(self, name: str, op: Operator):
        self.name = name
        self.op = op
        #: Downstream edges as ``(child node, child slot)``.
        self.children: list[tuple["Node", int]] = []
        self.last_time: Optional[float] = None
        self.updates = 0

    def receive(self, slot: int, t: float, value: float) -> None:
        self.op.update(t, value, slot)
        self.last_time = t
        self.updates += 1
        if self.children:
            out = self.op.read(t)
            if out is not None:
                for child, child_slot in self.children:
                    child.receive(child_slot, t, out)

    def read(self, now: float) -> Optional[float]:
        return self.op.read(now)

    def __repr__(self) -> str:
        return f"<Node {self.name!r} updates={self.updates}>"


class LivePipeline:
    """Named streams + derivation: the live telemetry bus.

    Sources appear on first publish (or are pre-declared); derived
    nodes are added with :meth:`derive`/:meth:`combine`, which can only
    point *at existing nodes* — the graph is acyclic by construction.
    """

    enabled = True

    def __init__(self, now_fn: Optional[Callable[[], float]] = None):
        self._now = now_fn if now_fn is not None else (lambda: 0.0)
        self._nodes: dict[str, Node] = {}
        #: Publishes routed through :meth:`publish` (taps + direct).
        self.published = 0

    # -- building ----------------------------------------------------------
    def source(self, name: str) -> Node:
        """The source node for ``name`` (created on first use)."""
        node = self._nodes.get(name)
        if node is None:
            node = Node(name, Latest())
            self._nodes[name] = node
        return node

    def _add(self, name: str, node: Node) -> Node:
        if name in self._nodes:
            raise ValueError(f"stream {name!r} already exists")
        self._nodes[name] = node
        return node

    def derive(self, name: str, op: Operator,
               parent: "str | Node") -> Node:
        """A new stream: ``op`` applied to ``parent``'s updates."""
        parent_node = self.source(parent) if isinstance(parent, str) \
            else parent
        node = self._add(name, Node(name, op))
        parent_node.children.append((node, 0))
        return node

    def combine(self, name: str, fn: Callable[..., float],
                parents: Iterable["str | Node"]) -> Node:
        """A new stream combining several parents positionally."""
        parent_nodes = [self.source(p) if isinstance(p, str) else p
                        for p in parents]
        node = self._add(name, Node(name, Combine(fn,
                                                  len(parent_nodes))))
        for slot, parent_node in enumerate(parent_nodes):
            parent_node.children.append((node, slot))
        return node

    # -- feeding -----------------------------------------------------------
    def publish(self, name: str, value: float,
                t: Optional[float] = None) -> None:
        """Push one sample into ``name``'s source node (created on
        first publish) and through its downstream operators."""
        self.published += 1
        self.source(name).receive(0, self._now() if t is None else t,
                                  float(value))

    def attach_metrics(self, registry) -> None:
        """Tap every instrument of ``registry`` (current and future):
        gauge sets, counter totals and histogram observations flow in
        as publishes under the metric's name."""
        registry.on_update(self._on_metric)

    def _on_metric(self, name: str, kind: str, value: float) -> None:
        self.publish(name, value)

    # -- reading -----------------------------------------------------------
    def get(self, name: str) -> Optional[Node]:
        return self._nodes.get(name)

    def read(self, name: str, now: float) -> Optional[float]:
        node = self._nodes.get(name)
        return node.read(now) if node is not None else None

    def last_update(self, name: str) -> Optional[float]:
        node = self._nodes.get(name)
        return node.last_time if node is not None else None

    def match(self, pattern: str) -> list[str]:
        """Stream names matching an ``fnmatch`` pattern, sorted."""
        if any(ch in pattern for ch in "*?["):
            return sorted(name for name in self._nodes
                          if fnmatchcase(name, pattern))
        return [pattern] if pattern in self._nodes else []

    def names(self) -> list[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes


class NullLivePipeline:
    """The disabled pipeline: publish sites pay one truthiness guard."""

    enabled = False
    published = 0

    def publish(self, name, value, t=None):
        pass

    def get(self, name):
        return None

    def read(self, name, now):
        return None

    def last_update(self, name):
        return None

    def match(self, pattern):
        return []

    def names(self):
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name) -> bool:
        return False


#: Process-wide singleton; ``Simulator`` starts with this attached.
NULL_LIVE = NullLivePipeline()

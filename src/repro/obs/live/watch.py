"""The watchboard: a periodic text dashboard of live streams.

``repro watch`` renders what an operator's terminal would show — every
public stream's current value plus the alerts firing right now —
sampled on a fixed sim-time interval.  Frames are collected during the
run and printed afterwards; under a fixed seed the concatenated output
is byte-identical, so the dashboard itself is a testable artifact.

This module must not import :mod:`repro.sim` at module level (the
kernel imports ``NULL_LIVE`` from this package).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Watchboard"]


class Watchboard:
    """Collects fixed-format dashboard frames as a kernel process."""

    def __init__(self, pipeline, engine=None, interval: float = 10.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive, "
                             f"got {interval}")
        self.pipeline = pipeline
        self.engine = engine
        self.interval = interval
        self.frames: list = []
        self._process = None

    def attach(self, sim):
        if self._process is not None:
            raise RuntimeError("watchboard already started")
        self._process = sim.process(self._run(sim), name="watchboard")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def frame_now(self, now: float) -> str:
        """Render one frame at sim time ``now`` (and keep it)."""
        lines = [f"── watch t={now:10.3f}s " + "─" * 24]
        names = [name for name in self.pipeline.names()
                 if not name.startswith("_slo.")]
        if not names:
            lines.append("  (no streams yet)")
        for name in names:
            value = self.pipeline.read(name, now)
            rendered = "      -" if value is None \
                else f"{value:12.3f}"
            lines.append(f"  {name:<36s} {rendered}")
        if self.engine is not None:
            active = self.engine.active()
            if active:
                lines.append(f"  alerts firing: {len(active)}")
                for rule_name, stream in active:
                    lines.append(f"    ! {rule_name:<18s} {stream}")
            else:
                lines.append("  alerts firing: 0")
        frame = "\n".join(lines)
        self.frames.append(frame)
        return frame

    def render(self) -> str:
        """Every collected frame, newline-joined."""
        return "\n".join(self.frames)

    def _run(self, sim):
        from ...sim import Interrupt  # lazy: keep module sim-free
        try:
            while True:
                yield sim.timeout(self.interval)
                self.frame_now(sim.now)
        except Interrupt:
            return

"""Sim-time metrics: a registry of counters, gauges and histograms.

Components publish operational numbers here (pool waits, relay
backlog, CPU queue depth, per-op latency) instead of keeping them only
in private dataclasses, so one exporter can dump every signal of a run.
Gauges keep their full (sim-time, value) history in a
:class:`~repro.metrics.TimeSeries`, which makes windowed queries cheap
(bisect) and the export deterministic.

Like the tracer, the registry has a null twin: :data:`NULL_METRICS`
(``enabled`` is False) hands out shared no-op instruments, so
publication sites are a guard check or a couple of no-op calls.
"""

from __future__ import annotations

from sys import intern
from typing import Callable, Optional, Sequence

from ..metrics import TimeSeries

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetrics", "NULL_METRICS", "DEFAULT_BUCKETS"]

#: Latency-flavoured histogram bounds, in seconds (upper edges; one
#: implicit +inf bucket follows).
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_subs")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        #: Live-pipeline taps; None (one falsy guard) when untapped.
        self._subs = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative "
                             f"increment {amount!r}")
        self.value += amount
        subs = self._subs
        if subs:
            for callback in subs:
                callback(self.name, "counter", self.value)

    def snapshot(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "value": self.value}


class Gauge:
    """A sampled value with full sim-time history."""

    __slots__ = ("name", "series", "_now", "_subs")

    kind = "gauge"

    def __init__(self, name: str, now_fn: Callable[[], float]):
        self.name = name
        self.series = TimeSeries()
        self._now = now_fn
        self._subs = None

    def set(self, value: float) -> None:
        value = float(value)
        self.series.record(self._now(), value)
        subs = self._subs
        if subs:
            for callback in subs:
                callback(self.name, "gauge", value)

    @property
    def value(self) -> float:
        """Most recent sample (0.0 before the first ``set``)."""
        return self.series.values[-1] if len(self.series) else 0.0

    def snapshot(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "value": self.value, "samples": len(self.series),
                "times": list(self.series.times),
                "values": list(self.series.values)}


class Histogram:
    """Bucketed observations with count and sum."""

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "_subs")

    kind = "histogram"

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r}: buckets must be "
                             f"sorted, got {buckets!r}")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self._subs = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        subs = self._subs
        if subs:
            for callback in subs:
                callback(self.name, "histogram", value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "count": self.count, "sum": self.total,
                "buckets": list(self.buckets),
                "counts": list(self.counts)}


class MetricsRegistry:
    """Named instruments, get-or-create, deterministic export order."""

    enabled = True

    def __init__(self, now_fn: Optional[Callable[[], float]] = None):
        #: Sim-clock source for gauge timestamps; defaults to a frozen
        #: zero clock so a standalone registry still works.
        self._now = now_fn if now_fn is not None else (lambda: 0.0)
        self._instruments: dict = {}
        #: ``(name, kind, value)`` callbacks fanned out to every
        #: instrument (current and future) by :meth:`on_update`.
        self._listeners: list = []

    def _get(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            name = intern(name)
            instrument = factory()
            if self._listeners:
                instrument._subs = list(self._listeners)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise ValueError(
                f"metric {name!r} is a {instrument.kind}, not a "
                f"{kind.kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, self._now))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._get(name, Histogram,
                         lambda: Histogram(name, buckets))

    def on_update(self, callback) -> None:
        """Subscribe ``callback(name, kind, value)`` to every
        instrument update: counter totals after ``inc``, gauge samples
        on ``set``, raw histogram observations.  Applies to existing
        instruments and any created later.  Untapped instruments keep
        ``_subs`` None, so publish sites pay one falsy guard."""
        self._listeners.append(callback)
        for instrument in self._instruments.values():
            if instrument._subs is None:
                instrument._subs = [callback]
            else:
                instrument._subs.append(callback)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> list[dict]:
        """Every instrument's state, sorted by name."""
        return [self._instruments[name].snapshot()
                for name in sorted(self._instruments)]


class _NullInstrument:
    """Counter/gauge/histogram lookalike that ignores everything."""

    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: shared no-op instruments."""

    enabled = False

    def counter(self, name):
        return _NULL_INSTRUMENT

    def gauge(self, name):
        return _NULL_INSTRUMENT

    def histogram(self, name, buckets=DEFAULT_BUCKETS):
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def __contains__(self, name) -> bool:
        return False

    def snapshot(self) -> list:
        return []


#: Process-wide singleton; ``Simulator`` starts with this attached.
NULL_METRICS = NullMetrics()

"""The observability bundle: tracer + metrics + kernel profiler,
attached to one simulator for one run.

``run_experiment(config, observe=Observability())`` turns the whole
pipeline's instrumentation on; afterwards :meth:`write_artifacts`
drops four files::

    trace.json     Chrome trace-event JSON (open in Perfetto)
    spans.jsonl    one finished span per line
    metrics.jsonl  one instrument snapshot per line
    profile.txt    the kernel "where did simulated time go" table

Everything is keyed off simulated time, so the artifacts are a pure
function of the experiment config (seed included).
"""

from __future__ import annotations

import os
from typing import Optional

from .export import chrome_trace, metrics_jsonl, spans_jsonl, trace_meta
from .kernelprof import KernelProfiler, render_profile
from .metrics import MetricsRegistry
from .tracer import Tracer

__all__ = ["Observability"]


class Observability:
    """Configuration + live handles for one observed run."""

    def __init__(self, trace: bool = True, metrics: bool = True,
                 profile: bool = True,
                 monitor_period: Optional[float] = 5.0):
        self._want_trace = trace
        self._want_metrics = metrics
        self._want_profile = profile
        #: Period of the ClusterMonitor the runner starts for observed
        #: runs (None: no monitor, gauges stay empty).
        self.monitor_period = monitor_period
        self.tracer: Optional[Tracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.profiler: Optional[KernelProfiler] = None
        self._sim = None

    @property
    def attached(self) -> bool:
        return self._sim is not None

    def attach(self, sim) -> "Observability":
        """Wire the requested recorders into ``sim`` (once)."""
        if self._sim is not None:
            raise RuntimeError("Observability is already attached — "
                               "use one bundle per run")
        self._sim = sim
        if self._want_trace:
            self.tracer = Tracer(sim)
            sim.tracer = self.tracer
        if self._want_metrics:
            self.metrics = MetricsRegistry(now_fn=lambda: sim.now)
            sim.metrics = self.metrics
        if self._want_profile:
            self.profiler = KernelProfiler()
            sim.profiler = self.profiler
        return self

    def finalize(self) -> None:
        """Freeze the trace (drop any teardown-time span ends)."""
        if self.tracer is not None:
            self.tracer.close()

    @property
    def final_sim_time(self) -> Optional[float]:
        """``sim.now`` of the attached run (None before attach)."""
        return self._sim.now if self._sim is not None else None

    def meta(self) -> dict:
        """The trace-health rider (dropped spans, profiler residue)."""
        if self.tracer is None:
            raise RuntimeError("tracing was not enabled")
        return trace_meta(self.tracer, profiler=self.profiler,
                          final_sim_time=self.final_sim_time)

    # -- artifacts -----------------------------------------------------------
    def render_profile(self) -> str:
        if self.profiler is None:
            raise RuntimeError("profiling was not enabled")
        return render_profile(self.profiler)

    def write_artifacts(self, directory: str) -> dict[str, str]:
        """Write every enabled artifact under ``directory``; returns
        ``{artifact name: path}``."""
        if not self.attached:
            raise RuntimeError("Observability was never attached to a "
                               "run — pass it to run_experiment")
        os.makedirs(directory, exist_ok=True)
        paths: dict[str, str] = {}

        def write(name: str, text: str) -> None:
            path = os.path.join(directory, name)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
            paths[name] = path

        if self.tracer is not None:
            write("trace.json", chrome_trace(
                self.tracer, profiler=self.profiler,
                metrics=self.metrics,
                final_sim_time=self.final_sim_time))
            write("spans.jsonl", spans_jsonl(self.tracer,
                                             meta=self.meta()))
        if self.metrics is not None:
            write("metrics.jsonl", metrics_jsonl(self.metrics))
        if self.profiler is not None:
            write("profile.txt", render_profile(self.profiler) + "\n")
        return paths

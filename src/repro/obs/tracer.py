"""Sim-time tracing: spans, per-process context propagation, and the
zero-cost disabled path.

A :class:`Span` is one named interval of **simulated** time — there is
deliberately no wall-clock anywhere in this module, so two runs with
the same seed produce byte-identical traces.  Spans form trees: a span
opened while another span of the *same simulation process* is open
becomes its child (context propagation keyed on
``Simulator.active_process``, which is how a single-threaded
discrete-event kernel spells thread-local storage).

Two opening APIs with different proof obligations:

* :meth:`Tracer.span` — a *scoped* span: the opener must close it on
  every path, either as a context manager (preferred) or via an
  explicit ``end()``.  The simlint rule **OBS001** checks exactly this
  pairing, the way FLW001 checks ``pool.acquire``/``release``.
* :meth:`Tracer.open_span` — a *flow* span whose ownership transfers
  to whoever observes the matching completion (e.g. a replication
  ship span opened by the master's dump thread and ended by the
  slave's IO thread).  OBS001 does not track these.

Disabled tracing must cost nothing measurable: :data:`NULL_TRACER`
(``enabled`` is False) returns one shared no-op span, so
instrumentation sites are either a truthiness guard
(``if tracer.enabled:``) or a ``with`` over the null span.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: Sentinel parent id for root spans.
ROOT = 0


class Span:
    """One named interval of simulated time, with attributes."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "category",
                 "track", "start", "end_time", "attributes", "instant",
                 "_context_key")

    def __init__(self, tracer: "Tracer", span_id: int, parent_id: int,
                 name: str, category: str, track: str, start: float,
                 attributes: dict, context_key: Any):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.track = track
        self.start = start
        self.end_time: Optional[float] = None
        self.attributes = attributes
        self.instant = False
        self._context_key = context_key

    @property
    def duration(self) -> float:
        if self.end_time is None:
            raise ValueError(f"span {self.name!r} has not ended")
        return self.end_time - self.start

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def end(self) -> None:
        """Close the span at the current simulated time (idempotent)."""
        self.tracer._finish(self)

    # -- context-manager protocol -----------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and "error" not in self.attributes:
            self.attributes["error"] = exc_type.__name__
        self.end()
        return False

    def __repr__(self) -> str:
        state = "open" if self.end_time is None \
            else f"[{self.start:.6f}, {self.end_time:.6f}]"
        return f"<Span #{self.span_id} {self.name!r} {state}>"


#: Context key used for spans opened outside any simulation process
#: (setup code, the experiment runner, event callbacks).
_MAIN = None

_NOT_PUSHED = object()


class Tracer:
    """Records spans against one simulator's clock and process table."""

    enabled = True

    def __init__(self, sim):
        self.sim = sim
        #: Finished spans in end order; exporters sort by (start, id).
        self.spans: list[Span] = []
        #: Spans that ended after :meth:`close` (e.g. a generator's
        #: ``with`` unwinding at teardown) — counted, not recorded,
        #: so the recorded trace is a pure function of the seed.
        self.dropped = 0
        self._ids = itertools.count(1)
        #: Open-span stack per simulation process (the kernel is
        #: single-threaded, so the active process *is* the context).
        self._stacks: dict[Any, list[Span]] = {}
        self._closed = False

    # -- opening -----------------------------------------------------------
    def span(self, name: str, category: str = "app",
             track: Optional[str] = None, **attributes) -> Span:
        """Open a scoped span: close it on every path (OBS001)."""
        return self._start(name, category, track, attributes, push=True)

    def open_span(self, name: str, category: str = "app",
                  track: Optional[str] = None, **attributes) -> Span:
        """Open a flow span whose ``end()`` happens elsewhere."""
        return self._start(name, category, track, attributes, push=False)

    def instant(self, name: str, category: str = "app",
                track: Optional[str] = None, **attributes) -> Span:
        """Record a zero-duration marker at the current sim time."""
        span = self._start(name, category, track, attributes, push=False)
        span.instant = True
        self._finish(span)
        return span

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Freeze the trace: late ``end()`` calls (interpreter teardown
        of suspended generators) are dropped instead of recorded."""
        self._closed = True

    def current_span(self) -> Optional[Span]:
        """The innermost open scoped span of the active process."""
        stack = self._stacks.get(self._context_key())
        return stack[-1] if stack else None

    @property
    def open_scoped_spans(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    # -- internals ----------------------------------------------------------
    def _context_key(self) -> Any:
        return self.sim.active_process or _MAIN

    def _track_name(self) -> str:
        process = self.sim.active_process
        return process.name if process is not None else "<main>"

    def _start(self, name: str, category: str, track: Optional[str],
               attributes: dict, push: bool) -> Span:
        key = self._context_key() if push else _NOT_PUSHED
        context = self._stacks.get(self._context_key())
        parent = context[-1].span_id if context else ROOT
        span = Span(self, next(self._ids), parent, name, category,
                    track if track is not None else self._track_name(),
                    self.sim.now, attributes, key)
        if push:
            if context is None:
                self._stacks[key] = [span]
            else:
                context.append(span)
        return span

    def _finish(self, span: Span) -> None:
        if span.end_time is not None:
            return
        span.end_time = self.sim.now
        key = span._context_key
        if key is not _NOT_PUSHED:
            stack = self._stacks.get(key)
            if stack is not None:
                if stack and stack[-1] is span:
                    stack.pop()
                else:  # out-of-order end; still remove the entry
                    try:
                        stack.remove(span)
                    except ValueError:
                        pass
                if not stack:
                    del self._stacks[key]
        if self._closed:
            self.dropped += 1
            return
        self.spans.append(span)


class _NullSpan:
    """The shared do-nothing span the null tracer hands out."""

    __slots__ = ()

    def set_attribute(self, key, value):
        return self

    def end(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a cheap constant no-op."""

    enabled = False
    spans: tuple = ()
    dropped = 0

    def span(self, name, category="app", track=None, **attributes):
        return _NULL_SPAN

    def open_span(self, name, category="app", track=None, **attributes):
        return _NULL_SPAN

    def instant(self, name, category="app", track=None, **attributes):
        return _NULL_SPAN

    def current_span(self):
        return None

    def close(self):
        pass


#: Process-wide singleton; ``Simulator`` starts with this attached.
NULL_TRACER = NullTracer()

"""The performance-trajectory plane: ``python -m repro bench``.

The paper's results are throughput curves; this package is the repo's
wall-clock counterpart to the sim-time :class:`~repro.obs.KernelProfiler`:

* :mod:`registry`/:mod:`benches` — a suite of named, seed-deterministic
  micro/macro benchmarks (kernel event loop, Cloudstone query mix on
  the storage engine, binlog encode/ship/apply, SQL parse, one quick
  end-to-end cell).  Workload-shape counters are byte-stable per seed,
  so two BENCH files from the same seed differ only in timings.
* :mod:`harness` — warmup + N repeats per bench, min/median/CoV stats,
  the canonical ``BENCH_<date>.json`` document (schema version, host
  fingerprint, per-bench stats + counters).
* :mod:`wallprof` — a ``sys.setprofile``-based :class:`WallProfiler`
  that attributes wall time to repro subsystems (``sim``, ``db``,
  ``replication``, …) and emits a collapsed-stack flamegraph file.
* :mod:`compare` — ``repro bench --compare OLD.json``: per-bench delta
  table, exit 1 on regression; the repo commits one BENCH file per
  perf-relevant PR so every change shows a trajectory.
"""

from .compare import (CompareReport, compare_documents,
                      load_bench_file, render_compare_json,
                      render_compare_text)
from .harness import (SCHEMA_VERSION, BenchResult, BenchStats,
                      SuiteResult, bench_document, render_suite_text,
                      run_suite, stable_view, write_bench_file)
from .registry import BenchSpec, all_benchmarks, get_benchmark, register
from .wallprof import WallProfiler, render_wallprof
from . import benches  # noqa: F401  (registers the standard suite)

__all__ = [
    "SCHEMA_VERSION", "CompareReport", "compare_documents",
    "load_bench_file", "render_compare_json", "render_compare_text",
    "BenchResult", "BenchStats", "SuiteResult", "bench_document",
    "render_suite_text", "run_suite", "stable_view",
    "write_bench_file",
    "BenchSpec", "all_benchmarks", "get_benchmark", "register",
    "WallProfiler", "render_wallprof",
]

"""The standard benchmark suite.

The benches cover the hot paths the ROADMAP's raw-speed flywheel
targets, each seed-deterministic in its workload shape:

* ``kernel.events`` — the sim kernel's event loop under a seeded
  timeout storm (events per wall-second);
* ``sql.parse`` — the plan-cached SQL front end over the fixed
  Cloudstone statement mix (steady state: primed cache);
* ``sql.parse_cold`` — the raw parser over the same mix, no cache
  (tracks the parser itself across optimisation rounds);
* ``db.query_mix`` — :class:`~repro.db.engine.StorageEngine` statement
  execution over the same mix against a loaded Cloudstone database;
* ``repl.binlog`` — binlog encode (append), ship (wire-size walk) and
  apply (re-parse + re-execute on a slave engine);
* ``obs.stream`` — the live telemetry pipeline: seeded samples fanned
  through rate / EWMA / sliding-quantile / sliding-max operator
  chains;
* ``e2e.cell`` — one quick end-to-end experiment cell
  (:func:`~repro.experiments.runner.run_experiment`).

Every factory sizes its workload from the scale profile (quick /
standard / full) and returns counters that are a pure function of
``(seed, scale)``.
"""

from __future__ import annotations

from ..db.binlog import Binlog
from ..db.engine import StorageEngine
from ..experiments.config import PAPER_50_50, LocationConfig
from ..sim import RandomStreams, Simulator
from ..sql.parser import parse
from ..sql.plancache import PlanCache
from ..workloads.cloudstone import Phases, load_initial_data
from ..workloads.cloudstone.mix import MIX_50_50, OperationMix
from ..workloads.cloudstone.schema import TAG_COUNT
from ..workloads.cloudstone.state import WorkloadState
from .registry import SCALES, BenchCase, register

__all__ = ["statement_corpus"]

#: Write-only mix for the replication bench (only writes replicate).
_WRITES_ONLY = OperationMix("writes", read_fraction=0.0)


def statement_corpus(seed: int, n_operations: int,
                     mix: OperationMix = MIX_50_50,
                     stream: str = "perf.corpus") -> list[str]:
    """The SQL text of ``n_operations`` seeded Cloudstone operations.

    The corpus is the fixed statement mix every SQL-facing bench runs:
    same ``(seed, n_operations, mix)`` -> byte-identical statements.
    """
    streams = RandomStreams(seed)
    rng = streams.stream(stream)
    state = WorkloadState(n_users=200, n_events=200, n_tags=TAG_COUNT)
    statements: list[str] = []
    for _ in range(n_operations):
        operation = mix.pick(rng)
        statements.extend(operation.build(state, rng))
        operation.on_complete(state)
    return statements


class _EngineShim:
    """Adapts a bare :class:`StorageEngine` to the loader's ``admin``
    surface (the loader normally talks to a DatabaseServer)."""

    def __init__(self, engine: StorageEngine):
        self.engine = engine

    def admin(self, sql: str, database=None):
        return self.engine.execute(sql, database=database)


def _loaded_engine(seed: int, data_size: int) -> StorageEngine:
    """A fresh engine holding the seeded Cloudstone dataset."""
    engine = StorageEngine(default_database="cloudstone")
    streams = RandomStreams(seed)
    load_initial_data(_EngineShim(engine), data_size,
                      streams.stream("perf.load"))
    return engine


# ------------------------------------------------------------- kernel
@register("kernel.events", subsystem="sim", unit="events",
          description="sim kernel event loop on a seeded timeout "
                      "storm (plus AnyOf joins every 16th step)")
def _kernel_events(seed: int, scale: str) -> BenchCase:
    class Storm(BenchCase):
        n_processes = 50
        iterations = 160 * SCALES[scale]

        def prepare(self):
            sim = Simulator()
            streams = RandomStreams(seed)
            executed = [0]

            def storm(sim, rng, iterations):
                for step in range(iterations):
                    delay = float(rng.random()) * 0.01
                    if step % 16 == 15:
                        # Exercise the composite-event path too.
                        yield sim.any_of([sim.timeout(delay),
                                          sim.timeout(delay * 2.0)])
                    else:
                        yield sim.timeout(delay)
                    executed[0] += 1

            for index in range(self.n_processes):
                rng = streams.spawn("perf.kernel", index)
                sim.process(storm(sim, rng, self.iterations),
                            name=f"storm-{index}")

            def run():
                sim.run()
                return {"events": executed[0],
                        "processes": self.n_processes,
                        "sim_time_us": int(round(sim.now * 1e6))}
            return run
    return Storm()


# ---------------------------------------------------------------- sql
@register("sql.parse", subsystem="sql", unit="statements",
          description="plan-cached SQL front end over the fixed "
                      "Cloudstone statement mix (50/50): one untimed "
                      "priming pass, then the timed warm pass")
def _sql_parse(seed: int, scale: str) -> BenchCase:
    class Parse(BenchCase):
        corpus = statement_corpus(seed, 60 * SCALES[scale])

        def prepare(self):
            # A fresh cache per repeat, primed by one untimed pass:
            # the timed pass measures the steady state servers live
            # in, and the cumulative hit/miss counters stay a pure
            # function of (seed, scale) regardless of warmup count.
            corpus = self.corpus
            cache = PlanCache()
            for text in corpus:
                cache.prepare(text)

            def run():
                prepare = cache.prepare
                for text in corpus:
                    prepare(text)
                return {"statements": len(corpus),
                        "chars": sum(len(text) for text in corpus),
                        "cache_hits": cache.hits,
                        "cache_misses": cache.misses}
            return run
    return Parse()


@register("sql.parse_cold", subsystem="sql", unit="statements",
          description="raw (uncached) SQL parse over the fixed "
                      "Cloudstone statement mix (50/50)")
def _sql_parse_cold(seed: int, scale: str) -> BenchCase:
    class ParseCold(BenchCase):
        corpus = statement_corpus(seed, 60 * SCALES[scale])

        def prepare(self):
            corpus = self.corpus

            def run():
                for text in corpus:
                    parse(text)
                return {"statements": len(corpus),
                        "chars": sum(len(text) for text in corpus)}
            return run
    return ParseCold()


# ----------------------------------------------------------------- db
@register("db.query_mix", subsystem="db", unit="statements",
          description="StorageEngine execution of the Cloudstone "
                      "50/50 mix against a loaded dataset")
def _db_query_mix(seed: int, scale: str) -> BenchCase:
    class QueryMix(BenchCase):
        data_size = 30 * SCALES[scale]
        corpus = statement_corpus(seed, 100 * SCALES[scale])

        def prepare(self):
            # A fresh engine per repeat: the mix mutates the dataset,
            # so re-running on the same engine would change the shape.
            engine = _loaded_engine(seed, self.data_size)
            corpus = self.corpus

            def run():
                examined = returned = affected = commits = 0
                for text in corpus:
                    outcome = engine.execute(text,
                                             database="cloudstone")
                    examined += outcome.profile.rows_examined
                    returned += outcome.profile.rows_returned
                    affected += outcome.profile.rows_affected
                    commits += len(outcome.committed)
                return {"statements": len(corpus),
                        "rows_examined": examined,
                        "rows_returned": returned,
                        "rows_affected": affected,
                        "commits": commits}
            return run
    return QueryMix()


# --------------------------------------------------------- replication
@register("repl.binlog", subsystem="replication", unit="events",
          description="binlog encode + wire-size ship + statement "
                      "re-execution apply on a slave engine")
def _repl_binlog(seed: int, scale: str) -> BenchCase:
    class BinlogPipeline(BenchCase):
        data_size = 30 * SCALES[scale]

        def __init__(self):
            # Committed (text, database) pairs are collected once on a
            # master-side engine; the timed phase re-ships them.
            master = _loaded_engine(seed, self.data_size)
            self.committed: list[tuple[str, str]] = []
            for text in statement_corpus(seed, 150 * SCALES[scale],
                                         mix=_WRITES_ONLY,
                                         stream="perf.binlog"):
                outcome = master.execute(text, database="cloudstone")
                self.committed.extend(outcome.committed)

        def prepare(self):
            slave = _loaded_engine(seed, self.data_size)
            binlog = Binlog(Simulator(), server_id=1)
            committed = self.committed

            def run():
                shipped_bytes = 0
                for text, database in committed:
                    event = binlog.append(text, database,
                                          commit_wallclock=0.0)
                    shipped_bytes += event.size_bytes
                applied_rows = 0
                cursor = 0
                while True:
                    chunk = binlog.read_from(cursor, max_events=64)
                    if not chunk:
                        break
                    cursor += len(chunk)
                    for event in chunk:
                        outcome = slave.execute(
                            parse(event.statement),
                            database=event.database)
                        applied_rows += outcome.profile.rows_affected
                return {"events": binlog.head_position,
                        "bytes": shipped_bytes,
                        "rows_applied": applied_rows}
            return run
    return BinlogPipeline()


# ---------------------------------------------------------------- obs
@register("obs.stream", subsystem="obs", unit="updates",
          description="live pipeline fan-out: seeded samples through "
                      "rate/EWMA/sliding-quantile/sliding-max "
                      "operator chains")
def _obs_stream(seed: int, scale: str) -> BenchCase:
    from ..obs.live.streams import (Ewma, LivePipeline, SlidingMax,
                                    SlidingQuantile, WindowedRate)

    class Stream(BenchCase):
        n_streams = 4
        samples = 500 * SCALES[scale]

        def __init__(self):
            # The sample tape is drawn once; the timed phase replays
            # it through a fresh pipeline each repeat.
            names = [f"bench.s{index}"
                     for index in range(self.n_streams)]
            rng = RandomStreams(seed).stream("perf.obs")
            tape: list[tuple[str, float, float]] = []
            t = 0.0
            for index in range(self.samples):
                t += float(rng.random()) * 0.1
                tape.append((names[index % self.n_streams], t,
                             float(rng.random()) * 4.0))
            self.names = names
            self.tape = tape
            self.final_t = t

        def prepare(self):
            pipeline = LivePipeline()
            for name in self.names:
                pipeline.derive(name + ".rate",
                                WindowedRate(10.0), name)
                pipeline.derive(name + ".ewma", Ewma(5.0), name)
                pipeline.derive(name + ".p95",
                                SlidingQuantile(0.95, 10.0), name)
                pipeline.derive(name + ".max", SlidingMax(10.0), name)
            tape = self.tape
            final_t = self.final_t

            def run():
                import math
                publish = pipeline.publish
                for name, t, value in tape:
                    publish(name, value, t)
                checksum = 0
                for name in pipeline.names():
                    value = pipeline.read(name, final_t)
                    if value is not None and math.isfinite(value):
                        checksum += int(round(value * 1e3))
                return {"updates": pipeline.published,
                        "streams": len(pipeline),
                        "checksum_milli": checksum}
            return run
    return Stream()


# ---------------------------------------------------------------- e2e
_E2E_SIZES = {
    # scale -> (users, phase time factor, baseline seconds)
    "quick": (10, 0.02, 5.0),
    "standard": (20, 0.05, 10.0),
    "full": (50, 0.10, 20.0),
}


@register("e2e.cell", subsystem="experiments", unit="operations",
          description="one quick end-to-end cell: cloud + replication "
                      "tree + Cloudstone users through run_experiment")
def _e2e_cell(seed: int, scale: str) -> BenchCase:
    class Cell(BenchCase):
        users, factor, baseline = _E2E_SIZES[scale]

        def prepare(self):
            from ..experiments.runner import run_experiment
            config = PAPER_50_50(
                LocationConfig.SAME_ZONE, 1, self.users,
                Phases().scaled(self.factor), seed=seed,
                baseline_duration=self.baseline)

            def run():
                result = run_experiment(config)
                return {
                    "users": self.users,
                    "slaves": 1,
                    "operations": int(round(result.throughput
                                            * config.phases.steady)),
                    "heartbeats": sum(result.heartbeat_counts),
                    "throughput_milli_ops":
                        int(round(result.throughput * 1000.0)),
                    "mean_latency_us":
                        int(round(result.mean_latency_s * 1e6)),
                }
            return run
    return Cell()

"""``repro bench --compare OLD.json``: the perf-trajectory gate.

Compares a freshly-measured BENCH document against a committed
baseline, bench by bench, on the median repeat time:

* ``delta > +tolerance`` %  -> **regression** (exit 1);
* ``delta < -tolerance`` %  -> improvement (reported, exit 0);
* baseline benches missing from the new run -> failure (a renamed or
  deleted bench silently breaks the trajectory);
* schema-version mismatch -> failure (documents are not comparable);
* CoV above the noise limit on either side -> the row is flagged
  ``noisy`` (warning only — a noisy median is still a median);
* counter drift at equal seed/scale -> flagged ``shape-drift``
  (warning: the two runs did not execute the same workload, so the
  delta measures workload change, not speed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .harness import DEFAULT_COV_LIMIT, SCHEMA_VERSION

__all__ = ["CompareRow", "CompareReport", "compare_documents",
           "load_bench_file", "render_compare_text",
           "render_compare_json"]


@dataclass
class CompareRow:
    """One bench's delta."""

    name: str
    status: str                    # ok | faster | REGRESSION | missing | new
    old_median_s: float = 0.0
    new_median_s: float = 0.0
    delta_pct: float = 0.0
    warnings: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {"name": self.name, "status": self.status,
                "old_median_s": self.old_median_s,
                "new_median_s": self.new_median_s,
                "delta_pct": self.delta_pct,
                "warnings": list(self.warnings)}


@dataclass
class CompareReport:
    """The full comparison outcome."""

    tolerance_pct: float
    rows: list[CompareRow] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[CompareRow]:
        return [row for row in self.rows
                if row.status in ("REGRESSION", "missing")]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors or self.regressions else 0


def load_bench_file(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) \
            or document.get("schema") != "repro-bench":
        raise ValueError(f"{path}: not a repro-bench document")
    if not document.get("benchmarks"):
        raise ValueError(f"{path}: baseline has no benchmark entries "
                         f"(comparing against nothing always passes); "
                         f"regenerate it with 'repro bench --out'")
    return document


def compare_documents(old: dict, new: dict, tolerance_pct: float,
                      cov_limit: float = DEFAULT_COV_LIMIT,
                      only=None) -> CompareReport:
    """Delta of ``new`` against baseline ``old`` (see module doc).

    ``only`` (a collection of bench names) restricts the baseline
    side: a *selected* bench absent from the new run is still a
    failure, but comparing a partial ``--bench`` run against a full
    baseline does not flag the unselected rest as missing.
    """
    report = CompareReport(tolerance_pct=tolerance_pct)
    old_version = old.get("schemaVersion")
    new_version = new.get("schemaVersion")
    if old_version != SCHEMA_VERSION or new_version != SCHEMA_VERSION:
        report.errors.append(
            f"schema version mismatch: baseline v{old_version}, "
            f"new v{new_version}, tool v{SCHEMA_VERSION} — "
            f"re-measure the baseline with this tool")
        return report
    old_benches = old.get("benchmarks", {})
    new_benches = new.get("benchmarks", {})
    if only is not None:
        only = set(only) | set(new_benches)
        old_benches = {name: bench
                       for name, bench in old_benches.items()
                       if name in only}
    same_shape = (old.get("run", {}).get("seed")
                  == new.get("run", {}).get("seed")
                  and old.get("run", {}).get("scale")
                  == new.get("run", {}).get("scale"))
    for name in sorted(old_benches.keys() | new_benches.keys()):
        if name not in new_benches:
            report.rows.append(CompareRow(
                name=name, status="missing",
                old_median_s=old_benches[name]["stats"]["median_s"],
                warnings=[f"baseline bench {name!r} was not run — "
                          f"renamed or deleted?"]))
            continue
        if name not in old_benches:
            report.rows.append(CompareRow(
                name=name, status="new",
                new_median_s=new_benches[name]["stats"]["median_s"],
                warnings=["no baseline yet"]))
            continue
        old_stats = old_benches[name]["stats"]
        new_stats = new_benches[name]["stats"]
        old_median = float(old_stats["median_s"])
        new_median = float(new_stats["median_s"])
        delta_pct = ((new_median - old_median) / old_median * 100.0
                     if old_median > 0.0 else 0.0)
        warnings = []
        for side, stats in (("baseline", old_stats), ("new", new_stats)):
            if float(stats.get("cov", 0.0)) > cov_limit:
                warnings.append(
                    f"noisy: {side} CoV "
                    f"{float(stats['cov']):.2f} > {cov_limit:.2f}")
        if same_shape and old_benches[name].get("counters") \
                != new_benches[name].get("counters"):
            warnings.append("shape-drift: counters differ at equal "
                            "seed/scale — workload changed, delta is "
                            "not a pure speed measurement")
        if delta_pct > tolerance_pct:
            status = "REGRESSION"
        elif delta_pct < -tolerance_pct:
            status = "faster"
        else:
            status = "ok"
        report.rows.append(CompareRow(
            name=name, status=status, old_median_s=old_median,
            new_median_s=new_median, delta_pct=delta_pct,
            warnings=warnings))
    return report


def render_compare_text(report: CompareReport) -> str:
    lines = [f"bench compare — tolerance ±{report.tolerance_pct:.0f}% "
             f"on the median repeat"]
    for error in report.errors:
        lines.append(f"error: {error}")
    if report.rows:
        lines.append(f"{'benchmark':<16s} {'baseline':>10s} "
                     f"{'new':>10s} {'delta':>8s}  status")
        for row in report.rows:
            old_text = (f"{row.old_median_s:>10.4f}"
                        if row.status != "new" else f"{'—':>10s}")
            new_text = (f"{row.new_median_s:>10.4f}"
                        if row.status != "missing" else f"{'—':>10s}")
            delta_text = (f"{row.delta_pct:>+7.1f}%"
                          if row.status in ("ok", "faster",
                                            "REGRESSION")
                          else f"{'—':>8s}")
            lines.append(f"{row.name:<16s} {old_text} {new_text} "
                         f"{delta_text}  {row.status}")
            for warning in row.warnings:
                lines.append(f"{'':<16s} ^ {warning}")
    verdict = ("FAIL" if report.exit_code else "ok")
    lines.append(f"bench compare: {verdict} "
                 f"({len(report.regressions)} regression(s), "
                 f"{len(report.errors)} error(s))")
    return "\n".join(lines)


def render_compare_json(report: CompareReport) -> str:
    return json.dumps({
        "tolerance_pct": report.tolerance_pct,
        "errors": list(report.errors),
        "rows": [row.as_dict() for row in report.rows],
        "exit_code": report.exit_code,
    }, sort_keys=True, separators=(",", ":"))

"""Run the suite: warmup + N repeats, stats, the BENCH document.

Timings use the wall clock (that is the whole point) and are the
*only* non-deterministic content of a BENCH document: the workload
counters are asserted identical across repeats, and
:func:`stable_view` strips the timing/host fields so two same-seed
documents can be compared byte-for-byte.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Optional

from .registry import SCALES, BenchSpec
from .wallprof import WallProfiler

__all__ = ["BenchStats", "BenchResult", "SuiteResult", "run_bench",
           "run_suite", "bench_document", "stable_view",
           "write_bench_file", "render_suite_text"]

#: Bumped whenever the BENCH document layout changes incompatibly;
#: ``--compare`` refuses to diff across versions.
SCHEMA_VERSION = 1

#: CoV above this gets flagged as too noisy to trust a small delta.
DEFAULT_COV_LIMIT = 0.35


@dataclass(frozen=True)
class BenchStats:
    """Timing summary over the repeats (seconds per repeat)."""

    min_s: float
    median_s: float
    mean_s: float
    cov: float                  # std/mean over the repeats
    repeats: int

    @classmethod
    def from_samples(cls, samples: list[float]) -> "BenchStats":
        ordered = sorted(samples)
        n = len(ordered)
        mid = n // 2
        median = ordered[mid] if n % 2 else \
            (ordered[mid - 1] + ordered[mid]) / 2.0
        mean = sum(ordered) / n
        if n > 1 and mean > 0.0:
            var = sum((s - mean) ** 2 for s in ordered) / (n - 1)
            cov = var ** 0.5 / mean
        else:
            cov = 0.0
        return cls(min_s=ordered[0], median_s=median, mean_s=mean,
                   cov=cov, repeats=n)

    def as_dict(self) -> dict:
        return {"min_s": self.min_s, "median_s": self.median_s,
                "mean_s": self.mean_s, "cov": self.cov,
                "repeats": self.repeats}


@dataclass
class BenchResult:
    """One bench's outcome: stable counters + volatile stats."""

    name: str
    subsystem: str
    unit: str
    counters: dict
    stats: BenchStats

    @property
    def rate_per_s(self) -> float:
        """unit-counter per wall-second at the median repeat."""
        amount = self.counters.get(self.unit, 0)
        return amount / self.stats.median_s if self.stats.median_s \
            else 0.0


@dataclass
class SuiteResult:
    """Every bench result plus the run parameters."""

    seed: int
    scale: str
    repeats: int
    warmup: int
    results: list[BenchResult] = field(default_factory=list)
    profiler: Optional[WallProfiler] = None


def run_bench(spec: BenchSpec, seed: int, scale: str, repeats: int,
              warmup: int,
              profiler: Optional[WallProfiler] = None) -> BenchResult:
    """Warmup + ``repeats`` timed runs of one bench.

    ``prepare()`` rebuilds per-repeat state *outside* the timed
    window; counters must repeat byte-identically or the bench is not
    seed-deterministic and we fail loudly.
    """
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} "
                         f"(choose from {sorted(SCALES)})")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    case = spec.factory(seed, scale)
    for _ in range(warmup):
        case.prepare()()
    samples: list[float] = []
    counters: Optional[dict] = None
    for repeat in range(repeats):
        run = case.prepare()
        if profiler is not None:
            profiler.start()
        started = time.perf_counter()  # simlint: disable=DET001  # simtaint: blessed=benchmark-harness-wall-time
        observed = run()
        elapsed = time.perf_counter() - started  # simlint: disable=DET001  # simtaint: blessed=benchmark-harness-wall-time
        if profiler is not None:
            profiler.stop()
        samples.append(elapsed)
        if counters is None:
            counters = observed
        elif observed != counters:
            raise RuntimeError(
                f"bench {spec.name!r} is not seed-deterministic: "
                f"repeat {repeat + 1} returned {observed!r}, first "
                f"repeat returned {counters!r}")
    return BenchResult(name=spec.name, subsystem=spec.subsystem,
                       unit=spec.unit, counters=counters or {},
                       stats=BenchStats.from_samples(samples))


def run_suite(specs: list[BenchSpec], seed: int = 0,
              scale: str = "quick", repeats: int = 5, warmup: int = 1,
              profile: bool = False) -> SuiteResult:
    """Run ``specs`` in name order; one shared profiler when asked."""
    profiler = WallProfiler() if profile else None
    suite = SuiteResult(seed=seed, scale=scale, repeats=repeats,
                        warmup=warmup, profiler=profiler)
    for spec in sorted(specs, key=lambda s: s.name):
        suite.results.append(
            run_bench(spec, seed, scale, repeats, warmup,
                      profiler=profiler))
    return suite


# ----------------------------------------------------- BENCH document
def _host_fingerprint() -> dict:
    """Where the numbers came from (excluded from stable compares)."""
    import os
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
        "date": time.strftime("%Y-%m-%d"),  # simlint: disable=DET001  # simtaint: blessed=bench-report-date-stamp
    }


def bench_document(suite: SuiteResult) -> dict:
    """The canonical ``BENCH_<date>.json`` payload."""
    return {
        "schema": "repro-bench",
        "schemaVersion": SCHEMA_VERSION,
        "host": _host_fingerprint(),
        "run": {"seed": suite.seed, "scale": suite.scale,
                "repeats": suite.repeats, "warmup": suite.warmup},
        "benchmarks": {
            result.name: {
                "subsystem": result.subsystem,
                "unit": result.unit,
                "counters": dict(sorted(result.counters.items())),
                "stats": result.stats.as_dict(),
                "rate_per_s": result.rate_per_s,
            }
            for result in suite.results
        },
    }


def stable_view(document: dict) -> dict:
    """The document minus timing/host fields: two same-seed runs must
    agree on this part byte-for-byte."""
    view = {key: value for key, value in document.items()
            if key != "host"}
    view["benchmarks"] = {
        name: {key: value for key, value in bench.items()
               if key not in ("stats", "rate_per_s")}
        for name, bench in document.get("benchmarks", {}).items()}
    return view


def write_bench_file(path: str, document: dict) -> None:
    """Canonical JSON: sorted keys, 2-space indent, trailing newline.

    Refuses a document with no benchmark entries: an empty baseline
    would make every later ``--compare`` pass vacuously.
    """
    if not document.get("benchmarks"):
        raise ValueError(
            f"refusing to write {path}: document has no benchmark "
            f"entries (an empty baseline compares as a pass)")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=2)
        handle.write("\n")


def render_suite_text(suite: SuiteResult,
                      cov_limit: float = DEFAULT_COV_LIMIT) -> str:
    """The human bench table (rates, medians, shape counters)."""
    lines = [
        f"repro bench — seed={suite.seed} scale={suite.scale} "
        f"repeats={suite.repeats} warmup={suite.warmup}",
        f"{'benchmark':<16s} {'rate':>10s} {'unit':<14s} "
        f"{'median':>10s} {'min':>10s} {'cov':>6s}  counters",
    ]
    for result in suite.results:
        stats = result.stats
        noisy = " (noisy)" if stats.cov > cov_limit else ""
        counters = " ".join(f"{key}={value}" for key, value
                            in sorted(result.counters.items()))
        lines.append(
            f"{result.name:<16s} "
            f"{result.rate_per_s:>10.0f} {result.unit + '/s':<14s} "
            f"{stats.median_s:>10.4f} {stats.min_s:>10.4f} "
            f"{stats.cov:>6.2f}{noisy}  {counters}")
    return "\n".join(lines)

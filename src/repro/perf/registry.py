"""Benchmark registry.

A benchmark is a named factory: ``factory(seed, scale)`` builds a
:class:`BenchCase` whose :meth:`~BenchCase.prepare` is called before
*every* timed repeat and returns the closure the harness times.  The
closure returns the bench's workload-shape counters (events simulated,
queries executed, rows applied, …), which must be a pure function of
``(seed, scale)`` — the harness asserts they are identical across
repeats, which is what makes two BENCH files from the same seed
comparable byte-for-byte outside the timing fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["BenchCase", "BenchSpec", "register", "get_benchmark",
           "all_benchmarks", "resolve", "SCALES"]

#: Workload-size multiplier per scale profile (mirrors the experiment
#: grid's quick/standard/full convention).
SCALES = {"quick": 1, "standard": 4, "full": 16}


class BenchCase:
    """One prepared benchmark instance for one (seed, scale)."""

    def prepare(self) -> Callable[[], dict]:
        """Build fresh per-repeat state; return the timed closure.

        The closure's return value is the counters dict (str -> int or
        str -> float where the float is seed-deterministic).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class BenchSpec:
    """Registry entry for one named benchmark."""

    name: str               # e.g. "kernel.events"
    subsystem: str          # attribution bucket: sim | db | ...
    unit: str               # the counter the rate is derived from
    description: str
    factory: Callable[[int, str], BenchCase]


_REGISTRY: dict[str, BenchSpec] = {}


def register(name: str, subsystem: str, unit: str,
             description: str) -> Callable:
    """Decorator: register ``factory(seed, scale) -> BenchCase``."""
    def wrap(factory: Callable[[int, str], BenchCase]):
        if name in _REGISTRY:
            raise ValueError(f"benchmark {name!r} is already registered")
        _REGISTRY[name] = BenchSpec(name=name, subsystem=subsystem,
                                    unit=unit, description=description,
                                    factory=factory)
        return factory
    return wrap


def get_benchmark(name: str) -> BenchSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown benchmark {name!r} "
                       f"(known: {known})") from None


def all_benchmarks() -> list[BenchSpec]:
    """Every registered benchmark, name-sorted (stable run order)."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve(names: Optional[list[str]]) -> list[BenchSpec]:
    """Specs for ``names`` (prefix match on ``.``-families), or the
    whole suite when ``names`` is falsy."""
    if not names:
        return all_benchmarks()
    specs: dict[str, BenchSpec] = {}
    for pattern in names:
        # Family prefixes work with or without the trailing dot the
        # docs show ("sql" and "sql." both select the sql.* benches).
        family = pattern.rstrip(".") + "."
        matched = [spec for spec in all_benchmarks()
                   if spec.name == pattern
                   or spec.name.startswith(family)]
        if not matched:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(f"unknown benchmark {pattern!r} "
                           f"(known: {known})")
        for spec in matched:
            specs[spec.name] = spec
    return [specs[name] for name in sorted(specs)]

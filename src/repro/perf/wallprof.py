"""Wall-clock profiler with subsystem attribution.

The sim-time :class:`~repro.obs.kernelprof.KernelProfiler` says where
*simulated* time went; :class:`WallProfiler` is its wall-clock
complement: a ``sys.setprofile`` hook that charges every interval of
real time to the function on top of the Python stack, maps each
function onto a repro subsystem (``sim``, ``db``, ``replication``,
``sql``, ``obs``, ``workloads``, …) by its source path, and reports

* a per-subsystem exclusive wall-time table (the buckets sum exactly
  to the profiled wall time, so shares telescope to 100 %), and
* a collapsed-stack file (``a;b;c <microseconds>`` per line) loadable
  by any flamegraph renderer (e.g. speedscope, flamegraph.pl).

The profiler is wall-clock *measurement* infrastructure, never an
input to simulation logic, so its clock reads are blessed for the
determinism gates (TNT005 stays strict everywhere else).
"""

from __future__ import annotations

import os
import sys
import sysconfig
import time
from typing import Optional

__all__ = ["WallProfiler", "render_wallprof"]

#: Subsystems that count as "named" for the attribution share; the
#: catch-all bucket is ``other``.
_OTHER = "other"

_STDLIB_DIR = sysconfig.get_paths().get("stdlib") or ""
_REPRO_MARKER = os.sep + os.path.join("repro", "")


def _subsystem_of(filename: str) -> str:
    """Map a source path onto an attribution bucket."""
    if not filename or filename.startswith("<"):
        # <string>, <frozen importlib...>, builtins.
        return "stdlib"
    if "site-packages" in filename or "dist-packages" in filename:
        for marker in ("site-packages", "dist-packages"):
            index = filename.find(marker)
            if index >= 0:
                rest = filename[index + len(marker) + 1:]
                return rest.split(os.sep, 1)[0].split(".", 1)[0] \
                    or _OTHER
    index = filename.rfind(_REPRO_MARKER)
    if index >= 0:
        rest = filename[index + len(_REPRO_MARKER):]
        head = rest.split(os.sep, 1)
        if len(head) == 1:
            # Top-level modules: cli.py, metrics.py, __main__.py.
            return "cli"
        return head[0]
    if _STDLIB_DIR and filename.startswith(_STDLIB_DIR):
        return "stdlib"
    return _OTHER


class WallProfiler:
    """Exclusive wall-time per subsystem + collapsed call stacks.

    Use as a context manager around the code to profile::

        profiler = WallProfiler()
        with profiler:
            run()
        print(render_wallprof(profiler))
    """

    #: Collapse keys are capped at this stack depth (deep recursion
    #: otherwise explodes the collapsed-stack table).
    MAX_STACK = 48

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        #: subsystem -> [exclusive seconds, events]
        self._buckets: dict[str, list] = {}
        #: tuple(label, ...) -> exclusive seconds
        self._stacks: dict[tuple, float] = {}
        #: live stack of (label, subsystem)
        self._stack: list[tuple[str, str]] = []
        self._label_cache: dict[str, tuple[str, str]] = {}
        self._last: Optional[float] = None
        self._active = False
        self.wall_time = 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._active:
            raise RuntimeError("WallProfiler is already running")
        self._active = True
        self._stack.clear()
        self._last = self._clock()  # simlint: disable=DET001  # simtaint: blessed=wall-clock-profiler-measurement
        sys.setprofile(self._hook)

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(None)
        self._charge(self._clock())  # simlint: disable=DET001  # simtaint: blessed=wall-clock-profiler-measurement
        self._active = False
        self.wall_time = sum(entry[0]
                             for entry in self._buckets.values())

    def __enter__(self) -> "WallProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the hook ----------------------------------------------------------
    def _charge(self, now: float) -> None:
        """Charge the interval since the last event to the stack top."""
        elapsed = now - self._last
        self._last = now
        if elapsed <= 0.0:
            return
        if self._stack:
            label, subsystem = self._stack[-1]
        else:
            label, subsystem = "<harness>", "perf"
        entry = self._buckets.get(subsystem)
        if entry is None:
            self._buckets[subsystem] = [elapsed, 1]
        else:
            entry[0] += elapsed
            entry[1] += 1
        key = tuple(frame[0]
                    for frame in self._stack[-self.MAX_STACK:]) \
            or ("<harness>",)
        self._stacks[key] = self._stacks.get(key, 0.0) + elapsed

    def _label_python(self, code) -> tuple[str, str]:
        filename = code.co_filename
        cached = self._label_cache.get(filename)
        if cached is None:
            subsystem = _subsystem_of(filename)
            module = os.path.splitext(os.path.basename(filename))[0]
            cached = (f"{subsystem}.{module}", subsystem)
            self._label_cache[filename] = cached
        prefix, subsystem = cached
        return f"{prefix}:{code.co_name}", subsystem

    def _hook(self, frame, event, arg) -> None:
        now = self._clock()  # simlint: disable=DET001  # simtaint: blessed=wall-clock-profiler-measurement
        self._charge(now)
        if event == "call":
            self._stack.append(self._label_python(frame.f_code))
        elif event == "return":
            if self._stack:
                self._stack.pop()
        elif event == "c_call":
            module = getattr(arg, "__module__", None) or "builtins"
            subsystem = module.split(".", 1)[0]
            if subsystem not in ("builtins", "numpy"):
                subsystem = "stdlib"
            name = getattr(arg, "__qualname__", None) \
                or getattr(arg, "__name__", "<c>")
            self._stack.append((f"{subsystem}:{name}", subsystem))
        elif event in ("c_return", "c_exception"):
            if self._stack:
                self._stack.pop()
        # Exclude the hook's own bookkeeping from the next interval.
        self._last = self._clock()  # simlint: disable=DET001  # simtaint: blessed=wall-clock-profiler-measurement

    # -- results -----------------------------------------------------------
    def rows(self) -> list[dict]:
        """Per-subsystem exclusive wall time, largest first."""
        total = self.wall_time or 1.0
        return [
            {"subsystem": subsystem, "wall_s": entry[0],
             "events": entry[1], "share": entry[0] / total}
            for subsystem, entry in sorted(
                self._buckets.items(),
                key=lambda kv: (-kv[1][0], kv[0]))]

    def attributed_share(self) -> float:
        """Fraction of profiled wall time in *named* subsystems
        (everything except the ``other`` catch-all)."""
        if not self.wall_time:
            return 1.0
        unnamed = self._buckets.get(_OTHER, [0.0])[0]
        return 1.0 - unnamed / self.wall_time

    def snapshot(self) -> dict:
        return {"wall_s": self.wall_time,
                "attributed_share": self.attributed_share(),
                "rows": self.rows()}

    def collapsed(self) -> str:
        """The flamegraph input: ``frame;frame;... <microseconds>``
        per line, alphabetical (byte-stable for equal timings)."""
        lines = []
        for key in sorted(self._stacks):
            micros = int(round(self._stacks[key] * 1e6))
            if micros > 0:
                lines.append(f"{';'.join(key)} {micros}")
        return "\n".join(lines)


def render_wallprof(profiler: WallProfiler,
                    max_rows: int = 20) -> str:
    """The per-subsystem wall-time attribution table."""
    rows = profiler.rows()
    lines = [
        "wall-clock profile (exclusive time per repro subsystem)",
        f"{'subsystem':<16s} {'events':>10s} {'wall-s':>10s} "
        f"{'share':>7s}",
    ]
    for row in rows[:max_rows]:
        lines.append(f"{row['subsystem']:<16s} {row['events']:>10d} "
                     f"{row['wall_s']:>10.4f} {row['share']:>6.1%}")
    if len(rows) > max_rows:
        lines.append(f"... {len(rows) - max_rows} more row(s)")
    lines.append(f"{'total':<16s} {'':>10s} "
                 f"{profiler.wall_time:>10.4f} "
                 f"{profiler.attributed_share():>6.1%} attributed")
    return "\n".join(lines)

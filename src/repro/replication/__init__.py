"""Master-slave replication middleware (the paper's database tier)."""

from .cost import CostModel, DEFAULT_COST_MODEL
from .failover import (best_candidate, data_loss_window, fail_master,
                       promote)
from .heartbeat import (HEARTBEAT_DATABASE, HEARTBEAT_TABLE, HeartbeatPlugin,
                        HeartbeatSample, average_relative_delay_ms,
                        collect_delays)
from .manager import ReplicationManager, resync_slave_from
from .master import MasterServer
from .messages import OrderedChannel
from .monitor import (ClusterMonitor, ClusterSample, PressureSignals,
                      SlaveSample, detect_pressure)
from .pool import ConnectionPool, PooledConnection, PoolTimeout
from .proxy import BALANCING_POLICIES, ReadWriteSplitProxy
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy
from .server import DatabaseServer
from .slave import SlaveServer

__all__ = [
    "DatabaseServer",
    "MasterServer",
    "SlaveServer",
    "ReplicationManager",
    "ReadWriteSplitProxy",
    "BALANCING_POLICIES",
    "ConnectionPool",
    "PooledConnection",
    "PoolTimeout",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "OrderedChannel",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "fail_master",
    "promote",
    "best_candidate",
    "data_loss_window",
    "resync_slave_from",
    "ClusterMonitor",
    "ClusterSample",
    "SlaveSample",
    "PressureSignals",
    "detect_pressure",
    "HeartbeatPlugin",
    "HeartbeatSample",
    "collect_delays",
    "average_relative_delay_ms",
    "HEARTBEAT_DATABASE",
    "HEARTBEAT_TABLE",
]

"""CPU cost model: statement execution profile -> compute work.

The simulated servers charge CPU in *reference seconds* — seconds of
work on a nominal m1.small core (``Instance.effective_speed == 1``).
The constants are calibrated so that, with the Cloudstone workload of
the paper (initial data size 300/600), the saturation knees land where
the paper reports them:

* 50/50 mix: one slave saturates around 100 concurrent users, the knee
  settles at ~175 users from two slaves on, and from the third slave
  the **master** (not the slaves) is the saturated resource;
* 80/20 mix: read capacity scales with slaves until the master's write
  load caps throughput around 9–10 slaves.

``apply_cost_factor`` reflects that the slave SQL thread replays a
writeset more cheaply than the master executed the full client write
(no client connection handling, no business-logic reads — those stay
on the master — and a warm, single-threaded apply path).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db.engine import ExecutionProfile

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Maps an :class:`ExecutionProfile` to CPU work in reference seconds."""

    #: Fixed cost of receiving/parsing/dispatching any statement
    #: (connection handling, SQL parse, plan, result marshalling on a
    #: 2011-era m1.small).
    per_statement_s: float = 0.014
    #: Cost per row visited while scanning or probing.
    per_row_examined_s: float = 0.0006
    #: Cost per row materialized into the result set.
    per_row_returned_s: float = 0.002
    #: Fixed extra cost of any committing write statement (commit, log
    #: flush).
    per_write_statement_s: float = 0.012
    #: Cost per row inserted/updated/deleted (row write + index
    #: maintenance).
    per_row_written_s: float = 0.010
    #: Fixed cost of a DDL statement.
    per_ddl_s: float = 0.010
    #: Multiplier applied when a slave's SQL thread replays a binlog
    #: statement (see module docstring).
    apply_cost_factor: float = 0.62
    #: Multiplier for row-based apply (no parse/plan — cheaper than
    #: re-executing the statement for simple OLTP rows).
    row_apply_cost_factor: float = 0.70

    def work_for(self, profile: ExecutionProfile) -> float:
        """CPU work for a statement executed on behalf of a client."""
        work = self.per_statement_s
        work += profile.rows_examined * self.per_row_examined_s
        work += profile.rows_returned * self.per_row_returned_s
        if profile.kind in ("insert", "update", "delete"):
            work += self.per_write_statement_s
            work += profile.rows_affected * self.per_row_written_s
        elif profile.kind == "ddl":
            work += self.per_ddl_s
        return work

    def apply_work_for(self, profile: ExecutionProfile) -> float:
        """CPU work for the slave SQL thread replaying one event."""
        return self.work_for(profile) * self.apply_cost_factor

    def row_apply_work(self, rows_affected: int) -> float:
        """CPU work for applying one row-based event batch."""
        return (self.per_write_statement_s
                + rows_affected * self.per_row_written_s) \
            * self.row_apply_cost_factor


#: Shared default calibrated against the paper's figures.
DEFAULT_COST_MODEL = CostModel()

"""Master failover: the flip side of the application-managed approach.

The managed cloud offerings the paper contrasts against (§I) run "a
replication architecture ... behind-the-scenes to enable automatic
failover"; an application managing its own replicas must do this
itself.  This module implements the classic MySQL procedure:

1. the master fails (or is retired) — its dump threads die with it;
2. the application picks the **most up-to-date slave** (highest
   received binlog position), lets it drain its relay log, and
   promotes it to master;
3. every other slave is re-synchronized from the new master (snapshot
   + binlog tail) and re-attached;
4. the proxy is re-pointed.

Asynchronous replication makes the data-loss window explicit: binlog
events the failed master had committed but no slave had received are
gone — exactly the §II caveat ("once the updated replica goes offline
before duplicating data, data loss may occur").
"""

from __future__ import annotations

from typing import Optional

from ..db.errors import DatabaseError
from .manager import ReplicationManager, resync_slave_from
from .master import MasterServer
from .slave import SlaveServer

__all__ = ["fail_master", "promote", "best_candidate",
           "data_loss_window"]


def fail_master(manager: ReplicationManager) -> MasterServer:
    """Kill the master: it stops serving and stops streaming.

    Returns the dead master (tests inspect its binlog to measure the
    data-loss window).
    """
    master = manager.master
    if master is None:
        raise DatabaseError("cluster has no master to fail")
    master.online = False
    for slave in list(master.slaves):
        master.detach_slave(slave)
    return master


def data_loss_window(dead_master: MasterServer,
                     candidate: SlaveServer) -> int:
    """Committed binlog events the candidate never received.

    This is the §II asynchronous-replication caveat made measurable:
    the master acknowledged these commits to clients, but they die
    with it.  Zero is possible (an idle master, or a candidate that
    was fully caught up) — a fault drill reports the *measured* value
    rather than assuming it.
    """
    return max(0, dead_master.binlog.head_position
               - candidate.received_position)


def best_candidate(manager: ReplicationManager) -> SlaveServer:
    """The slave holding the longest binlog prefix (received, not
    necessarily applied — the relay log is durable)."""
    if not manager.slaves:
        raise DatabaseError("no slave available for promotion")
    return max(manager.slaves,
               key=lambda s: (s.received_position, s.name))


def promote(manager: ReplicationManager,
            candidate: Optional[SlaveServer] = None,
            drain_poll: float = 0.05):
    """Process generator: fail over to ``candidate`` (default: best).

    Usage::

        new_master = yield from promote(manager)

    The old master must already be offline (see :func:`fail_master`).
    """
    old_master = manager.master
    if old_master is not None and old_master.online:
        raise DatabaseError("refusing to promote while the master is "
                            "online; call fail_master first")
    if candidate is None:
        candidate = best_candidate(manager)
    if candidate not in manager.slaves:
        raise DatabaseError(f"{candidate.name!r} is not in this cluster")

    # 1. Drain: apply everything already received into the relay log.
    while candidate.relay_backlog > 0:
        yield manager.sim.timeout(drain_poll)
        if not candidate.online or not candidate.instance.running:
            raise DatabaseError(
                f"candidate {candidate.name!r} failed while draining "
                f"its relay log; pick another candidate")

    # Every pass through the drain loop yielded, so everything
    # validated above is stale now (RACE001): re-read the cluster
    # state and re-validate before the irreversible rebrand.
    if candidate not in manager.slaves:
        raise DatabaseError(
            f"{candidate.name!r} left the cluster during the drain")
    if not candidate.online or not candidate.instance.running:
        raise DatabaseError(
            f"candidate {candidate.name!r} failed while draining "
            f"its relay log; pick another candidate")
    current = manager.master
    if current is not old_master and current is not None \
            and current.online:
        raise DatabaseError(
            "cluster was re-mastered during the drain; aborting this "
            "promotion")
    candidate.stop_replication()

    # 2. Rebrand the candidate's instance+data as the new master.
    new_master = MasterServer(
        manager.sim, candidate.instance, cost_model=manager.cost_model,
        default_database=manager.default_database,
        semi_sync=manager.semi_sync,
        binlog_format=manager.binlog_format)
    new_master.engine.binlog_format = manager.binlog_format
    new_master.engine = candidate.engine
    new_master.engine.commit_listener = new_master._on_commit
    new_master.engine.binlog_format = manager.binlog_format
    candidate.online = False  # the old slave identity is retired

    # 3. Re-sync and re-attach the remaining slaves.
    survivors = [s for s in manager.slaves if s is not candidate]
    manager.master = new_master
    manager.slaves = []
    for slave in survivors:
        # Fresh snapshot + relay log: discards both the dead master's
        # undelivered events and the interrupted SQL thread's stale
        # getter.
        resync_slave_from(manager.sim, new_master, slave,
                          manager.cloud.network)
        manager.slaves.append(slave)
    return new_master

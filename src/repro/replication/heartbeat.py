"""Heartbeat-based replication-delay measurement.

Implements the paper's methodology (§III-A) verbatim:

* a dedicated ``heartbeats`` database with a ``heartbeat`` table
  holding ``(id, ts)`` rows, replicated in SQL-statement format;
* a plug-in that periodically inserts a new row with a **global id**
  and the master's **local microsecond timestamp** (``USEC_NOW()``,
  the bug-#8523 workaround UDF);
* each slave re-executes the insert statement, committing the same
  global id with **its own local timestamp**;
* the replication delay for a heartbeat is the difference of the two
  timestamps — contaminated by clock skew, which the *relative* delay
  estimator cancels by subtracting an idle-baseline average, both
  averages trimmed by 5 % at each end (§IV-B.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..metrics import trimmed_mean
from ..sim import Simulator
from .master import MasterServer
from .slave import SlaveServer

__all__ = ["HEARTBEAT_DATABASE", "HEARTBEAT_TABLE", "HeartbeatPlugin",
           "HeartbeatSample", "collect_delays", "average_relative_delay_ms"]

HEARTBEAT_DATABASE = "heartbeats"
HEARTBEAT_TABLE = "heartbeats.heartbeat"


@dataclass(frozen=True)
class HeartbeatSample:
    """One heartbeat observed on both master and a slave."""

    heartbeat_id: int
    master_ts: float     # master's local clock at insert
    slave_ts: float      # slave's local clock at apply
    inserted_simtime: float  # true time of insert (windowing only)

    @property
    def delay_ms(self) -> float:
        """Raw delay, clock skew included — what the paper measures."""
        return (self.slave_ts - self.master_ts) * 1000.0


class HeartbeatPlugin:
    """Inserts one heartbeat row per ``interval`` on the master."""

    def __init__(self, sim: Simulator, master: MasterServer,
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.master = master
        self.interval = interval
        self.next_id = 1
        #: heartbeat id -> simulated insert time, for window filtering.
        self.inserted_at: dict[int, float] = {}
        #: heartbeat id -> binlog position of its INSERT, so trace
        #: analysis can pick the heartbeat population out of the
        #: replication-stage spans (binlog events carry only the
        #: *session* database, which is not ``heartbeats``).
        self.positions: dict[int, int] = {}
        self._process = None

    def install(self) -> None:
        """Create the heartbeats schema on the master (replicates as
        DDL, and is included in snapshots taken afterwards)."""
        self.master.admin(f"CREATE DATABASE IF NOT EXISTS "
                          f"{HEARTBEAT_DATABASE}")
        self.master.admin(
            f"CREATE TABLE IF NOT EXISTS {HEARTBEAT_TABLE} "
            f"(id INTEGER PRIMARY KEY, ts DOUBLE)")

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("heartbeat plugin already started")
        self._process = self.sim.process(self._run(), name="heartbeat")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def _run(self):
        from ..db.errors import DatabaseError
        from ..sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.interval)
                heartbeat_id = self.next_id
                self.next_id += 1
                inserted = self.sim.now
                self.inserted_at[heartbeat_id] = inserted
                mark = len(self.master.binlog.events)
                try:
                    yield from self.master.perform(
                        f"INSERT INTO {HEARTBEAT_TABLE} (id, ts) "
                        f"VALUES ({heartbeat_id}, USEC_NOW())")
                except DatabaseError:
                    # The master died under us (an injected crash): the
                    # plug-in dies with it, like a real master-side UDF
                    # job.  Post-failover staleness is measured by the
                    # cluster monitor's oracle instead.
                    del self.inserted_at[heartbeat_id]
                    return
                live = self.sim.live
                if live.enabled:
                    # The SLO plane's dead-man switch: the absence of
                    # these beats is what a master crash looks like.
                    live.publish("heartbeat.beat", float(heartbeat_id))
                self._note_position(heartbeat_id, mark, inserted)
        except Interrupt:
            return

    def _note_position(self, heartbeat_id: int, mark: int,
                       inserted: float) -> None:
        """Find the binlog event our INSERT produced.

        Other transactions may commit between our append and
        ``perform`` returning, so we scan forward from the pre-insert
        head for our own statement text — the id is globally unique,
        so the match is exact, not a heuristic.
        """
        needle = f"VALUES ({heartbeat_id}, "
        for event in self.master.binlog.events[mark:]:
            if isinstance(event.statement, str) and \
                    needle in event.statement:
                self.positions[heartbeat_id] = event.position
                tracer = self.sim.tracer
                if tracer.enabled:
                    tracer.instant(
                        "repl.heartbeat", category="replication",
                        track=f"repl:{self.master.name}",
                        hb_id=heartbeat_id, position=event.position,
                        inserted=inserted)
                return


def collect_delays(plugin: HeartbeatPlugin, slave: SlaveServer,
                   window_start: Optional[float] = None,
                   window_end: Optional[float] = None
                   ) -> list[HeartbeatSample]:
    """Join master and slave heartbeat tables on the global id.

    Heartbeats the slave has not applied yet are absent from its table
    and therefore excluded — the same censoring the paper's
    table-driven measurement has.  ``window_*`` filter on the *insert*
    time (simulated), selecting e.g. the steady-state phase.
    """
    master_rows = {row[0]: row[1] for row in plugin.master.admin(
        f"SELECT id, ts FROM {HEARTBEAT_TABLE}").result.rows}
    slave_rows = {row[0]: row[1] for row in slave.admin(
        f"SELECT id, ts FROM {HEARTBEAT_TABLE}").result.rows}
    samples = []
    for heartbeat_id, master_ts in sorted(master_rows.items()):
        inserted = plugin.inserted_at.get(heartbeat_id)
        if inserted is None:
            continue
        if window_start is not None and inserted < window_start:
            continue
        if window_end is not None and inserted >= window_end:
            continue
        slave_ts = slave_rows.get(heartbeat_id)
        if slave_ts is None:
            continue
        samples.append(HeartbeatSample(heartbeat_id, master_ts, slave_ts,
                                       inserted))
    return samples


def average_relative_delay_ms(loaded: list[HeartbeatSample],
                              baseline: list[HeartbeatSample],
                              trim: float = 0.05) -> float:
    """The paper's estimator: trimmed-mean delay under load minus
    trimmed-mean delay with no workload running.

    Both averages carry the same (NTP-stabilized) clock skew, so the
    subtraction cancels it, leaving the workload-induced delay change.
    """
    loaded_ms = [s.delay_ms for s in loaded]
    baseline_ms = [s.delay_ms for s in baseline]
    return trimmed_mean(loaded_ms, trim) - trimmed_mean(baseline_ms, trim)

"""The application-managed replication controller.

This is the "application-managed approach" of the paper's title: the
application itself provisions database VMs, wires up the master-slave
topology, and can grow or shrink the slave pool at runtime.  The
manager owns the full lifecycle:

* launch a master on a small instance (saturation observed early, as
  in the paper's setup) and start aggressive NTP on it;
* add a slave: launch the VM, take a master snapshot + binlog position
  (the paper's "pre-loaded, fully-synchronized database"), restore it,
  and attach the slave to the master's dump thread;
* remove a slave, detach and terminate;
* verify convergence: wait until every slave applied the binlog head,
  then compare table checksums (the heartbeat table is excluded — its
  timestamp column diverges *by design*, since every replica commits
  its own local clock reading).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..cloud.instance import InstanceType, SMALL
from ..cloud.provisioner import Cloud
from ..cloud.regions import Placement
from ..db.errors import DatabaseError
from ..sim import Simulator, Store
from ..sql.plancache import PlanCache
from .cost import CostModel, DEFAULT_COST_MODEL
from .heartbeat import HEARTBEAT_DATABASE
from .master import MasterServer
from .proxy import ReadWriteSplitProxy
from .slave import SlaveServer

__all__ = ["ReplicationManager", "resync_slave_from"]


def resync_slave_from(sim: Simulator, master: MasterServer,
                      slave: SlaveServer, network) -> None:
    """Snapshot-resync ``slave`` from ``master`` and re-attach it.

    The slave's replication threads stop, its relay log is discarded
    (with any undelivered or half-applied tail), its data is replaced
    by a fresh master snapshot taken at the current binlog head, and a
    new dump thread starts from that position — the same procedure
    ``add_slave`` uses for a brand-new replica.  Shared between crash
    recovery (ReplicationManager.resync_slave) and failover
    (promote re-syncs every survivor from the new master).
    """
    slave.stop_replication()
    slave.relay_log = Store(sim)
    slave.engine.restore(master.engine.snapshot())
    position = master.binlog.head_position
    slave.start_position = position
    slave.applied_position = position
    slave.received_position = position
    slave._sql_thread_process = None
    master.attach_slave(slave, network)


class ReplicationManager:
    """Builds and operates one master-slave cluster on the cloud."""

    def __init__(self, sim: Simulator, cloud: Cloud,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 default_database: str = "cloudstone",
                 ntp_period: Optional[float] = 1.0,
                 semi_sync: bool = False,
                 binlog_format: str = "statement",
                 plan_cache: Optional[PlanCache] = None):
        self.sim = sim
        self.cloud = cloud
        self.cost_model = cost_model
        self.default_database = default_database
        self.ntp_period = ntp_period
        self.semi_sync = semi_sync
        self.binlog_format = binlog_format
        #: One prepared-plan cache for the whole cluster: the ASTs it
        #: holds are frozen, so master, slave apply threads and the
        #: proxy can all share the same entries.
        self.plan_cache = plan_cache if plan_cache is not None \
            else PlanCache()
        if sim.metrics.enabled:
            self.plan_cache.attach_metrics(sim.metrics)
        self.master: Optional[MasterServer] = None
        self.slaves: list[SlaveServer] = []

    # -- provisioning ----------------------------------------------------------
    def create_master(self, placement: Placement,
                      itype: InstanceType = SMALL,
                      name: str = "master") -> MasterServer:
        if self.master is not None:
            raise RuntimeError("cluster already has a master")
        instance = self.cloud.launch(itype, placement, name=name)
        if self.ntp_period is not None:
            self.cloud.start_ntp(instance, period=self.ntp_period)
        self.master = MasterServer(
            self.sim, instance, cost_model=self.cost_model,
            default_database=self.default_database,
            semi_sync=self.semi_sync,
            binlog_format=self.binlog_format,
            plan_cache=self.plan_cache)
        self.master.admin(f"CREATE DATABASE IF NOT EXISTS "
                          f"{self.default_database}")
        return self.master

    def add_slave(self, placement: Placement,
                  itype: InstanceType = SMALL,
                  name: Optional[str] = None) -> SlaveServer:
        """Provision a slave, sync it from the master, start replicating.

        Safe to call at runtime (the elasticity feature of the
        application-managed approach): the snapshot and the binlog
        position are taken at the same instant, so no event is lost or
        applied twice.
        """
        if self.master is None:
            raise RuntimeError("create the master before adding slaves")
        if name is None:
            name = f"slave-{len(self.slaves) + 1}"
        instance = self.cloud.launch(itype, placement, name=name)
        if self.ntp_period is not None:
            self.cloud.start_ntp(instance, period=self.ntp_period)
        slave = SlaveServer(self.sim, instance, cost_model=self.cost_model,
                            default_database=self.default_database,
                            plan_cache=self.plan_cache)
        slave.engine.restore(self.master.engine.snapshot())
        slave.start_position = self.master.binlog.head_position
        slave.applied_position = slave.start_position
        self.master.attach_slave(slave, self.cloud.network)
        self.slaves.append(slave)
        return slave

    def remove_slave(self, slave: SlaveServer) -> None:
        if slave not in self.slaves:
            raise ValueError(f"{slave.name!r} is not part of this cluster")
        self.master.detach_slave(slave)
        self.slaves.remove(slave)
        self.cloud.terminate(slave.instance)

    # -- fault handling ---------------------------------------------------------
    def stall_replication(self, slave: SlaveServer) -> None:
        """Freeze the replication channel feeding ``slave``."""
        if self.master is None:
            raise DatabaseError("cluster has no master")
        self.master.channel_to(slave).stall()

    def resume_replication(self, slave: SlaveServer) -> None:
        """Unfreeze ``slave``'s channel; held events flush in order."""
        if self.master is None:
            raise DatabaseError("cluster has no master")
        self.master.channel_to(slave).resume()

    def resync_slave(self, slave: SlaveServer) -> None:
        """Re-synchronize a diverged or restarted slave from the master.

        A crashed slave loses its replication position (its relay log
        and any half-applied transaction are gone with the VM), so the
        recovery path mirrors ``add_slave``: fresh snapshot at the
        current binlog head, then stream from there.
        """
        if slave not in self.slaves:
            raise ValueError(f"{slave.name!r} is not part of this cluster")
        if self.master is None or not self.master.online:
            raise DatabaseError("cannot re-sync without an online master")
        if not slave.instance.running:
            raise DatabaseError(f"instance of {slave.name!r} is down; "
                                f"restart it before re-syncing")
        if any(attached is slave for attached in self.master.slaves):
            self.master.detach_slave(slave)
        slave.online = True
        resync_slave_from(self.sim, self.master, slave,
                          self.cloud.network)

    def build_proxy(self, client_placement: Placement,
                    policy: str = "round_robin",
                    rng: Optional[np.random.Generator] = None
                    ) -> ReadWriteSplitProxy:
        """The client-side read/write-splitting proxy for this cluster."""
        if self.master is None:
            raise RuntimeError("cluster has no master")
        return ReadWriteSplitProxy(self.cloud.network, self.master,
                                   self.slaves, client_placement,
                                   policy=policy, rng=rng,
                                   plan_cache=self.plan_cache)

    # -- convergence -------------------------------------------------------------
    def all_caught_up(self) -> bool:
        head = self.master.binlog.head_position
        return all(s.applied_position >= head for s in self.slaves)

    def wait_until_caught_up(self, poll: float = 0.05,
                             timeout: Optional[float] = None):
        """Process generator: block until every slave applied the head.

        Returns True, or False if ``timeout`` simulated seconds elapse
        first.  Only meaningful while no new writes are arriving.
        """
        deadline = None if timeout is None else self.sim.now + timeout
        while not self.all_caught_up():
            if deadline is not None and self.sim.now >= deadline:
                return False
            yield self.sim.timeout(poll)
        return True

    def data_checksum(self, server,
                      exclude_databases: tuple = (HEARTBEAT_DATABASE,)
                      ) -> tuple:
        """Checksum of a server's tables, excluding diverging-by-design
        databases (the heartbeat timestamps differ per replica)."""
        names = sorted(
            name for name in server.engine.tables
            if name.split(".", 1)[0] not in exclude_databases)
        return tuple((name, server.engine.tables[name].checksum_state())
                     for name in names)

    def verify_consistency(self) -> bool:
        """True when every slave's data equals the master's.

        Call after :meth:`wait_until_caught_up`; under active load the
        replicas are *eventually* consistent only.
        """
        reference = self.data_checksum(self.master)
        return all(self.data_checksum(slave) == reference
                   for slave in self.slaves)

"""The replication master.

All write transactions execute here.  Committed write statements are
appended to the binlog stamped with the master's local clock; one
binlog-dump thread per attached slave streams new events down an
ordered channel (asynchronous replication — the client's write returns
without waiting for any slave).

A semi-synchronous mode is provided as an extension (the paper's §II
discusses synchronous replication but evaluates only the asynchronous
mode): when enabled, a committing write blocks until at least one slave
acknowledges *receipt* (not application) of the event.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union, TYPE_CHECKING

from ..cloud.network import Network
from ..db.binlog import Binlog
from ..sim import Event
from ..sql.ast import Statement
from .messages import OrderedChannel
from .server import DatabaseServer

if TYPE_CHECKING:  # pragma: no cover
    from .slave import SlaveServer

__all__ = ["MasterServer"]


class MasterServer(DatabaseServer):
    """The single writable replica."""

    def __init__(self, *args, semi_sync: bool = False,
                 binlog_format: str = "statement", **kwargs):
        super().__init__(*args, read_only=False, **kwargs)
        if binlog_format not in ("statement", "row"):
            raise ValueError(f"binlog_format must be 'statement' or "
                             f"'row', got {binlog_format!r}")
        self.binlog = Binlog(self.sim, self.server_id)
        self.engine.binlog_format = binlog_format
        self.engine.commit_listener = self._on_commit
        self.semi_sync = semi_sync
        self.slaves: list["SlaveServer"] = []
        self._dump_processes = []
        self._channels: list[OrderedChannel] = []
        self._ack_position = 0
        self._ack_waiters: list[tuple[int, Event]] = []

    # -- binlog production ------------------------------------------------------
    def _on_commit(self, statements: list) -> None:
        tracer = self.sim.tracer
        for payload, database in statements:
            if isinstance(payload, str):
                event = self.binlog.append(payload, database,
                                           self.clock.now())
            else:
                event = self.binlog.append(
                    f"/* row-based event: {len(payload)} row(s) */",
                    database, self.clock.now(), row_ops=payload)
            if tracer.enabled:
                tracer.instant("repl.binlog", category="replication",
                               track=f"repl:{self.name}",
                               position=event.position)

    # -- slave attachment ---------------------------------------------------------
    def attach_slave(self, slave: "SlaveServer", network: Network) -> None:
        """Register ``slave`` and start streaming binlog events to it.

        The slave must already hold a snapshot consistent with its
        ``start_position`` (see ReplicationManager.add_slave).
        """
        if any(existing is slave for existing in self.slaves):
            raise ValueError(f"slave {slave.name!r} already attached")
        channel = OrderedChannel(network, self.placement, slave.placement,
                                 on_delivery=slave.receive_event)
        slave.connect_to_master(self, network)
        self.slaves.append(slave)
        self._channels.append(channel)
        process = self.sim.process(
            self._dump_thread(slave, channel),
            name=f"binlog-dump:{self.name}->{slave.name}")
        self._dump_processes.append(process)

    def detach_slave(self, slave: "SlaveServer") -> None:
        """Stop replicating to ``slave``."""
        for position, process in enumerate(self._dump_processes):
            if self.slaves[position] is slave:
                if process.is_alive:
                    process.interrupt("detached")
                del self.slaves[position]
                del self._dump_processes[position]
                del self._channels[position]
                return
        raise ValueError(f"slave {slave.name!r} is not attached")

    def channel_to(self, slave: "SlaveServer") -> OrderedChannel:
        """The replication channel feeding ``slave`` (fault injection
        stalls it; see ReplicationManager.stall_replication)."""
        for position, attached in enumerate(self.slaves):
            if attached is slave:
                return self._channels[position]
        raise ValueError(f"slave {slave.name!r} is not attached")

    def _dump_thread(self, slave: "SlaveServer", channel: OrderedChannel):
        cursor = slave.start_position
        tracer = self.sim.tracer
        try:
            while True:
                yield self.binlog.wait_for(cursor)
                events = self.binlog.read_from(cursor)
                for event in events:
                    if tracer.enabled:
                        # Ownership transfers to the slave, which ends
                        # the span when the event is delivered.
                        span = tracer.open_span(
                            "repl.ship", category="replication",
                            track=f"repl:{slave.name}",
                            position=event.position,
                            size_bytes=event.size_bytes)
                        slave.note_shipped(event.position, span)
                    channel.send(event, size_bytes=event.size_bytes)
                cursor += len(events)
        except Exception:
            return  # detached via interrupt

    # -- semi-sync plumbing ---------------------------------------------------------
    def acknowledge(self, position: int) -> None:
        """Called (over the network) when a slave received up to
        ``position``."""
        if position <= self._ack_position:
            return
        self._ack_position = position
        ready = [ev for pos, ev in self._ack_waiters if pos <= position]
        self._ack_waiters = [(pos, ev) for pos, ev in self._ack_waiters
                             if pos > position]
        for event in ready:
            event.succeed()

    def _wait_for_ack(self, position: int) -> Event:
        event = Event(self.sim)
        if position <= self._ack_position or not self.slaves:
            event.succeed()
        else:
            self._ack_waiters.append((position, event))
        return event

    def perform(self, statement: Union[str, Statement],
                params: Optional[Sequence[Any]] = None):
        result = yield from super().perform(statement, params)
        if self.semi_sync and result.committed:
            yield self._wait_for_ack(self.binlog.head_position)
        return result

    # -- introspection ----------------------------------------------------------------
    def slave_lag_positions(self) -> dict[str, int]:
        """Binlog events each slave has yet to apply."""
        head = self.binlog.head_position
        return {slave.name: head - slave.applied_position
                for slave in self.slaves}

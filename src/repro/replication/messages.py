"""Replication wire plumbing.

:class:`OrderedChannel` models one TCP connection between a master's
binlog-dump thread and a slave's IO thread: messages experience sampled
network latency but are delivered **in send order** (a later message is
never delivered before an earlier one), and sends pipeline — the sender
does not wait for acknowledgements.
"""

from __future__ import annotations

from typing import Any, Callable

from ..cloud.network import Network
from ..cloud.regions import Placement

__all__ = ["OrderedChannel"]


class OrderedChannel:
    """FIFO, pipelined message delivery between two placements."""

    def __init__(self, network: Network, src: Placement, dst: Placement,
                 on_delivery: Callable[[Any], None]):
        self.network = network
        self.src = src
        self.dst = dst
        self.on_delivery = on_delivery
        self._last_delivery_at = 0.0
        self._held: list[tuple[Any, int]] = []
        self._stalled = False
        self.messages_sent = 0

    def send(self, payload: Any, size_bytes: int = 0) -> float:
        """Send ``payload``; returns its (estimated) delivery time.

        The delivery time is ``now + sampled latency`` but never before
        the previously sent message's delivery (TCP ordering).  During
        a network partition (or an injected stall) the message is held —
        the connection keeps retransmitting — and flushed in order once
        the link heals (and the stall lifts).
        """
        if self.network.is_partitioned(self.src, self.dst) \
                or self._stalled or self._held:
            if not self._held and not self._stalled:
                self.network.when_healed(self.src, self.dst).callbacks \
                    .append(self._flush_held)
            self._held.append((payload, size_bytes))
            return float("inf")
        return self._dispatch(payload, size_bytes)

    # -- stalls ---------------------------------------------------------------
    def stall(self) -> None:
        """Freeze delivery (an injected replication-channel hang).

        Unlike a partition this is per-channel: other traffic between
        the same placements keeps flowing.
        """
        self._stalled = True

    def resume(self) -> None:
        """Lift a stall; held messages flush in send order."""
        if not self._stalled:
            return
        self._stalled = False
        self._flush_held(None)

    @property
    def held_count(self) -> int:
        """Messages waiting out a partition or stall."""
        return len(self._held)

    def _dispatch(self, payload: Any, size_bytes: int) -> float:
        sim = self.network.sim
        latency = self.network.sample_one_way(self.src, self.dst)
        deliver_at = max(sim.now + latency, self._last_delivery_at)
        self._last_delivery_at = deliver_at
        self.network.messages_sent += 1
        self.network.bytes_sent += size_bytes
        delay = deliver_at - sim.now
        sim.timeout(delay, value=payload).callbacks.append(
            lambda ev: self.on_delivery(ev.value))
        self.messages_sent += 1
        return deliver_at

    def _flush_held(self, _healed) -> None:
        if self._stalled:
            return  # resume() will flush when the stall lifts
        if self.network.is_partitioned(self.src, self.dst):
            # Partitioned again before the flush ran; wait once more.
            self.network.when_healed(self.src, self.dst).callbacks \
                .append(self._flush_held)
            return
        held, self._held = self._held, []
        for payload, size_bytes in held:
            self._dispatch(payload, size_bytes)

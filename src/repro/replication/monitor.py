"""Cluster telemetry: what an application managing its own replicas
has to watch.

The paper's conclusion is a list of operational hazards — master write
saturation, slave CPU contention starving the apply thread, delay
blowing up with workload, instance performance variation.  A real
application-managed deployment needs continuous visibility into all of
them; :class:`ClusterMonitor` samples the cluster on a fixed period
and keeps bounded history, and :func:`detect_pressure` turns a sample
into the signals an autoscaler (see ``examples/elastic_scaling.py``)
acts on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from sys import intern
from typing import Optional

from ..sim import Simulator
from .manager import ReplicationManager

__all__ = ["SlaveSample", "ClusterSample", "PressureSignals",
           "ClusterMonitor", "detect_pressure"]


@dataclass(frozen=True)
class SlaveSample:
    """One slave's state at a sampling instant."""

    name: str
    relay_backlog: int
    cpu_queue: int
    cpu_utilization: float
    applied_position: int
    seconds_behind: float


@dataclass(frozen=True)
class ClusterSample:
    """The whole tier at a sampling instant."""

    time: float
    master_cpu_utilization: float
    master_cpu_queue: int
    binlog_head: int
    slaves: tuple[SlaveSample, ...]

    @property
    def worst_backlog(self) -> int:
        return max((s.relay_backlog for s in self.slaves), default=0)

    @property
    def worst_seconds_behind(self) -> float:
        return max((s.seconds_behind for s in self.slaves), default=0.0)

    @property
    def max_slave_utilization(self) -> float:
        return max((s.cpu_utilization for s in self.slaves), default=0.0)


@dataclass(frozen=True)
class PressureSignals:
    """Boiled-down scaling signals."""

    slaves_overloaded: bool
    master_overloaded: bool
    replication_lagging: bool

    @property
    def scale_out_helps(self) -> bool:
        """Adding a slave relieves slave-side pressure — but not a
        saturated master (the paper's central scaling limit)."""
        return (self.slaves_overloaded or self.replication_lagging) \
            and not self.master_overloaded


class ClusterMonitor:
    """Periodically samples a cluster; keeps bounded history."""

    def __init__(self, sim: Simulator, manager: ReplicationManager,
                 period: float = 10.0, history: int = 360):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.manager = manager
        self.period = period
        self.samples: deque[ClusterSample] = deque(maxlen=history)
        self._last_busy: dict[str, tuple[float, float]] = {}
        self._process = None
        #: Cached gauge handles: publishing every ``period`` must not
        #: rebuild per-slave name strings and re-hash registry lookups
        #: each sample.  Keyed by registry identity — observability can
        #: be (re)attached between samples.
        self._gauge_registry = None
        self._master_gauges = None
        self._slave_gauges: dict[str, tuple] = {}
        self._gap_names: dict[str, str] = {}

    def start(self) -> None:
        if self._process is not None:
            raise RuntimeError("monitor already started")
        self._process = self.sim.process(self._run(), name="monitor")

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    def _utilization(self, instance) -> float:
        """Utilization since the previous sample of this instance."""
        now, busy = self.sim.now, instance.busy_time
        previous = self._last_busy.get(instance.name)
        self._last_busy[instance.name] = (now, busy)
        if previous is None:
            return 0.0
        then, busy_then = previous
        elapsed = now - then
        if elapsed <= 0:
            return 0.0
        return min((busy - busy_then) / (elapsed * instance.itype.cores),
                   1.0)

    def sample_now(self) -> ClusterSample:
        """Take (and record) one sample immediately."""
        master = self.manager.master
        slaves = tuple(
            SlaveSample(
                name=slave.name,
                relay_backlog=slave.relay_backlog,
                cpu_queue=slave.cpu_queue_length(),
                cpu_utilization=self._utilization(slave.instance),
                applied_position=slave.applied_position,
                seconds_behind=slave.seconds_behind_master(),
            )
            for slave in self.manager.slaves)
        sample = ClusterSample(
            time=self.sim.now,
            master_cpu_utilization=self._utilization(master.instance),
            master_cpu_queue=master.cpu_queue_length(),
            binlog_head=master.binlog.head_position,
            slaves=slaves)
        self.samples.append(sample)
        metrics = self.sim.metrics
        if metrics.enabled:
            if self._gauge_registry is not metrics:
                self._gauge_registry = metrics
                self._master_gauges = None
                self._slave_gauges.clear()
            master_gauges = self._master_gauges
            if master_gauges is None:
                master_gauges = self._master_gauges = (
                    metrics.gauge("master.cpu_util"),
                    metrics.gauge("master.cpu_queue"),
                    metrics.gauge("master.binlog_head"))
            cpu_util, cpu_queue, binlog_head = master_gauges
            cpu_util.set(sample.master_cpu_utilization)
            cpu_queue.set(sample.master_cpu_queue)
            binlog_head.set(sample.binlog_head)
            for entry in sample.slaves:
                handles = self._slave_gauges.get(entry.name)
                if handles is None:
                    prefix = intern(f"slave.{entry.name}")
                    handles = self._slave_gauges[entry.name] = (
                        metrics.gauge(prefix + ".relay_backlog"),
                        metrics.gauge(prefix + ".cpu_queue"),
                        metrics.gauge(prefix + ".cpu_util"),
                        metrics.gauge(prefix + ".seconds_behind"))
                backlog, queue, util, behind = handles
                backlog.set(entry.relay_backlog)
                queue.set(entry.cpu_queue)
                util.set(entry.cpu_utilization)
                behind.set(entry.seconds_behind)
        live = self.sim.live
        if live.enabled:
            # Live-plane-only signal: events committed on the master a
            # slave has not *applied* yet.  The seconds-behind oracle
            # reads the relay log, so a partition or a stalled dump
            # connection (nothing arriving) looks like zero lag to it
            # — the gap to the binlog head is what actually grows.
            for entry in sample.slaves:
                gap_name = self._gap_names.get(entry.name)
                if gap_name is None:
                    gap_name = self._gap_names[entry.name] = intern(
                        f"slave.{entry.name}.repl_gap")
                live.publish(gap_name, float(
                    sample.binlog_head - entry.applied_position))
        return sample

    def _run(self):
        from ..sim import Interrupt
        try:
            while True:
                yield self.sim.timeout(self.period)
                self.sample_now()
        except Interrupt:
            return

    @property
    def latest(self) -> Optional[ClusterSample]:
        return self.samples[-1] if self.samples else None


def detect_pressure(sample: ClusterSample,
                    cpu_threshold: float = 0.90,
                    backlog_threshold: int = 20,
                    lag_threshold_s: float = 2.0) -> PressureSignals:
    """Classify a sample into scaling signals."""
    return PressureSignals(
        slaves_overloaded=sample.max_slave_utilization >= cpu_threshold
        or any(s.cpu_queue > 10 for s in sample.slaves),
        master_overloaded=sample.master_cpu_utilization >= cpu_threshold
        and sample.master_cpu_queue > 5,
        replication_lagging=sample.worst_backlog > backlog_threshold
        or sample.worst_seconds_behind > lag_threshold_s,
    )

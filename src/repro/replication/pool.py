"""DBCP-style connection pool.

The paper's client stack layers a connection pool (Apache Commons DBCP)
over the proxy so emulated users reuse released connections instead of
paying per-operation connection setup.  The pool bounds concurrent
in-flight operations at ``max_active``; borrowers beyond that wait in
FIFO order.
"""

from __future__ import annotations

from ..db.errors import DatabaseError
from ..sim import Request, Resource, SimulationError, Simulator

__all__ = ["ConnectionPool", "PooledConnection", "PoolTimeout"]


class PoolTimeout(DatabaseError):
    """``pool.acquire(timeout=...)`` gave up waiting for a slot.

    DBCP's ``maxWait``: under saturation (or a stalled cluster) a
    bounded wait turns an indefinite hang into a retryable error.
    Subclasses DatabaseError so driver-level error handling treats it
    like any other failed operation.
    """


class PooledConnection:
    """A borrowed connection handle; return it via ``pool.release``."""

    __slots__ = ("pool", "request", "borrowed_at")

    def __init__(self, pool: "ConnectionPool", request: Request,
                 borrowed_at: float):
        self.pool = pool
        self.request = request
        self.borrowed_at = borrowed_at


class ConnectionPool:
    """A bounded pool of database connections."""

    def __init__(self, sim: Simulator, max_active: int = 64):
        if max_active < 1:
            raise SimulationError(f"max_active must be >= 1, "
                                  f"got {max_active}")
        self.sim = sim
        self.max_active = max_active
        self._slots = Resource(sim, capacity=max_active)
        self.total_borrows = 0
        self.total_wait_time = 0.0
        self.timeouts = 0
        # Interned instrument handles: resolving "pool.borrows" etc.
        # through the registry on every borrow costs a dict lookup per
        # name; the handles are stable, so look them up once per
        # registry and reuse.
        self._metrics_registry = None
        self._borrow_counter = None
        self._timeout_counter = None
        self._wait_histogram = None

    def _instruments(self, metrics):
        if self._metrics_registry is not metrics:
            self._metrics_registry = metrics
            self._borrow_counter = metrics.counter("pool.borrows")
            self._timeout_counter = metrics.counter("pool.timeouts")
            self._wait_histogram = metrics.histogram("pool.wait_s")

    def acquire(self, timeout: float = None):
        """Process generator: borrow a connection (may wait).

        Usage: ``conn = yield from pool.acquire()``.  With ``timeout``
        the wait is bounded: if no slot is granted within ``timeout``
        simulated seconds the claim is withdrawn and :class:`PoolTimeout`
        raises — the borrower owns nothing afterwards.
        """
        asked_at = self.sim.now
        request = self._slots.request()
        try:
            with self.sim.tracer.span("pool.acquire", category="client",
                                      waiting=self.waiting):
                if timeout is None:
                    yield request
                else:
                    yield request | self.sim.timeout(timeout)
                    if not request.granted:
                        self.timeouts += 1
                        metrics = self.sim.metrics
                        if metrics.enabled:
                            self._instruments(metrics)
                            self._timeout_counter.inc()
                        raise PoolTimeout(
                            f"no connection within {timeout}s "
                            f"({self.waiting} waiting)")
        except BaseException:
            # The borrower was interrupted (or timed out, or the grant
            # failed) while waiting: withdraw the claim, or the pool
            # permanently loses a slot.  Releasing an ungranted
            # request cancels it.
            self._slots.release(request)
            raise
        waited = self.sim.now - asked_at
        self.total_borrows += 1
        self.total_wait_time += waited
        connection = PooledConnection(self, request,
                                      borrowed_at=self.sim.now)
        metrics = self.sim.metrics
        if metrics.enabled:
            self._instruments(metrics)
            self._borrow_counter.inc()
            self._wait_histogram.observe(waited)
        return connection

    def release(self, connection: PooledConnection) -> None:
        """Return a borrowed connection to the pool."""
        self._slots.release(connection.request)

    @property
    def active(self) -> int:
        return self._slots.in_use

    @property
    def waiting(self) -> int:
        return self._slots.queue_length

    @property
    def mean_wait_time(self) -> float:
        if self.total_borrows == 0:
            return 0.0
        return self.total_wait_time / self.total_borrows

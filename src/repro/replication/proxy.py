"""Read/write-splitting proxy (the MySQL Connector/J stand-in).

The paper's client stack sends **all write operations to the master**
and **distributes all read operations among the slaves**.  The proxy
implements that routing plus the client-side network round trip: a
statement executed through the proxy pays one-way latency from the
client to the chosen server, queues for the server's CPU, and pays the
return latency.

Balancing policies:

* ``round_robin`` — Connector/J's default for read replicas (used in
  the paper's experiments);
* ``random`` — uniform choice;
* ``least_outstanding`` — route to the slave with the fewest in-flight
  operations; an implementation of the "smart load balancer" the paper
  suggests in §IV-B.2.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

import numpy as np

from ..cloud.network import Network
from ..cloud.regions import Placement
from ..db.engine import ExecutionResult
from ..sql.ast import Statement
from ..sql.parser import parse
from ..sql.plancache import PlanCache
from .master import MasterServer
from .server import DatabaseServer
from .slave import SlaveServer

__all__ = ["ReadWriteSplitProxy", "BALANCING_POLICIES"]

BALANCING_POLICIES = ("round_robin", "random", "least_outstanding")


class ReadWriteSplitProxy:
    """Routes writes to the master and balances reads over slaves."""

    def __init__(self, network: Network, master: MasterServer,
                 slaves: Sequence[SlaveServer],
                 client_placement: Placement,
                 policy: str = "round_robin",
                 rng: Optional[np.random.Generator] = None,
                 read_your_writes_window: float = 0.0,
                 plan_cache: Optional[PlanCache] = None):
        if policy not in BALANCING_POLICIES:
            raise ValueError(f"unknown balancing policy {policy!r}; "
                             f"choose from {BALANCING_POLICIES}")
        if policy == "random" and rng is None:
            raise ValueError("random policy requires an rng")
        if read_your_writes_window < 0:
            raise ValueError("read_your_writes_window must be >= 0")
        self.network = network
        self.master = master
        self.slaves = list(slaves)
        self.client_placement = client_placement
        self.policy = policy
        self.rng = rng
        #: Seconds after a session's write during which that session's
        #: reads stick to the master — a standard mitigation for the
        #: asynchronous-replication staleness the paper characterizes.
        #: 0.0 (the paper's configuration) disables it.
        self.read_your_writes_window = read_your_writes_window
        #: Shared prepared-plan cache; the proxy prepares client SQL
        #: once and hands the frozen AST (plus extracted parameters)
        #: down the whole server path.
        self.plan_cache = plan_cache
        self._last_write_at: dict = {}
        self._cursor = 0
        self._outstanding: dict[str, int] = {}
        #: Slaves temporarily pulled out of read balancing (offline or
        #: too stale); they stay cluster members and keep replicating.
        self._evicted: set[str] = set()
        self.reads_routed = 0
        self.writes_routed = 0
        self.sticky_reads = 0
        self.evictions = 0
        self.readmissions = 0

    # -- routing ------------------------------------------------------------
    def note_write(self, session) -> None:
        """Record that ``session`` just wrote (for read-your-writes)."""
        if session is not None and self.read_your_writes_window > 0:
            self._last_write_at[session] = self.network.sim.now

    def route(self, statement: Statement,
              session=None) -> DatabaseServer:
        """Pick the server a statement should run on."""
        if statement.is_write or statement.is_transaction_control:
            self.writes_routed += 1
            self.note_write(session)
            return self.master
        return self.pick_read_server(session=session)

    def _session_is_sticky(self, session) -> bool:
        if session is None or self.read_your_writes_window <= 0:
            return False
        last_write = self._last_write_at.get(session)
        return last_write is not None and \
            self.network.sim.now - last_write < self.read_your_writes_window

    # -- health-based eviction -----------------------------------------------
    def evict(self, slave: SlaveServer, reason: str = "") -> bool:
        """Pull ``slave`` out of read balancing (stale or offline).

        The slave remains attached to the master and keeps applying
        events; only client reads stop landing on it.  Returns True if
        the call changed anything.
        """
        if slave.name in self._evicted:
            return False
        self._evicted.add(slave.name)
        self.evictions += 1
        sim = self.network.sim
        if sim.tracer.enabled:
            sim.tracer.instant("proxy.evict", category="client",
                               slave=slave.name, reason=reason)
        if sim.metrics.enabled:
            sim.metrics.counter("proxy.evictions").inc()
        return True

    def readmit(self, slave: SlaveServer) -> bool:
        """Return a recovered slave to read balancing."""
        if slave.name not in self._evicted:
            return False
        self._evicted.discard(slave.name)
        self.readmissions += 1
        sim = self.network.sim
        if sim.tracer.enabled:
            sim.tracer.instant("proxy.readmit", category="client",
                               slave=slave.name)
        if sim.metrics.enabled:
            sim.metrics.counter("proxy.readmissions").inc()
        return True

    def is_evicted(self, slave: SlaveServer) -> bool:
        return slave.name in self._evicted

    @property
    def healthy_slaves(self) -> list[SlaveServer]:
        """Slaves currently eligible for reads."""
        return [s for s in self.slaves
                if s.online and s.name not in self._evicted]

    def pick_read_server(self, session=None) -> DatabaseServer:
        """Balance a read over the healthy slaves (master if none).

        Multi-statement read operations call this once and pin every
        statement to the chosen replica for session consistency.  A
        session inside its read-your-writes window reads the master.
        """
        if self._session_is_sticky(session):
            self.reads_routed += 1
            self.sticky_reads += 1
            return self.master
        candidates = self.healthy_slaves
        if not candidates:
            # Degenerate cluster (or every slave evicted): the master
            # serves reads too.
            self.reads_routed += 1
            return self.master
        self.reads_routed += 1
        if self.policy == "round_robin":
            slave = candidates[self._cursor % len(candidates)]
            self._cursor += 1
            return slave
        if self.policy == "random":
            return candidates[int(self.rng.integers(len(candidates)))]
        return min(candidates,
                   key=lambda s: (self._outstanding.get(s.name, 0),
                                  s.name))

    # -- execution ------------------------------------------------------------
    def execute(self, statement: Union[str, Statement],
                params: Optional[Sequence[Any]] = None,
                server: Optional[DatabaseServer] = None):
        """Process generator: run one statement through the proxy.

        Usage: ``result = yield from proxy.execute(sql)``.
        Pass ``server`` to pin the statement (used for multi-statement
        operations that must stay on one replica).
        """
        if isinstance(statement, str):
            cache = self.plan_cache
            if cache is None:
                statement = parse(statement)
            else:
                statement, params = cache.prepare(statement, params)
        target = server if server is not None else self.route(statement)
        self._outstanding[target.name] = \
            self._outstanding.get(target.name, 0) + 1
        with self.network.sim.tracer.span(
                "proxy.execute", category="client", server=target.name,
                write=statement.is_write):
            try:
                yield self.network.send(self.client_placement,
                                        target.placement)
                result: ExecutionResult = yield from target.perform(
                    statement, params)
                yield self.network.send(target.placement,
                                        self.client_placement)
            finally:
                self._outstanding[target.name] -= 1
        return result

    def set_master(self, master: MasterServer) -> None:
        """Re-point writes after a failover promotion."""
        self.master = master
        self.slaves = [s for s in self.slaves if s.online]

    def add_slave(self, slave: SlaveServer) -> None:
        self.slaves.append(slave)

    def remove_slave(self, slave: SlaveServer) -> None:
        self.slaves = [s for s in self.slaves if s is not slave]

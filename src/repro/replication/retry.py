"""Bounded retry with exponential backoff.

The paper's client stack (Cloudstone over DBCP over Connector/J)
retries failed operations the way production drivers do: a bounded
number of attempts, exponential backoff between them, and a cap so
backoff never exceeds a human-scale pause.  The policy is data; the
retry *loop* lives in the caller (see
``workloads/cloudstone/driver.py``), which must release any held
connection **before** sleeping out the backoff — a fault interrupting
the sleep must find the borrower owning nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries a failed database operation."""

    #: Total attempts, the first one included (1 = no retry).
    max_attempts: int = 3
    #: Backoff before the first retry, seconds.
    base_backoff: float = 0.1
    #: Backoff growth per retry.
    multiplier: float = 2.0
    #: Ceiling on a single backoff, seconds.
    max_backoff: float = 5.0
    #: Full-jitter fraction: each backoff is scaled by a uniform draw
    #: from ``[1 - jitter, 1 + jitter]`` (0 disables jitter).
    jitter: float = 0.0
    #: Bound on ``pool.acquire`` waits, seconds (None: wait forever).
    acquire_timeout: Optional[float] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, "
                             f"got {self.max_attempts}")
        if self.base_backoff < 0 or self.max_backoff < 0:
            raise ValueError("backoffs must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, "
                             f"got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), "
                             f"got {self.jitter}")
        if self.acquire_timeout is not None and self.acquire_timeout <= 0:
            raise ValueError("acquire_timeout must be positive")

    def backoff_for(self, attempt: int, rng=None) -> float:
        """Backoff after failed attempt number ``attempt`` (0-based).

        ``rng`` (a numpy Generator) supplies the jitter draw; pass the
        caller's seeded stream so backoff stays deterministic.
        """
        delay = min(self.base_backoff * self.multiplier ** attempt,
                    self.max_backoff)
        if self.jitter > 0.0 and rng is not None:
            delay *= float(rng.uniform(1.0 - self.jitter,
                                       1.0 + self.jitter))
        return delay


#: The configuration fault drills run with: three attempts, 100 ms
#: doubling backoff, and a 10 s bound on pool waits.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3, base_backoff=0.1,
                                   multiplier=2.0, max_backoff=5.0,
                                   jitter=0.1, acquire_timeout=10.0)

"""The database server: storage engine + instance CPU + cost model.

A :class:`DatabaseServer` binds a :class:`~repro.db.StorageEngine` to a
simulated :class:`~repro.cloud.Instance`.  Statement execution has two
phases: the engine runs the statement (logically instantaneous), then
the server holds a CPU core for the cost-model work — which is where
queueing, saturation and all the paper's performance phenomena arise.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence, Union

import numpy as np

from ..cloud.instance import Instance
from ..cloud.regions import Placement
from ..db.engine import ExecutionResult, StorageEngine
from ..db.errors import DatabaseError
from ..db.functions import standard_functions
from ..sim import Simulator
from ..sql.ast import Statement
from ..sql.parser import parse
from ..sql.plancache import PlanCache
from .cost import CostModel, DEFAULT_COST_MODEL

__all__ = ["DatabaseServer"]

_server_ids = itertools.count(1)


class DatabaseServer:
    """A MySQL-like server process on one instance."""

    def __init__(self, sim: Simulator, instance: Instance,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 default_database: str = "cloudstone",
                 server_id: Optional[int] = None,
                 read_only: bool = False,
                 rng: Optional[np.random.Generator] = None,
                 plan_cache: Optional[PlanCache] = None):
        self.sim = sim
        self.instance = instance
        self.cost_model = cost_model
        self.server_id = server_id if server_id is not None \
            else next(_server_ids)
        self.read_only = read_only
        rand = (lambda: float(rng.random())) if rng is not None else None
        self.engine = StorageEngine(
            functions=standard_functions(instance.clock.now, rand=rand),
            default_database=default_database,
            plan_cache=plan_cache)
        self.queries_served = 0
        self.writes_served = 0
        #: False once the server has failed or been retired; client
        #: statements are rejected (connection refused).
        self.online = True

    @property
    def name(self) -> str:
        return self.instance.name

    @property
    def placement(self) -> Placement:
        return self.instance.placement

    @property
    def clock(self):
        return self.instance.clock

    # -- client path ---------------------------------------------------------
    def perform(self, statement: Union[str, Statement],
                params: Optional[Sequence[Any]] = None):
        """Process generator: execute a client statement, charging CPU.

        The statement queues for a core and executes at service start,
        so its effects (including binlog appends on a master) become
        visible only after earlier requests were served — faithful
        queueing semantics.

        Usage: ``result = yield from server.perform(sql)``.
        """
        if isinstance(statement, str):
            cache = self.engine.plan_cache
            if cache is None:
                statement = parse(statement)
            else:
                statement, params = cache.prepare(statement, params)
        if not self.online:
            raise DatabaseError(f"server {self.name!r} is offline")
        if self.read_only and statement.is_write:
            raise DatabaseError(
                f"server {self.name!r} is read-only (a replication "
                f"slave); writes must go to the master")

        def job():
            result = self.engine.execute(statement, params)
            return result, self.cost_model.work_for(result.profile)

        with self.sim.tracer.span("db.execute", category="server",
                                  server=self.name,
                                  queue=self.instance.queue_length):
            result = yield from self.instance.run_on_cpu(job)
        self.queries_served += 1
        if statement.is_write:
            self.writes_served += 1
        return result

    # -- administrative path (no CPU accounting) -----------------------------
    def admin(self, statement: Union[str, Statement],
              params: Optional[Sequence[Any]] = None,
              database: Optional[str] = None) -> ExecutionResult:
        """Execute without charging CPU — setup, loading, inspection.

        The paper's runs start "with a pre-loaded, fully-synchronized
        database"; the loader uses this path so ramp-up measurements
        are not polluted by bulk-load CPU.
        """
        return self.engine.execute(statement, params, database=database)

    # -- introspection ----------------------------------------------------------
    def cpu_queue_length(self) -> int:
        return self.instance.queue_length

    def __repr__(self) -> str:
        role = "slave" if self.read_only else "server"
        return f"<{type(self).__name__} {self.name} ({role}) " \
               f"at {self.placement.zone}>"

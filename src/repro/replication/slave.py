"""The replication slave.

A slave runs two replication threads, exactly like MySQL:

* the **IO thread** receives binlog events from the master's dump
  thread and appends them to the relay log (modelled as the ordered
  channel's delivery callback — its CPU cost is negligible next to
  statement execution);
* the **SQL thread** pops relay-log events one at a time, re-executes
  the statement text against the local engine (evaluating
  non-deterministic functions such as ``USEC_NOW()`` on the *local*
  clock — the paper's heartbeat measurement mechanism) and charges the
  apply cost to the local CPU.

The SQL thread is single-threaded and shares the instance CPU with
client read queries: under read pressure the relay log backs up and
replication delay grows — the central dynamic behind the paper's
Figs. 5 and 6.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..cloud.network import Network
from ..db.binlog import BinlogEvent
from ..sim import Store
from .server import DatabaseServer

if TYPE_CHECKING:  # pragma: no cover
    from .master import MasterServer

__all__ = ["SlaveServer"]


class SlaveServer(DatabaseServer):
    """A read-only replica applying the master's binlog."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, read_only=True, **kwargs)
        self.relay_log: Store = Store(self.sim)
        self.start_position = 0
        self.applied_position = 0
        self.received_position = 0
        self.events_applied = 0
        self.events_dropped = 0
        self.bytes_received = 0
        self._master: Optional["MasterServer"] = None
        self._network: Optional[Network] = None
        self._sql_thread_process = None
        self._ship_spans: dict = {}
        self._relay_spans: dict = {}

    def connect_to_master(self, master: "MasterServer",
                          network: Network) -> None:
        """Called by MasterServer.attach_slave; starts the SQL thread."""
        self._master = master
        self._network = network
        if self._sql_thread_process is None:
            self._sql_thread_process = self.sim.process(
                self._sql_thread(), name=f"sql-thread:{self.name}")

    def stop_replication(self) -> None:
        """Kill the SQL thread (promotion or decommissioning)."""
        self._master = None
        if self._sql_thread_process is not None \
                and self._sql_thread_process.is_alive:
            self._sql_thread_process.interrupt("stopped")
        self._sql_thread_process = None

    # -- observability ------------------------------------------------------
    def note_shipped(self, position: int, span) -> None:
        """Master's dump thread hands over the ``repl.ship`` span; the
        IO thread ends it when the event arrives."""
        self._ship_spans[position] = span

    # -- IO thread ----------------------------------------------------------
    def receive_event(self, event: BinlogEvent) -> None:
        """Delivery callback of the replication channel (IO thread).

        Events from a server that is no longer this slave's master
        (in-flight deliveries racing a failover) are dropped.
        """
        ship_span = self._ship_spans.pop(event.position, None)
        master = self._master
        if master is None or event.server_id != master.server_id:
            if ship_span is not None:
                ship_span.set_attribute("dropped", True)
                ship_span.end()
            self.events_dropped += 1
            return
        if ship_span is not None:
            ship_span.end()
        tracer = self.sim.tracer
        if tracer.enabled:
            self._relay_spans[event.position] = tracer.open_span(
                "repl.relay", category="replication",
                track=f"repl:{self.name}", position=event.position,
                backlog=len(self.relay_log))
        self.relay_log.put(event)
        self.received_position = event.position
        self.bytes_received += event.size_bytes
        if master.semi_sync:
            self._network.send(
                self.placement, master.placement, event.position,
                on_delivery=master.acknowledge)

    # -- SQL thread -----------------------------------------------------------
    def _sql_thread(self):
        from ..sim import Interrupt
        from ..db.rowevents import apply_row_ops
        try:
            while True:
                event: BinlogEvent = yield self.relay_log.get()

                def apply_job(event=event):
                    # Runs when the SQL thread reaches a core: read
                    # queries queued ahead of it still see the
                    # pre-apply state (replication staleness).
                    if event.row_ops is not None:
                        affected = apply_row_ops(self.engine,
                                                 event.row_ops)
                        return None, self.cost_model.row_apply_work(
                            affected)
                    result = self.engine.execute(
                        event.statement, database=event.database)
                    return None, self.cost_model.apply_work_for(
                        result.profile)

                relay_span = self._relay_spans.pop(event.position, None)
                if relay_span is not None:
                    relay_span.end()
                tracer = self.sim.tracer
                if tracer.enabled:
                    with tracer.span("repl.apply", category="replication",
                                     track=f"repl:{self.name}",
                                     position=event.position):
                        yield from self.instance.run_on_cpu(apply_job)
                else:
                    yield from self.instance.run_on_cpu(apply_job)
                self.applied_position = event.position
                self.events_applied += 1
        except Interrupt:
            return

    # -- introspection ------------------------------------------------------------
    @property
    def relay_backlog(self) -> int:
        """Events received but not yet applied."""
        return len(self.relay_log)

    def seconds_behind_master(self) -> float:
        """True replication lag in simulated seconds (oracle metric).

        The paper cannot observe this directly — it estimates delay via
        heartbeats and relative-delay subtraction; this oracle exists
        so tests can validate the estimator.
        """
        if self.relay_log.items:
            oldest: BinlogEvent = self.relay_log.items[0]
            return self.sim.now - oldest.commit_simtime
        return 0.0

"""Discrete-event simulation substrate.

Public surface: the :class:`Simulator` kernel, process/event primitives,
queueing resources and named deterministic RNG streams.
"""

from .kernel import (AllOf, AnyOf, Event, Interrupt, Process, SimulationError,
                     Simulator, Timeout)
from .resources import Gate, Request, Resource, Store
from .rng import RandomStreams

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
    "Resource",
    "Request",
    "Store",
    "Gate",
    "RandomStreams",
]

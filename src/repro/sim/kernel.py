"""Discrete-event simulation kernel.

This module provides the event loop that every other subsystem of the
reproduction runs on: the simulated EC2 instances, the network, the
database servers, the replication threads and the emulated Cloudstone
users are all processes scheduled by a :class:`Simulator`.

The design follows the classic generator-based style (as popularized by
SimPy): a *process* is a Python generator that yields :class:`Event`
objects; the kernel resumes the generator when the yielded event fires.
Only the small subset of primitives needed by this project is
implemented, which keeps the kernel easy to reason about and to test
exhaustively.

Time is a ``float`` number of **seconds** since the start of the
simulation.  All components agree on this unit.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.live.streams import NULL_LIVE
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER

__all__ = [
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called (directly or via the scheduler), and then
    invokes its callbacks exactly once.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered",
                 "_defused", "_owner")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._defused = False

    def __repr__(self) -> str:
        if not self._triggered:
            state = "pending"
        elif self._ok:
            state = "succeeded"
        else:
            state = f"failed({self._value!r})"
        return f"<{type(self).__name__} {state}>"

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event fired via :meth:`succeed`."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event fired with."""
        if not self._triggered:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, delivering ``value`` to waiters."""
        if self._triggered:
            raise SimulationError(
                f"succeed() on {self!r}: an event fires exactly once — "
                f"create a fresh event or guard on event.triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception, re-raised in waiters."""
        if self._triggered:
            raise SimulationError(
                f"fail() on {self!r}: an event fires exactly once — "
                f"create a fresh event or guard on event.triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._post(self)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel will not re-raise
        it at the top level when nobody waited on it."""
        self._defused = True

    # -- composition --------------------------------------------------------
    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule(self, delay)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.triggered:
                self._child_fired(event)
            elif event.callbacks is not None:
                event.callbacks.append(self._child_fired)

    def _collect(self) -> dict[Event, Any]:
        return {e: e._value for e in self.events if e.triggered and e._ok}

    def _child_fired(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._n_fired += 1
        if self._done():
            self.succeed(self._collect())

    def _done(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires as soon as any child event fires."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._n_fired >= 1


class AllOf(_Condition):
    """Fires when all child events have fired."""

    __slots__ = ()

    def _done(self) -> bool:
        return self._n_fired >= len(self.events)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running process; also an event that fires when the process ends.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event fires the generator is resumed with the event's value
    (or the event's exception is thrown into it).
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off the process via an immediately-scheduled init event.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed()

    def __repr__(self) -> str:
        if not self._triggered:
            state = "alive"
        elif self._ok:
            state = "finished"
        else:
            state = f"failed({self._value!r})"
        return f"<Process {self.name!r} {state}>"

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._triggered:
            raise SimulationError(f"cannot interrupt dead process {self.name}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        hurler = Event(self.sim)
        hurler.callbacks.append(
            lambda _ev: self._step(Interrupt(cause), as_exception=True))
        hurler.succeed()

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._step(event._value, as_exception=False)
        else:
            event.defuse()
            self._step(event._value, as_exception=True)

    def _step(self, value: Any, as_exception: bool) -> None:
        if self._triggered:
            return  # already finished (e.g. interrupt raced completion)
        if self.sim.sanitizer is not None:
            self.sim.sanitizer.on_resume(self)
        self.sim._active_process = self
        try:
            if as_exception:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
            self.generator.close()
            self.fail(exc)
            return
        if target.callbacks is None:
            # Already processed: resume immediately via a fresh event so
            # ordering stays deterministic.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume)
            if target._ok:
                relay.succeed(target._value)
            else:
                target.defuse()
                relay.fail(target._value)
            self._waiting_on = relay
        else:
            target.callbacks.append(self._resume)
            self._waiting_on = target


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(5.0)
            return "done"

        proc = sim.process(worker(sim))
        sim.run()
        assert sim.now == 5.0 and proc.value == "done"
    """

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        #: Events due *now* (zero-delay schedules and just-triggered
        #: posts) bypass the heap: they would land at the top anyway,
        #: so a FIFO deque serves them in O(1) instead of O(log n).
        #: Invariant: every entry is due at exactly ``_now`` — the
        #: clock cannot advance while the deque is non-empty.
        self._immediate: deque[tuple[int, Event]] = deque()
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None
        #: Observability hooks (see :mod:`repro.obs`).  The defaults
        #: are no-ops; the scheduling/step hot path pays only an
        #: ``is not None`` guard for the profiler, and instrumentation
        #: sites elsewhere pay a guard or a no-op call.
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.profiler = None
        self.live = NULL_LIVE
        #: Optional race sanitizer (see repro.analysis.race.sanitizer);
        #: when set, every process resumption bumps its epoch so the
        #: sanitizer can tell reads-before-yield from reads-after.
        self.sanitizer = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event factories -----------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event; fire it with ``succeed``/``fail``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------------
    def _owner_name(self) -> str:
        """Profiling attribution: the process scheduling right now."""
        process = self._active_process
        return process.name if process is not None else "<kernel>"

    def _schedule(self, event: Event, delay: float) -> None:
        if self.profiler is not None:
            event._owner = owner = self._owner_name()
            self.profiler.on_schedule(owner)
        if delay == 0.0:
            self._immediate.append((next(self._counter), event))
        else:
            heapq.heappush(self._heap,
                           (self._now + delay, next(self._counter), event))

    def _post(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks to run now."""
        if self.profiler is not None:
            event._owner = owner = self._owner_name()
            self.profiler.on_schedule(owner)
        self._immediate.append((next(self._counter), event))

    # -- running ----------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event; raises IndexError when empty.

        Order is exact global ``(time, seq)`` order: the deque front
        always has the smallest sequence number among deque entries
        (FIFO over a monotonic counter), so the heap only wins when it
        holds a same-time event scheduled earlier.
        """
        immediate = self._immediate
        if immediate:
            heap = self._heap
            if heap and heap[0][0] <= self._now \
                    and heap[0][1] < immediate[0][0]:
                when, _seq, event = heapq.heappop(heap)
            else:
                _seq, event = immediate.popleft()
                when = self._now
        else:
            when, _seq, event = heapq.heappop(self._heap)
        if self.profiler is not None:
            # Attribute the clock advance this event causes to the
            # process that scheduled it; advances telescope, so the
            # per-owner sums decompose the final simulated time.
            self.profiler.on_execute(getattr(event, "_owner", "<kernel>"),
                                     when - self._now)
        self._now = when
        if not event._triggered:
            # A scheduled Timeout reaching the head of the heap fires now.
            event._triggered = True
            event._ok = True
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue is empty or ``until`` is reached.

        When ``until`` is given, the clock is advanced exactly to
        ``until`` even if the last event fires earlier.
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until {until!r}: clock already at {self._now!r}")
        while self._heap or self._immediate:
            when = self._now if self._immediate else self._heap[0][0]
            if until is not None and when > until:
                break
            self.step()
        if until is not None and until > self._now:
            # Attribute the trailing idle advance (no event fires
            # between the last one and ``until``) so the profiler's
            # per-owner sums telescope to sim.now *exactly* — any
            # remaining unattributed residue then indicates a bug.
            if self.profiler is not None:
                self.profiler.on_execute("<idle>", until - self._now)
            self._now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when empty."""
        if self._immediate:
            return self._now
        return self._heap[0][0] if self._heap else float("inf")

"""Queueing primitives built on the simulation kernel.

Three primitives cover every queueing structure in the reproduction:

* :class:`Resource` — a counted resource with a FIFO wait queue (CPU
  cores, connection-pool slots).
* :class:`Store` — an unbounded-or-bounded FIFO queue of items (request
  queues, relay logs, network mailboxes).
* :class:`Gate` — a level-triggered condition processes can wait on
  (used e.g. to park the slave SQL thread until the relay log is
  non-empty).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .kernel import Event, Simulator, SimulationError

__all__ = ["Request", "Resource", "Store", "Gate"]


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Yield the request to wait for the grant, then call
    :meth:`Resource.release` with it when done::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)
    """

    __slots__ = ("resource", "granted")

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource
        self.granted = False


class Resource:
    """A resource with ``capacity`` identical slots and a FIFO queue."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, req: Request) -> None:
        """Return a slot previously granted to ``req``.

        Releasing an ungranted request cancels it instead.
        """
        if not req.granted:
            try:
                self._waiting.remove(req)
            except ValueError:
                raise SimulationError("request not held and not waiting")
            return
        req.granted = False
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def _grant(self, req: Request) -> None:
        self._in_use += 1
        req.granted = True
        req.succeed(req)


class Store:
    """A FIFO queue of items with blocking ``get`` and optional capacity."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires once it is stored."""
        done = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            self._getters.popleft().succeed(item)
            done.succeed(item)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            done.succeed(item)
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Dequeue the oldest item; blocks (as an event) when empty."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _admit_putter(self) -> None:
        if self._putters and (self.capacity is None
                              or len(self._items) < self.capacity):
            done, item = self._putters.popleft()
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                self._items.append(item)
            done.succeed(item)


class Gate:
    """A level-triggered condition.

    ``wait()`` returns an event that fires as soon as the gate is (or
    becomes) open.  Unlike a one-shot event the gate can close and
    reopen repeatedly.
    """

    def __init__(self, sim: Simulator, open_: bool = False):
        self.sim = sim
        self._open = open_
        self._waiters: list[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        """Open the gate and release every current waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

"""Deterministic named random streams.

Every stochastic component in the reproduction (network jitter, clock
drift, think times, instance-performance lottery, workload mixes) draws
from its own named stream so that experiments are reproducible and a
change to one component's draw order never perturbs another component.

Streams are derived from a root seed plus the stream name via
``numpy.random.SeedSequence``, which guarantees independent,
well-distributed child states.
"""

from __future__ import annotations

import zlib
from typing import Optional

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent, reproducible RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name``, created on first use.

        The same ``(seed, name)`` pair always yields the same sequence.
        """
        gen = self._streams.get(name)
        if gen is None:
            tag = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed,
                                         spawn_key=(tag,))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """A per-index child stream, e.g. one per emulated user."""
        return self.stream(f"{name}[{index}]")

    # Convenience draws -----------------------------------------------------
    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def lognormal_around(self, name: str, median: float,
                         sigma: float) -> float:
        """Lognormal sample with the given median (scale) and shape."""
        return float(median * np.exp(self.stream(name).normal(0.0, sigma)))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def normal(self, name: str, mean: float, std: float) -> float:
        return float(self.stream(name).normal(mean, std))

    def choice_weighted(self, name: str, options: list,
                        weights: Optional[list[float]] = None):
        """Pick one of ``options`` with optional relative ``weights``."""
        gen = self.stream(name)
        if weights is None:
            return options[int(gen.integers(len(options)))]
        total = float(sum(weights))
        probabilities = [w / total for w in weights]
        return options[int(gen.choice(len(options), p=probabilities))]

"""SQL front end: lexer, parser, AST, expression evaluation, rendering."""

from . import ast
from .expressions import EvalContext, EvaluationError, evaluate, like_match
from .lexer import LexerError, tokenize
from .parser import ParseError, parse, parse_many
from .plancache import PlanCache, fingerprint
from .render import render_expression, render_literal, render_statement

__all__ = [
    "ast",
    "tokenize",
    "LexerError",
    "parse",
    "parse_many",
    "ParseError",
    "evaluate",
    "EvalContext",
    "EvaluationError",
    "like_match",
    "PlanCache",
    "fingerprint",
    "render_statement",
    "render_expression",
    "render_literal",
]

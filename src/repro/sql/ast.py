"""Abstract syntax tree for the SQL dialect.

All nodes are frozen dataclasses; each statement node knows whether it
reads or writes (``is_write``), which is what the read/write-splitting
proxy keys its routing on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Expression", "Literal", "ColumnRef", "ParamRef", "BinaryOp", "UnaryOp",
    "FunctionCall", "InList", "BetweenOp", "LikeOp", "IsNull", "Star",
    "ColumnDef", "OrderItem", "JoinClause", "SelectItem",
    "Statement", "SelectStatement", "InsertStatement", "UpdateStatement",
    "DeleteStatement", "CreateTableStatement", "CreateIndexStatement",
    "DropTableStatement", "CreateDatabaseStatement", "UseStatement",
    "BeginStatement", "CommitStatement", "RollbackStatement",
]


# --------------------------------------------------------------- expressions
class Expression:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Literal(Expression):
    value: object  # int | float | str | bool | None


@dataclass(frozen=True, slots=True)
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True, slots=True)
class ParamRef(Expression):
    """A ``?`` placeholder, bound at execution time."""

    index: int


@dataclass(frozen=True, slots=True)
class BinaryOp(Expression):
    op: str  # '=', '<', '>', '<=', '>=', '!=', 'AND', 'OR', '+', '-', '*', '/', '%'
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class UnaryOp(Expression):
    op: str  # 'NOT', '-'
    operand: Expression


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    name: str  # uppercased
    args: tuple[Expression, ...]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True, slots=True)
class InList(Expression):
    operand: Expression
    options: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True, slots=True)
class BetweenOp(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True, slots=True)
class LikeOp(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False


@dataclass(frozen=True, slots=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass(frozen=True, slots=True)
class Star(Expression):
    """``*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


# ------------------------------------------------------------------ clauses
@dataclass(frozen=True, slots=True)
class ColumnDef:
    name: str
    type_name: str           # 'INTEGER', 'VARCHAR', ...
    type_arg: Optional[int]  # e.g. VARCHAR(64)
    primary_key: bool = False
    auto_increment: bool = False
    nullable: bool = True
    default: Optional[Literal] = None


@dataclass(frozen=True, slots=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True, slots=True)
class JoinClause:
    table: str
    alias: Optional[str]
    condition: Expression


@dataclass(frozen=True, slots=True)
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


# --------------------------------------------------------------- statements
class Statement:
    """Base class for statement nodes."""

    __slots__ = ()
    is_write = False
    is_transaction_control = False


@dataclass(frozen=True, slots=True)
class SelectStatement(Statement):
    items: tuple[SelectItem, ...]
    table: Optional[str] = None
    alias: Optional[str] = None
    joins: tuple[JoinClause, ...] = ()
    where: Optional[Expression] = None
    group_by: tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True, slots=True)
class InsertStatement(Statement):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]
    is_write = True


@dataclass(frozen=True, slots=True)
class UpdateStatement(Statement):
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None
    is_write = True


@dataclass(frozen=True, slots=True)
class DeleteStatement(Statement):
    table: str
    where: Optional[Expression] = None
    is_write = True


@dataclass(frozen=True, slots=True)
class CreateTableStatement(Statement):
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False
    is_write = True


@dataclass(frozen=True, slots=True)
class CreateIndexStatement(Statement):
    name: str
    table: str
    columns: tuple[str, ...]
    unique: bool = False
    is_write = True


@dataclass(frozen=True, slots=True)
class DropTableStatement(Statement):
    table: str
    if_exists: bool = False
    is_write = True


@dataclass(frozen=True, slots=True)
class CreateDatabaseStatement(Statement):
    name: str
    if_not_exists: bool = False
    is_write = True


@dataclass(frozen=True, slots=True)
class UseStatement(Statement):
    name: str


@dataclass(frozen=True, slots=True)
class BeginStatement(Statement):
    is_transaction_control = True


@dataclass(frozen=True, slots=True)
class CommitStatement(Statement):
    is_transaction_control = True


@dataclass(frozen=True, slots=True)
class RollbackStatement(Statement):
    is_transaction_control = True

"""Expression evaluation.

Expressions are evaluated against an :class:`EvalContext` that provides
the current row's column values, the bound parameter list and the
server's scalar-function registry (functions need server state — the
microsecond-``now`` UDF reads the instance's local clock).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping, Optional, Sequence

from .ast import (BetweenOp, BinaryOp, ColumnRef, Expression, FunctionCall,
                  InList, IsNull, LikeOp, Literal, ParamRef, Star, UnaryOp)

__all__ = ["EvalContext", "EvaluationError", "evaluate", "like_match"]


class EvaluationError(ValueError):
    """Raised when an expression cannot be evaluated."""


class EvalContext:
    """Everything an expression needs to evaluate."""

    __slots__ = ("row", "params", "functions")

    def __init__(self,
                 row: Optional[Mapping[str, Any]] = None,
                 params: Optional[Sequence[Any]] = None,
                 functions: Optional[Mapping[str, Callable]] = None):
        self.row = row or {}
        self.params = params or ()
        self.functions = functions or {}

    def column(self, ref: ColumnRef) -> Any:
        key = ref.qualified
        if key in self.row:
            return self.row[key]
        if ref.table is None:
            # Try any qualified match (unambiguous unqualified access).
            matches = [v for k, v in self.row.items()
                       if k.endswith("." + ref.name)]
            if len(matches) == 1:
                return matches[0]
            if len(matches) > 1:
                raise EvaluationError(f"ambiguous column {ref.name!r}")
        raise EvaluationError(f"unknown column {ref.qualified!r}")

    def param(self, index: int) -> Any:
        try:
            return self.params[index]
        except IndexError:
            raise EvaluationError(
                f"statement references parameter {index} but only "
                f"{len(self.params)} were bound") from None

    def call(self, name: str, args: list[Any]) -> Any:
        fn = self.functions.get(name)
        if fn is None:
            raise EvaluationError(f"unknown function {name!r}")
        return fn(*args)


def evaluate(expr: Expression, ctx: EvalContext) -> Any:
    """Evaluate ``expr`` in ``ctx`` (SQL three-valued logic for NULLs)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return ctx.column(expr)
    if isinstance(expr, ParamRef):
        return ctx.param(expr.index)
    if isinstance(expr, BinaryOp):
        return _binary(expr, ctx)
    if isinstance(expr, UnaryOp):
        return _unary(expr, ctx)
    if isinstance(expr, FunctionCall):
        if expr.is_aggregate:
            raise EvaluationError(
                f"aggregate {expr.name} outside a select list")
        args = [evaluate(a, ctx) for a in expr.args]
        return ctx.call(expr.name, args)
    if isinstance(expr, InList):
        value = evaluate(expr.operand, ctx)
        if value is None:
            return None
        found = any(evaluate(option, ctx) == value
                    for option in expr.options)
        return (not found) if expr.negated else found
    if isinstance(expr, BetweenOp):
        value = evaluate(expr.operand, ctx)
        low = evaluate(expr.low, ctx)
        high = evaluate(expr.high, ctx)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expr.negated else result
    if isinstance(expr, LikeOp):
        value = evaluate(expr.operand, ctx)
        pattern = evaluate(expr.pattern, ctx)
        if value is None or pattern is None:
            return None
        result = like_match(str(value), str(pattern))
        return (not result) if expr.negated else result
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, ctx)
        is_null = value is None
        return (not is_null) if expr.negated else is_null
    if isinstance(expr, Star):
        raise EvaluationError("'*' is only valid in a select list")
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _binary(expr: BinaryOp, ctx: EvalContext) -> Any:
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, ctx)
        if left is False or (left is not None and not left):
            return False
        right = evaluate(expr.right, ctx)
        if right is False or (right is not None and not right):
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate(expr.left, ctx)
        if left not in (None, False, 0):
            return True
        right = evaluate(expr.right, ctx)
        if right not in (None, False, 0):
            return True
        if left is None or right is None:
            return None
        return False
    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if left is None or right is None:
        return None
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # MySQL semantics: division by zero yields NULL
        return left / right
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise EvaluationError(f"unknown operator {op!r}")


def _unary(expr: UnaryOp, ctx: EvalContext) -> Any:
    value = evaluate(expr.operand, ctx)
    if expr.op == "NOT":
        if value is None:
            return None
        return not value
    if expr.op == "-":
        if value is None:
            return None
        return -value
    raise EvaluationError(f"unknown unary operator {expr.op!r}")


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` matches one character."""
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    regex = "".join(parts)
    return re.fullmatch(regex, value, flags=re.DOTALL | re.IGNORECASE) \
        is not None

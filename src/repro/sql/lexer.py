"""Hand-written SQL lexer."""

from __future__ import annotations

from .tokens import KEYWORDS, Token, TokenType

__all__ = ["LexerError", "tokenize"]

_OPERATOR_STARTS = "<>=!+-*/%"
_TWO_CHAR_OPERATORS = frozenset(("<=", ">=", "<>", "!=", "=="))


class LexerError(ValueError):
    """Raised on malformed SQL text."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'" or ch == '"':
            string_value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, string_value, i))
            continue
        if ch == "`":
            end = text.find("`", i + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENTIFIER,
                                text[i + 1:end].lower(), i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            number, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, number, i))
            continue
        if ch.isalpha() or ch == "_":
            word, i = _read_word(text, i)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word.lower(), i))
            continue
        if ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token(TokenType.DOT, ".", i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
            continue
        if ch == ";":
            tokens.append(Token(TokenType.SEMICOLON, ";", i))
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", i))
            i += 1
            continue
        if ch in _OPERATOR_STARTS:
            pair = text[i:i + 2]
            if pair in _TWO_CHAR_OPERATORS:
                tokens.append(Token(TokenType.OPERATOR, pair, i))
                i += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, ch, i))
                i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    quote = text[start]
    parts: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\\" and i + 1 < n:
            escaped = text[i + 1]
            parts.append({"n": "\n", "t": "\t", "\\": "\\",
                          "'": "'", '"': '"'}.get(escaped, escaped))
            i += 2
            continue
        if ch == quote:
            # Doubled quote escapes itself ('' -> ').
            if i + 1 < n and text[i + 1] == quote:
                parts.append(quote)
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple[str, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            seen_exp = True
            i += 1
            if i < n and text[i] in "+-":
                i += 1
        else:
            break
    return text[start:i], i


def _read_word(text: str, start: int) -> tuple[str, int]:
    i = start
    n = len(text)
    while i < n and (text[i].isalnum() or text[i] == "_"):
        i += 1
    return text[start:i], i

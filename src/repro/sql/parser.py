"""Recursive-descent parser for the SQL dialect."""

from __future__ import annotations

from typing import Optional

from .ast import (BeginStatement, BetweenOp, BinaryOp, ColumnDef, ColumnRef,
                  CommitStatement, CreateDatabaseStatement,
                  CreateIndexStatement, CreateTableStatement,
                  DeleteStatement, DropTableStatement, Expression,
                  FunctionCall, InList, InsertStatement, IsNull, JoinClause,
                  LikeOp, Literal, OrderItem, ParamRef, RollbackStatement,
                  SelectItem, SelectStatement, Star, Statement,
                  UnaryOp, UpdateStatement, UseStatement)
from .lexer import tokenize
from .tokens import Token, TokenType

__all__ = ["ParseError", "parse", "parse_many"]

_TYPE_KEYWORDS = frozenset((
    "INTEGER", "INT", "BIGINT", "FLOAT", "DOUBLE", "VARCHAR", "TEXT",
    "TIMESTAMP", "BOOLEAN", "DATETIME"))

_COMPARISON_OPS = frozenset(("=", "==", "<", ">", "<=", ">=", "!=", "<>"))


class ParseError(ValueError):
    """Raised when the token stream does not form a valid statement."""


def parse(text: str) -> Statement:
    """Parse a single SQL statement."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.skip_semicolons()
    parser.expect_eof()
    return statement


def parse_many(text: str) -> list[Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = _Parser(tokenize(text))
    statements: list[Statement] = []
    parser.skip_semicolons()
    while not parser.at_eof():
        statements.append(parser.statement())
        parser.skip_semicolons()
    return statements


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0
        self._param_counter = 0

    # -- token plumbing ------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def at_eof(self) -> bool:
        return self.peek().type is TokenType.EOF

    def check_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.type is TokenType.KEYWORD and token.value in words

    def accept_keyword(self, *words: str) -> Optional[str]:
        if self.check_keyword(*words):
            return self.advance().value
        return None

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise ParseError(f"expected {word}, found {self.peek().value!r}")

    def accept(self, type_: TokenType) -> Optional[Token]:
        if self.peek().type is type_:
            return self.advance()
        return None

    def expect(self, type_: TokenType) -> Token:
        token = self.accept(type_)
        if token is None:
            raise ParseError(
                f"expected {type_.name}, found {self.peek().value!r}")
        return token

    def expect_eof(self) -> None:
        if not self.at_eof():
            raise ParseError(f"unexpected trailing input "
                             f"{self.peek().value!r}")

    def skip_semicolons(self) -> None:
        while self.accept(TokenType.SEMICOLON):
            pass

    def identifier(self) -> str:
        token = self.peek()
        # Allow non-reserved-looking keywords as identifiers where MySQL
        # does (e.g. a column named `timestamp` or `key` is NOT allowed
        # here; keep it strict and simple).
        if token.type is TokenType.IDENTIFIER:
            return self.advance().value
        raise ParseError(f"expected identifier, found {token.value!r}")

    def table_name(self) -> str:
        """A possibly database-qualified name like ``heartbeats.heartbeat``."""
        name = self.identifier()
        if self.accept(TokenType.DOT):
            name = f"{name}.{self.identifier()}"
        return name

    # -- statements --------------------------------------------------------------
    def statement(self) -> Statement:
        if self.check_keyword("SELECT"):
            return self.select_statement()
        if self.check_keyword("INSERT"):
            return self.insert_statement()
        if self.check_keyword("UPDATE"):
            return self.update_statement()
        if self.check_keyword("DELETE"):
            return self.delete_statement()
        if self.check_keyword("CREATE"):
            return self.create_statement()
        if self.check_keyword("DROP"):
            return self.drop_statement()
        if self.check_keyword("USE"):
            self.advance()
            return UseStatement(self.identifier())
        if self.accept_keyword("BEGIN"):
            return BeginStatement()
        if self.accept_keyword("START"):
            self.expect_keyword("TRANSACTION")
            return BeginStatement()
        if self.accept_keyword("COMMIT"):
            return CommitStatement()
        if self.accept_keyword("ROLLBACK"):
            return RollbackStatement()
        raise ParseError(f"cannot parse statement starting with "
                         f"{self.peek().value!r}")

    def select_statement(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        items = self._select_items()
        table = alias = None
        joins: list[JoinClause] = []
        where = None
        order_by: list[OrderItem] = []
        limit = offset = None
        if self.accept_keyword("FROM"):
            table = self.table_name()
            alias = self._optional_alias()
            while self.check_keyword("JOIN", "INNER", "LEFT"):
                joins.append(self._join_clause())
        group_by: list = []
        having = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expression())
            while self.accept(TokenType.COMMA):
                group_by.append(self.expression())
        if self.accept_keyword("HAVING"):
            having = self.expression()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept(TokenType.COMMA):
                order_by.append(self._order_item())
        if self.accept_keyword("LIMIT"):
            first = int(self.expect(TokenType.NUMBER).value)
            if self.accept(TokenType.COMMA):
                # MySQL "LIMIT offset, count" form.
                offset, limit = first, int(self.expect(TokenType.NUMBER).value)
            else:
                limit = first
                if self.accept_keyword("OFFSET"):
                    offset = int(self.expect(TokenType.NUMBER).value)
        return SelectStatement(items=tuple(items), table=table, alias=alias,
                               joins=tuple(joins), where=where,
                               group_by=tuple(group_by), having=having,
                               order_by=tuple(order_by), limit=limit,
                               offset=offset, distinct=distinct)

    def _select_items(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self.accept(TokenType.COMMA):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.peek().type is TokenType.STAR:
            self.advance()
            return SelectItem(Star())
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.identifier()
        elif self.peek().type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _optional_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.identifier()
        if self.peek().type is TokenType.IDENTIFIER:
            return self.advance().value
        return None

    def _join_clause(self) -> JoinClause:
        if self.accept_keyword("INNER"):
            self.expect_keyword("JOIN")
        elif self.accept_keyword("LEFT"):
            raise ParseError("LEFT JOIN is not supported by this dialect")
        else:
            self.expect_keyword("JOIN")
        table = self.table_name()
        alias = self._optional_alias()
        self.expect_keyword("ON")
        condition = self.expression()
        return JoinClause(table, alias, condition)

    def _order_item(self) -> OrderItem:
        expr = self.expression()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, descending)

    def insert_statement(self) -> InsertStatement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.table_name()
        columns: list[str] = []
        if self.accept(TokenType.LPAREN):
            columns.append(self.identifier())
            while self.accept(TokenType.COMMA):
                columns.append(self.identifier())
            self.expect(TokenType.RPAREN)
        self.expect_keyword("VALUES")
        rows = [self._value_row()]
        while self.accept(TokenType.COMMA):
            rows.append(self._value_row())
        return InsertStatement(table, tuple(columns), tuple(rows))

    def _value_row(self) -> tuple[Expression, ...]:
        self.expect(TokenType.LPAREN)
        values = [self.expression()]
        while self.accept(TokenType.COMMA):
            values.append(self.expression())
        self.expect(TokenType.RPAREN)
        return tuple(values)

    def update_statement(self) -> UpdateStatement:
        self.expect_keyword("UPDATE")
        table = self.table_name()
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept(TokenType.COMMA):
            assignments.append(self._assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return UpdateStatement(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, Expression]:
        column = self.identifier()
        token = self.peek()
        if token.type is not TokenType.OPERATOR or token.value not in ("=", "=="):
            raise ParseError(f"expected '=' in assignment, found "
                             f"{token.value!r}")
        self.advance()
        return column, self.expression()

    def delete_statement(self) -> DeleteStatement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.table_name()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expression()
        return DeleteStatement(table, where)

    def create_statement(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("DATABASE"):
            if_not_exists = self._if_not_exists()
            return CreateDatabaseStatement(self.identifier(), if_not_exists)
        unique = self.accept_keyword("UNIQUE") is not None
        if self.accept_keyword("INDEX"):
            name = self.identifier()
            self.expect_keyword("ON")
            table = self.table_name()
            self.expect(TokenType.LPAREN)
            columns = [self.identifier()]
            while self.accept(TokenType.COMMA):
                columns.append(self.identifier())
            self.expect(TokenType.RPAREN)
            return CreateIndexStatement(name, table, tuple(columns), unique)
        if unique:
            raise ParseError("UNIQUE must be followed by INDEX")
        self.expect_keyword("TABLE")
        if_not_exists = self._if_not_exists()
        table = self.table_name()
        self.expect(TokenType.LPAREN)
        columns = [self._column_def()]
        primary_key_cols: list[str] = []
        while self.accept(TokenType.COMMA):
            if self.check_keyword("PRIMARY"):
                self.advance()
                self.expect_keyword("KEY")
                self.expect(TokenType.LPAREN)
                primary_key_cols.append(self.identifier())
                while self.accept(TokenType.COMMA):
                    primary_key_cols.append(self.identifier())
                self.expect(TokenType.RPAREN)
            else:
                columns.append(self._column_def())
        self.expect(TokenType.RPAREN)
        if primary_key_cols:
            if len(primary_key_cols) > 1:
                raise ParseError("composite primary keys are not supported")
            columns = [
                _with_primary_key(col) if col.name == primary_key_cols[0]
                else col
                for col in columns]
        return CreateTableStatement(table, tuple(columns), if_not_exists)

    def _if_not_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            return True
        return False

    def _column_def(self) -> ColumnDef:
        name = self.identifier()
        type_token = self.peek()
        if type_token.type is not TokenType.KEYWORD \
                or type_token.value not in _TYPE_KEYWORDS:
            raise ParseError(f"expected column type, found "
                             f"{type_token.value!r}")
        type_name = self.advance().value
        type_arg = None
        if self.accept(TokenType.LPAREN):
            type_arg = int(self.expect(TokenType.NUMBER).value)
            self.expect(TokenType.RPAREN)
        primary_key = auto_increment = False
        nullable = True
        default = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                primary_key = True
            elif self.accept_keyword("AUTO_INCREMENT"):
                auto_increment = True
            elif self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("NULL"):
                nullable = True
            elif self.accept_keyword("DEFAULT"):
                default = self._literal()
            else:
                break
        return ColumnDef(name, type_name, type_arg, primary_key,
                         auto_increment, nullable, default)

    def drop_statement(self) -> DropTableStatement:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTableStatement(self.table_name(), if_exists)

    # -- expressions -----------------------------------------------------------
    def expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expression:
        left = self._additive()
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value in _COMPARISON_OPS:
            op = self.advance().value
            if op in ("==",):
                op = "="
            if op == "<>":
                op = "!="
            return BinaryOp(op, left, self._additive())
        negated = False
        if self.check_keyword("NOT"):
            nxt = self.peek(1)
            if nxt.type is TokenType.KEYWORD and nxt.value in (
                    "IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
        if self.accept_keyword("IN"):
            self.expect(TokenType.LPAREN)
            options = [self.expression()]
            while self.accept(TokenType.COMMA):
                options.append(self.expression())
            self.expect(TokenType.RPAREN)
            return InList(left, tuple(options), negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            return BetweenOp(left, low, high, negated)
        if self.accept_keyword("LIKE"):
            return LikeOp(left, self._additive(), negated)
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return IsNull(left, is_negated)
        if negated:
            raise ParseError("dangling NOT in predicate")
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.type is TokenType.OPERATOR and token.value in ("+", "-"):
                op = self.advance().value
                left = BinaryOp(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while True:
            token = self.peek()
            if token.type is TokenType.STAR:
                self.advance()
                left = BinaryOp("*", left, self._unary())
            elif token.type is TokenType.OPERATOR and token.value in ("/", "%"):
                op = self.advance().value
                left = BinaryOp(op, left, self._unary())
            else:
                return left

    def _unary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.OPERATOR and token.value == "-":
            self.advance()
            return UnaryOp("-", self._unary())
        if token.type is TokenType.OPERATOR and token.value == "+":
            self.advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> Expression:
        token = self.peek()
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.PARAM:
            self.advance()
            param = ParamRef(self._param_counter)
            self._param_counter += 1
            return param
        if token.type is TokenType.LPAREN:
            self.advance()
            inner = self.expression()
            self.expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.KEYWORD:
            if token.value in ("TRUE", "FALSE"):
                self.advance()
                return Literal(token.value == "TRUE")
            if token.value == "NULL":
                self.advance()
                return Literal(None)
            if token.value in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                return self._function_call(self.advance().value)
            if self.peek(1).type is TokenType.LPAREN:
                # Non-reserved keyword used as a function name, e.g. a
                # UDF that happens to collide with a type keyword.
                return self._function_call(self.advance().value)
        if token.type is TokenType.IDENTIFIER:
            if self.peek(1).type is TokenType.LPAREN:
                return self._function_call(self.advance().value.upper())
            name = self.advance().value
            if self.accept(TokenType.DOT):
                if self.peek().type is TokenType.STAR:
                    self.advance()
                    return Star(table=name)
                return ColumnRef(self.identifier(), table=name)
            return ColumnRef(name)
        raise ParseError(f"unexpected token {token.value!r} in expression")

    def _function_call(self, name: str) -> FunctionCall:
        self.expect(TokenType.LPAREN)
        distinct = self.accept_keyword("DISTINCT") is not None
        args: list[Expression] = []
        if self.peek().type is TokenType.STAR:
            self.advance()
            args.append(Star())
        elif self.peek().type is not TokenType.RPAREN:
            args.append(self.expression())
            while self.accept(TokenType.COMMA):
                args.append(self.expression())
        self.expect(TokenType.RPAREN)
        return FunctionCall(name, tuple(args), distinct)

    def _literal(self) -> Literal:
        expr = self._unary()
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, UnaryOp) and expr.op == "-" \
                and isinstance(expr.operand, Literal):
            return Literal(-expr.operand.value)
        raise ParseError("DEFAULT value must be a literal")


def _with_primary_key(col: ColumnDef) -> ColumnDef:
    return ColumnDef(col.name, col.type_name, col.type_arg, True,
                     col.auto_increment, False, col.default)

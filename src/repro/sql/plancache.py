"""Prepared-statement / plan cache over the SQL front end.

Parsing is the front end's dominant cost (the committed wall profiles
attribute ~48% of suite time to it), and the Cloudstone mix is a small
fixed statement set whose texts differ only in their literals.  The
cache exploits both facts with two levels:

* **L1 — exact text.**  ``parse`` is a pure function of the SQL text,
  so a statement seen verbatim before returns its frozen AST directly.
* **L2 — literal fingerprint.**  Statements that differ only in
  literal values (``... WHERE id = 7`` vs ``... WHERE id = 9``) are
  collapsed onto one *template*: literals are stripped by a single
  regex pass, the template is parsed once with ``?`` placeholders, and
  every later sighting binds its extracted literals as parameters.
  The whole Cloudstone mix collapses to a couple of dozen templates.

Correctness is not taken on faith.  The first time a template is
built, the original text is also parsed the slow way and both ASTs are
rendered back to SQL; any byte difference marks the template
uncacheable and the slow path is used forever after.  Numbers after
``LIMIT``/``OFFSET`` are never parameterized (the grammar wants raw
numbers there), statements carrying ``?`` placeholders or ``--``
comments bypass fingerprinting, and only DML/queries are templated —
DDL (``VARCHAR(64)`` is a type argument, not a literal) and
transaction control fall back to L1, where their constant texts hit
anyway.

The cache is pure text-in / frozen-AST-out: same statement sequence ->
same hits, misses and plans, so cached runs stay byte-deterministic
per seed.  AST nodes are immutable, which is what makes one cache
shareable by a whole replication cluster (master, every slave's apply
thread, and the routing proxy).  Hit/miss/eviction counters can be
published through a metrics registry via :meth:`attach_metrics`; the
registry is duck-typed so this module keeps the sql layer free of obs
imports.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from typing import Any, Optional, Sequence, Union

from .ast import Statement
from .lexer import _read_string
from .parser import parse
from .render import render_statement

__all__ = ["PlanCache", "fingerprint"]

#: Statement kinds whose literals are safe to parameterize.  All four
#: keywords are six characters, so one slice classifies the text.
_FINGERPRINTABLE = frozenset(("SELECT", "INSERT", "UPDATE", "DELETE"))

#: One pass over the text: skip quoted identifiers, capture string and
#: number literals.  Numbers directly after LIMIT/OFFSET stay inline —
#: the grammar requires raw numbers there (``LIMIT ?`` does not parse).
_LITERAL_RE = re.compile(r"""
      `[^`]*`                                   # quoted identifier
    | '(?:[^'\\]|\\.|'')*'                      # single-quoted string
    | "(?:[^"\\]|\\.|"")*"                      # double-quoted string
    | (?<![Ll][Ii][Mm][Ii][Tt]\ )
      (?<![Oo][Ff][Ff][Ss][Ee][Tt]\ )
      \b\d+(?:\.\d+)?(?:[eE][+-]?\d+)?\b        # number
""", re.X)

#: L2 sentinel: this template was tried and must not be used.
_UNCACHEABLE = object()


def fingerprint(text: str) -> tuple[str, list[str]]:
    """Split ``text`` into a literal-free template and the raw literals.

    Returns ``(template, literals)`` where each literal was replaced by
    a ``?`` placeholder in source order — the same order the parser
    assigns parameter indexes in.
    """
    literals: list[str] = []
    append = literals.append

    def _replace(match: "re.Match[str]") -> str:
        raw = match.group(0)
        if raw[0] == "`":
            return raw
        append(raw)
        return "?"

    return _LITERAL_RE.sub(_replace, text), literals


def _literal_value(raw: str) -> Any:
    """Convert a raw literal exactly as the lexer+parser would."""
    first = raw[0]
    if first == "'" or first == '"':
        return _read_string(raw, 0)[0]
    if "." in raw or "e" in raw or "E" in raw:
        return float(raw)
    return int(raw)


class PlanCache:
    """Two-level LRU from SQL text to frozen statement ASTs."""

    def __init__(self, capacity: int = 512,
                 fingerprint_capacity: int = 256):
        if capacity < 0 or fingerprint_capacity < 0:
            raise ValueError("plan cache capacities must be >= 0")
        self.capacity = capacity
        self.fingerprint_capacity = fingerprint_capacity
        self._exact: OrderedDict[str, Statement] = OrderedDict()
        self._templates: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._hit_counter = None
        self._miss_counter = None
        self._eviction_counter = None

    def __repr__(self) -> str:
        return (f"<PlanCache {len(self._exact)} plans, "
                f"{len(self._templates)} templates, "
                f"{self.hits} hits / {self.misses} misses>")

    def __len__(self) -> int:
        return len(self._exact) + len(self._templates)

    # -- metrics -----------------------------------------------------------
    def attach_metrics(self, registry) -> None:
        """Publish counters through ``registry`` (a duck-typed
        :class:`~repro.obs.metrics.MetricsRegistry`) from now on."""
        self._hit_counter = registry.counter("sql.plancache.hits")
        self._miss_counter = registry.counter("sql.plancache.misses")
        self._eviction_counter = registry.counter(
            "sql.plancache.evictions")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- the front end -----------------------------------------------------
    def prepare(self, text: str,
                params: Optional[Sequence[Any]] = None
                ) -> tuple[Statement, Sequence[Any]]:
        """SQL text -> ``(statement, params)`` ready for execution.

        With caller-bound ``params`` the text's own ``?`` placeholders
        are authoritative, so only the exact-text level applies;
        otherwise literal-only variants share one templated plan and
        the extracted literals come back as the parameter list.
        """
        plan = self._exact.get(text)
        if plan is not None:
            self._exact.move_to_end(text)
            self._hit()
            return plan, params or ()
        if params:
            return self._exact_miss(text), params
        if not self._fingerprintable(text):
            return self._exact_miss(text), ()
        template, literals = fingerprint(text)
        if not literals:
            return self._exact_miss(text), ()
        plan = self._templates.get(template)
        if plan is None and template not in self._templates:
            return self._build_template(text, template, literals)
        if plan is _UNCACHEABLE:
            return self._exact_miss(text), ()
        self._templates.move_to_end(template)
        self._hit()
        return plan, [_literal_value(raw) for raw in literals]

    def statement(self, text: str) -> Statement:
        """Exact-text-cached parse (no fingerprinting)."""
        plan = self._exact.get(text)
        if plan is not None:
            self._exact.move_to_end(text)
            self._hit()
            return plan
        return self._exact_miss(text)

    # -- internals ---------------------------------------------------------
    def _fingerprintable(self, text: str) -> bool:
        if "?" in text or "--" in text:
            return False
        return text.lstrip()[:6].upper() in _FINGERPRINTABLE

    def _build_template(self, text: str, template: str,
                        literals: list[str]
                        ) -> tuple[Statement, Sequence[Any]]:
        """First sighting of a template: build it, then *prove* it.

        The original text is parsed the slow way regardless; the
        template is kept only if binding the extracted literals renders
        back to exactly the same SQL as the fresh parse.  A mismatch
        (or a template that does not parse at all) poisons the template
        so every later sighting takes the safe path.
        """
        plan = self._exact_miss(text)
        try:
            templated = parse(template)
            values = [_literal_value(raw) for raw in literals]
            proven = (render_statement(templated, values)
                      == render_statement(plan))
        except Exception:
            proven = False
        entry = templated if proven else _UNCACHEABLE
        if self.fingerprint_capacity > 0:
            self._templates[template] = entry
            if len(self._templates) > self.fingerprint_capacity:
                self._templates.popitem(last=False)
                self._evict()
        if proven:
            return templated, values
        return plan, ()

    def _exact_miss(self, text: str) -> Statement:
        plan = parse(text)
        self._miss()
        if self.capacity > 0:
            self._exact[text] = plan
            if len(self._exact) > self.capacity:
                self._exact.popitem(last=False)
                self._evict()
        return plan

    def _hit(self) -> None:
        self.hits += 1
        counter = self._hit_counter
        if counter is not None:
            counter.inc()

    def _miss(self) -> None:
        self.misses += 1
        counter = self._miss_counter
        if counter is not None:
            counter.inc()

    def _evict(self) -> None:
        self.evictions += 1
        counter = self._eviction_counter
        if counter is not None:
            counter.inc()

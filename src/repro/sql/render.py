"""Render AST nodes back to SQL text.

Statement-based replication ships *text*: the master binlog stores each
committed write statement with its parameters substituted as literals,
and slaves re-parse and re-execute it.  Non-deterministic function
calls (``USEC_NOW()``) are rendered as calls, so each replica evaluates
them against its own local clock — the exact mechanism the paper's
heartbeat measurement exploits.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from .ast import (BeginStatement, BetweenOp, BinaryOp, ColumnDef, ColumnRef,
                  CommitStatement, CreateDatabaseStatement,
                  CreateIndexStatement, CreateTableStatement,
                  DeleteStatement, DropTableStatement, Expression,
                  FunctionCall, InList, InsertStatement, IsNull, LikeOp,
                  Literal, ParamRef, RollbackStatement, SelectStatement,
                  Star, Statement, UnaryOp, UpdateStatement, UseStatement)

__all__ = ["render_statement", "render_expression", "render_literal"]


def render_literal(value: Any) -> str:
    """Format a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("\\", "\\\\").replace("'", "''")
    return f"'{escaped}'"


def render_expression(expr: Expression,
                      params: Optional[Sequence[Any]] = None) -> str:
    """Render an expression; ``params`` inlines ``?`` placeholders."""
    if isinstance(expr, Literal):
        return render_literal(expr.value)
    if isinstance(expr, ColumnRef):
        return expr.qualified
    if isinstance(expr, ParamRef):
        if params is None:
            return "?"
        return render_literal(params[expr.index])
    if isinstance(expr, Star):
        return f"{expr.table}.*" if expr.table else "*"
    if isinstance(expr, BinaryOp):
        left = render_expression(expr.left, params)
        right = render_expression(expr.right, params)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, UnaryOp):
        inner = render_expression(expr.operand, params)
        return f"(NOT {inner})" if expr.op == "NOT" else f"(-{inner})"
    if isinstance(expr, FunctionCall):
        args = ", ".join(render_expression(a, params) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"
    if isinstance(expr, InList):
        operand = render_expression(expr.operand, params)
        options = ", ".join(render_expression(o, params)
                            for o in expr.options)
        maybe_not = "NOT " if expr.negated else ""
        return f"({operand} {maybe_not}IN ({options}))"
    if isinstance(expr, BetweenOp):
        operand = render_expression(expr.operand, params)
        low = render_expression(expr.low, params)
        high = render_expression(expr.high, params)
        maybe_not = "NOT " if expr.negated else ""
        return f"({operand} {maybe_not}BETWEEN {low} AND {high})"
    if isinstance(expr, LikeOp):
        operand = render_expression(expr.operand, params)
        pattern = render_expression(expr.pattern, params)
        maybe_not = "NOT " if expr.negated else ""
        return f"({operand} {maybe_not}LIKE {pattern})"
    if isinstance(expr, IsNull):
        operand = render_expression(expr.operand, params)
        return f"({operand} IS {'NOT ' if expr.negated else ''}NULL)"
    raise TypeError(f"cannot render {type(expr).__name__}")


def render_statement(stmt: Statement,
                     params: Optional[Sequence[Any]] = None) -> str:
    """Render a statement back to SQL text."""
    if isinstance(stmt, SelectStatement):
        return _render_select(stmt, params)
    if isinstance(stmt, InsertStatement):
        columns = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
        rows = ", ".join(
            "(" + ", ".join(render_expression(v, params) for v in row) + ")"
            for row in stmt.rows)
        return f"INSERT INTO {stmt.table}{columns} VALUES {rows}"
    if isinstance(stmt, UpdateStatement):
        sets = ", ".join(f"{col} = {render_expression(value, params)}"
                         for col, value in stmt.assignments)
        where = (f" WHERE {render_expression(stmt.where, params)}"
                 if stmt.where is not None else "")
        return f"UPDATE {stmt.table} SET {sets}{where}"
    if isinstance(stmt, DeleteStatement):
        where = (f" WHERE {render_expression(stmt.where, params)}"
                 if stmt.where is not None else "")
        return f"DELETE FROM {stmt.table}{where}"
    if isinstance(stmt, CreateTableStatement):
        columns = ", ".join(_render_column_def(c) for c in stmt.columns)
        ine = "IF NOT EXISTS " if stmt.if_not_exists else ""
        return f"CREATE TABLE {ine}{stmt.table} ({columns})"
    if isinstance(stmt, CreateIndexStatement):
        unique = "UNIQUE " if stmt.unique else ""
        cols = ", ".join(stmt.columns)
        return f"CREATE {unique}INDEX {stmt.name} ON {stmt.table} ({cols})"
    if isinstance(stmt, DropTableStatement):
        if_exists = "IF EXISTS " if stmt.if_exists else ""
        return f"DROP TABLE {if_exists}{stmt.table}"
    if isinstance(stmt, CreateDatabaseStatement):
        ine = "IF NOT EXISTS " if stmt.if_not_exists else ""
        return f"CREATE DATABASE {ine}{stmt.name}"
    if isinstance(stmt, UseStatement):
        return f"USE {stmt.name}"
    if isinstance(stmt, BeginStatement):
        return "BEGIN"
    if isinstance(stmt, CommitStatement):
        return "COMMIT"
    if isinstance(stmt, RollbackStatement):
        return "ROLLBACK"
    raise TypeError(f"cannot render {type(stmt).__name__}")


def _render_select(stmt: SelectStatement,
                   params: Optional[Sequence[Any]]) -> str:
    items = ", ".join(
        render_expression(item.expression, params)
        + (f" AS {item.alias}" if item.alias else "")
        for item in stmt.items)
    parts = [f"SELECT {'DISTINCT ' if stmt.distinct else ''}{items}"]
    if stmt.table:
        alias = f" AS {stmt.alias}" if stmt.alias else ""
        parts.append(f"FROM {stmt.table}{alias}")
    for join in stmt.joins:
        alias = f" AS {join.alias}" if join.alias else ""
        condition = render_expression(join.condition, params)
        parts.append(f"JOIN {join.table}{alias} ON {condition}")
    if stmt.where is not None:
        parts.append(f"WHERE {render_expression(stmt.where, params)}")
    if stmt.group_by:
        grouped = ", ".join(render_expression(g, params)
                            for g in stmt.group_by)
        parts.append(f"GROUP BY {grouped}")
    if stmt.having is not None:
        parts.append(f"HAVING {render_expression(stmt.having, params)}")
    if stmt.order_by:
        orders = ", ".join(
            render_expression(o.expression, params)
            + (" DESC" if o.descending else "")
            for o in stmt.order_by)
        parts.append(f"ORDER BY {orders}")
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
    if stmt.offset is not None:
        parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def _render_column_def(col: ColumnDef) -> str:
    parts = [col.name, col.type_name]
    if col.type_arg is not None:
        parts[-1] += f"({col.type_arg})"
    if col.primary_key:
        parts.append("PRIMARY KEY")
    if col.auto_increment:
        parts.append("AUTO_INCREMENT")
    if not col.nullable and not col.primary_key:
        parts.append("NOT NULL")
    if col.default is not None:
        parts.append(f"DEFAULT {render_literal(col.default.value)}")
    return " ".join(parts)

"""Token definitions for the SQL dialect.

The dialect is the subset of MySQL the customized Cloudstone workload
and the replication heartbeat need: DDL (CREATE TABLE / CREATE INDEX /
DROP TABLE / CREATE DATABASE), DML (INSERT / UPDATE / DELETE), queries
(SELECT with WHERE / JOIN / ORDER BY / LIMIT / aggregates) and
transaction control (BEGIN / COMMIT / ROLLBACK).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(Enum):
    IDENTIFIER = auto()
    KEYWORD = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    COMMA = auto()
    DOT = auto()
    LPAREN = auto()
    RPAREN = auto()
    STAR = auto()
    SEMICOLON = auto()
    PARAM = auto()        # '?' placeholder
    EOF = auto()


#: Reserved words, uppercased.  An identifier matching one of these is
#: lexed as a KEYWORD token.
KEYWORDS = frozenset("""
    SELECT FROM WHERE AND OR NOT IN IS NULL LIKE BETWEEN
    INSERT INTO VALUES UPDATE SET DELETE
    CREATE TABLE INDEX UNIQUE DATABASE DROP IF EXISTS USE
    PRIMARY KEY AUTO_INCREMENT DEFAULT
    INTEGER INT BIGINT FLOAT DOUBLE VARCHAR TEXT TIMESTAMP BOOLEAN DATETIME
    JOIN INNER LEFT ON AS ORDER BY ASC DESC LIMIT OFFSET GROUP HAVING
    COUNT SUM AVG MIN MAX DISTINCT
    BEGIN START TRANSACTION COMMIT ROLLBACK
    TRUE FALSE
""".split())


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r})"

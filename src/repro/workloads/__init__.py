"""Workloads driving the replicated database tier."""

from . import cloudstone

__all__ = ["cloudstone"]

"""The customized Cloudstone benchmark (web tier removed)."""

from .driver import LoadGenerator, PAPER_PHASES, Phases
from .loader import load_initial_data
from .mix import MIX_50_50, MIX_80_20, OperationMix
from .operations import (Operation, READ_OPERATIONS, WRITE_OPERATIONS,
                         operation_by_name)
from .schema import (CLOUDSTONE_DATABASE, SCHEMA_STATEMENTS, TAG_COUNT,
                     create_schema)
from .state import WorkloadState

__all__ = [
    "LoadGenerator",
    "Phases",
    "PAPER_PHASES",
    "load_initial_data",
    "OperationMix",
    "MIX_50_50",
    "MIX_80_20",
    "Operation",
    "READ_OPERATIONS",
    "WRITE_OPERATIONS",
    "operation_by_name",
    "WorkloadState",
    "create_schema",
    "CLOUDSTONE_DATABASE",
    "SCHEMA_STATEMENTS",
    "TAG_COUNT",
]

"""Closed-loop load generator.

Emulates N concurrent users against the proxy, exactly as the paper's
customized Cloudstone does: each user repeatedly thinks (exponential
think time), borrows a pooled connection, runs one operation from the
mix (all statements pinned to one server: master for write operations,
one balanced slave for read operations) and releases the connection.

Runs follow the paper's phase structure (§III-B): ramp-up (users start
staggered), a steady stage where throughput is measured, and ramp-down.
The paper uses 10 / 20 / 5 minutes; phases are configurable so benches
can run time-scaled versions.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from typing import Optional

from ...db.errors import DatabaseError
from ...metrics import TimeSeries
from ...replication.pool import ConnectionPool, PoolTimeout
from ...replication.proxy import ReadWriteSplitProxy
from ...replication.retry import RetryPolicy
from ...sim import RandomStreams, Simulator
from .mix import OperationMix
from .state import WorkloadState

__all__ = ["Phases", "PAPER_PHASES", "LoadGenerator"]


@dataclass(frozen=True)
class Phases:
    """Run phase durations in seconds."""

    ramp_up: float = 600.0
    steady: float = 1200.0
    ramp_down: float = 300.0

    @property
    def steady_start(self) -> float:
        return self.ramp_up

    @property
    def steady_end(self) -> float:
        return self.ramp_up + self.steady

    @property
    def total(self) -> float:
        return self.ramp_up + self.steady + self.ramp_down

    def scaled(self, factor: float) -> "Phases":
        """A time-scaled copy (benches use factor < 1)."""
        return Phases(self.ramp_up * factor, self.steady * factor,
                      self.ramp_down * factor)


#: The paper's 35-minute run: 10' ramp-up, 20' steady, 5' ramp-down.
PAPER_PHASES = Phases()


class LoadGenerator:
    """Drives ``n_users`` emulated users through the proxy."""

    def __init__(self, sim: Simulator, proxy: ReadWriteSplitProxy,
                 pool: ConnectionPool, mix: OperationMix,
                 state: WorkloadState, streams: RandomStreams,
                 n_users: int, think_time_mean: float = 7.0,
                 phases: Phases = PAPER_PHASES,
                 retry: Optional[RetryPolicy] = None):
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        if think_time_mean <= 0:
            raise ValueError("think_time_mean must be positive")
        self.sim = sim
        self.proxy = proxy
        self.pool = pool
        self.mix = mix
        self.state = state
        self.streams = streams
        self.n_users = n_users
        self.think_time_mean = think_time_mean
        self.phases = phases
        #: None reproduces the paper's driver exactly (one attempt, no
        #: acquire bound); fault drills pass a policy so users survive
        #: failover windows instead of burning every operation.
        self.retry = retry
        #: (completion time, operation latency) for every operation.
        self.completions = TimeSeries()
        self.read_completions = TimeSeries()
        self.write_completions = TimeSeries()
        self.op_counts: Counter = Counter()
        self.errors = 0
        self.retries = 0
        self.pool_timeouts = 0
        #: Cached instrument handles for the completion hot path,
        #: keyed by registry identity (see monitor.sample_now).
        self._metrics_registry = None
        self._latency_histogram = None
        self._retry_counter = None
        self._op_counters: dict = {}
        self._started = False
        #: The spawned user processes, so a drill (or test) can
        #: interrupt individual users mid-run.
        self.user_processes: list = []
        #: Sim time at which :meth:`start` was called; phase windows
        #: are relative to it.
        self.t0 = 0.0

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        """Spawn the user processes (staggered across ramp-up)."""
        if self._started:
            raise RuntimeError("load generator already started")
        self._started = True
        self.t0 = self.sim.now
        self.state.now_fn = lambda: self.sim.now
        for index in range(self.n_users):
            self.user_processes.append(
                self.sim.process(self._user(index), name=f"user-{index}"))

    def _user(self, index: int):
        rng = self.streams.spawn("cloudstone.user", index)
        deadline = self.t0 + self.phases.total
        # Stagger arrivals uniformly across the ramp-up phase.
        if self.phases.ramp_up > 0:
            yield self.sim.timeout(
                float(rng.uniform(0.0, self.phases.ramp_up)))
        while self.sim.now < deadline:
            yield self.sim.timeout(
                float(rng.exponential(self.think_time_mean)))
            if self.sim.now >= deadline:
                return
            operation = self.mix.pick(rng)
            statements = operation.build(self.state, rng)
            policy = self.retry
            attempts = policy.max_attempts if policy is not None else 1
            acquire_timeout = policy.acquire_timeout \
                if policy is not None else None
            completed = False
            latency = 0.0
            with self.sim.tracer.span("driver.request",
                                      category="driver",
                                      op=operation.name,
                                      user=index) as span:
                for attempt in range(attempts):
                    failed = False
                    try:
                        connection = yield from self.pool.acquire(
                            timeout=acquire_timeout)
                    except PoolTimeout:
                        self.pool_timeouts += 1
                        failed = True
                    else:
                        started_at = self.sim.now
                        try:
                            server = self.proxy.master \
                                if operation.is_write \
                                else self.proxy.pick_read_server(
                                    session=index)
                            for sql in statements:
                                yield from self.proxy.execute(
                                    sql, server=server)
                            if operation.is_write:
                                self.proxy.note_write(index)
                        except DatabaseError:
                            # A failed operation (server offline
                            # mid-failover, rejected statement) must
                            # not kill the emulated user: real
                            # Cloudstone drivers log the error and
                            # keep generating load.  The finally below
                            # still returns the connection, so
                            # pool.active drains back to zero.
                            failed = True
                        finally:
                            self.pool.release(connection)
                    if not failed:
                        completed = True
                        latency = self.sim.now - started_at
                        break
                    if attempt + 1 < attempts:
                        # Backoff happens with no connection held (it
                        # was released above): an interrupt landing in
                        # this sleep cannot leak a pool slot.
                        self.retries += 1
                        if self.sim.metrics.enabled:
                            self._note_retry(self.sim.metrics)
                        yield self.sim.timeout(
                            policy.backoff_for(attempt, rng))
                if not completed:
                    span.set_attribute("error", True)
                    self.errors += 1
            if completed:
                operation.on_complete(self.state)
                self._record(operation, latency)

    def _record(self, operation, latency: float) -> None:
        now = self.sim.now
        self.completions.record(now, latency)
        if operation.is_write:
            self.write_completions.record(now, latency)
        else:
            self.read_completions.record(now, latency)
        self.op_counts[operation.name] += 1
        metrics = self.sim.metrics
        if metrics.enabled:
            if self._metrics_registry is not metrics:
                self._bind_instruments(metrics)
            self._latency_histogram.observe(latency)
            op_counter = self._op_counters.get(operation.name)
            if op_counter is None:
                op_counter = self._op_counters[operation.name] = \
                    metrics.counter(f"driver.ops.{operation.name}")
            op_counter.inc()

    def _note_retry(self, metrics) -> None:
        if self._metrics_registry is not metrics:
            self._bind_instruments(metrics)
        self._retry_counter.inc()

    def _bind_instruments(self, metrics) -> None:
        """Intern the driver's instrument handles for ``metrics``.

        Registry lookups are dict gets, but the driver publishes per
        completed operation; binding the handles once per registry
        keeps the hot path to attribute loads."""
        self._metrics_registry = metrics
        self._latency_histogram = metrics.histogram("driver.latency_s")
        self._retry_counter = metrics.counter("driver.retries")
        self._op_counters.clear()

    # -- measurements ------------------------------------------------------------
    @property
    def steady_window(self) -> tuple[float, float]:
        """Absolute sim-time bounds of the steady stage."""
        return (self.t0 + self.phases.steady_start,
                self.t0 + self.phases.steady_end)

    def steady_throughput(self) -> float:
        """End-to-end operations/second over the steady stage — the
        paper's headline metric."""
        return self.completions.rate_in(*self.steady_window)

    def steady_read_write_ratio(self) -> float:
        """Achieved read fraction over the steady stage."""
        reads = self.read_completions.count_in(*self.steady_window)
        writes = self.write_completions.count_in(*self.steady_window)
        total = reads + writes
        return reads / total if total else 0.0

    def steady_mean_latency(self) -> float:
        window = self.completions.window(*self.steady_window)
        if not window:
            return 0.0
        return sum(window) / len(window)

    def steady_latency_percentiles(self,
                                   percentiles=(50.0, 95.0, 99.0)
                                   ) -> dict[float, float]:
        """Operation-latency percentiles over the steady stage (s)."""
        import numpy as np
        window = self.completions.window(*self.steady_window)
        if not window:
            return {p: 0.0 for p in percentiles}
        values = np.percentile(np.asarray(window), percentiles)
        return dict(zip(percentiles, (float(v) for v in values)))

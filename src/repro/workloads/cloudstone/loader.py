"""Initial data loader.

The paper fixes the initial data size at **300** (50/50 experiments)
and **600** (80/20 experiments); we interpret the data size as the
number of pre-loaded *events*, with a matching user population, the
fixed tag vocabulary, and realistic per-event attendee/comment/tag
fan-out.  Loading uses the admin path (instantaneous, the paper's runs
start "with a pre-loaded, fully-synchronized database") on the master
**before** slaves attach, so slaves inherit the data via snapshot.
"""

from __future__ import annotations

import numpy as np

from .schema import TAG_COUNT, create_schema
from .state import WorkloadState

__all__ = ["load_initial_data"]


def load_initial_data(master, data_size: int,
                      rng: np.random.Generator) -> WorkloadState:
    """Create the schema and load ``data_size`` events; returns the
    workload state describing what exists."""
    if data_size < 1:
        raise ValueError(f"data_size must be >= 1, got {data_size}")
    create_schema(master)
    state = WorkloadState(n_users=data_size, n_events=data_size,
                          n_tags=TAG_COUNT)

    def admin(sql):
        master.admin(sql, database="cloudstone")

    for tag_index in range(1, TAG_COUNT + 1):
        admin(f"INSERT INTO tags (name) VALUES ('tag{tag_index:02d}')")
    for user_id in range(1, data_size + 1):
        admin(f"INSERT INTO users (username, created, events_created) "
              f"VALUES ('user{user_id:05d}', 0.0, 1)")
    for event_id in range(1, data_size + 1):
        owner = int(rng.integers(1, data_size + 1))
        event_date = float(rng.uniform(0.0, state.time_horizon))
        admin(f"INSERT INTO events (owner, title, description, created, "
              f"event_date, attendee_count) VALUES ({owner}, "
              f"'Event number {event_id}', 'Description of event "
              f"{event_id}', 0.0, {event_date}, 0)")
        for _ in range(int(rng.integers(1, 4))):  # 1-3 tags
            tag = int(rng.integers(1, TAG_COUNT + 1))
            admin(f"INSERT INTO event_tags (event_id, tag_id) "
                  f"VALUES ({event_id}, {tag})")
        n_attendees = int(rng.integers(0, 6))
        for _ in range(n_attendees):
            attendee = int(rng.integers(1, data_size + 1))
            admin(f"INSERT INTO attendees (event_id, user_id) "
                  f"VALUES ({event_id}, {attendee})")
        if n_attendees:
            admin(f"UPDATE events SET attendee_count = {n_attendees} "
                  f"WHERE id = {event_id}")
        for _ in range(int(rng.integers(0, 3))):  # 0-2 comments
            commenter = int(rng.integers(1, data_size + 1))
            admin(f"INSERT INTO comments (event_id, user_id, body, created) "
                  f"VALUES ({event_id}, {commenter}, 'A comment on event "
                  f"{event_id}', 0.0)")
    return state

"""Read/write operation mixes.

The paper defines two configurations of the read/write ratio: **50/50**
and **80/20** (§III-A).  The ratio is enforced probabilistically per
operation, which is how the benchmark "controls the read/write ratio
... by separately adjusting the number of read and write operations".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .operations import (Operation, READ_OPERATIONS, WRITE_OPERATIONS)

__all__ = ["OperationMix", "MIX_50_50", "MIX_80_20"]


@dataclass(frozen=True)
class OperationMix:
    """A read fraction plus weighted operation tables."""

    name: str
    read_fraction: float
    reads: tuple[tuple[Operation, float], ...] = tuple(READ_OPERATIONS)
    writes: tuple[tuple[Operation, float], ...] = tuple(WRITE_OPERATIONS)

    def __post_init__(self):
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1], "
                             f"got {self.read_fraction}")

    @property
    def write_fraction(self) -> float:
        return 1.0 - self.read_fraction

    def pick(self, rng: np.random.Generator) -> Operation:
        """Draw the next operation."""
        table = self.reads if rng.random() < self.read_fraction \
            else self.writes
        weights = np.array([w for _op, w in table], dtype=float)
        weights /= weights.sum()
        index = int(rng.choice(len(table), p=weights))
        return table[index][0]


#: The paper's two configurations.
MIX_50_50 = OperationMix("50/50", read_fraction=0.50)
MIX_80_20 = OperationMix("80/20", read_fraction=0.80)

"""Cloudstone operations.

Each operation is the database-tier footprint of one user action on
the social-events site — the business logic the paper re-implemented
so "a user's operation can be processed directly at the database tier
without any intermediate interpretation at the web server tier"
(§III-A).  A read operation issues only SELECTs and runs entirely on
one slave; a write operation mixes validation reads with its writes
and runs entirely on the master (only its write statements replicate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .state import WorkloadState

__all__ = ["Operation", "READ_OPERATIONS", "WRITE_OPERATIONS",
           "operation_by_name"]


@dataclass(frozen=True)
class Operation:
    """One user action: a named list of SQL statements."""

    name: str
    is_write: bool
    build: Callable[[WorkloadState, np.random.Generator], list[str]]
    on_complete: Callable[[WorkloadState], None] = lambda state: None


# ------------------------------------------------------------------ reads
def _view_event_detail_statements(state, rng):
    event = state.random_event(rng)
    return [
        f"SELECT * FROM events WHERE id = {event}",
        f"SELECT u.username FROM attendees a JOIN users u "
        f"ON u.id = a.user_id WHERE a.event_id = {event}",
        f"SELECT * FROM comments WHERE event_id = {event} "
        f"ORDER BY created DESC LIMIT 10",
        f"SELECT t.name FROM event_tags et JOIN tags t "
        f"ON t.id = et.tag_id WHERE et.event_id = {event}",
        f"SELECT username, events_created FROM users WHERE id = {event}",
    ]


def _browse_statements(state, rng):
    low, high = state.random_date_window(rng, fraction=0.15)
    return [
        f"SELECT id, title, event_date, attendee_count FROM events "
        f"WHERE event_date BETWEEN {low:.1f} AND {high:.1f} "
        f"ORDER BY event_date LIMIT 10",
        "SELECT * FROM tags ORDER BY id",
    ]


def _search_events_by_tag(state, rng):
    tag = state.random_tag(rng)
    return [
        f"SELECT e.id, e.title, e.event_date FROM event_tags et "
        f"JOIN events e ON e.id = et.event_id "
        f"WHERE et.tag_id = {tag} ORDER BY e.event_date LIMIT 10",
    ]


def _view_user_profile(state, rng):
    user = state.random_user(rng)
    return [
        f"SELECT * FROM users WHERE id = {user}",
        f"SELECT id, title, event_date FROM events WHERE owner = {user} "
        f"ORDER BY event_date DESC LIMIT 10",
        f"SELECT e.title FROM attendees a JOIN events e "
        f"ON e.id = a.event_id WHERE a.user_id = {user} LIMIT 10",
    ]


def _count_events_in_window(state, rng):
    low, high = state.random_date_window(rng, fraction=0.25)
    return [
        f"SELECT COUNT(*) FROM events WHERE event_date "
        f"BETWEEN {low:.1f} AND {high:.1f}",
    ]


# ----------------------------------------------------------------- writes
def _create_event(state, rng):
    owner = state.random_user(rng)
    date = state.random_event_date(rng)
    tag_a = state.random_tag(rng)
    tag_b = state.random_tag(rng)
    return [
        f"SELECT id, events_created FROM users WHERE id = {owner}",
        f"INSERT INTO events (owner, title, description, created, "
        f"event_date, attendee_count) VALUES ({owner}, 'New event', "
        f"'A freshly created event', {state.now():.6f}, {date:.1f}, 0)",
        # state.n_events + 1 approximates the insert's auto-increment
        # id; under concurrent creates it may name a sibling's event,
        # which is still a valid (and replication-deterministic) row.
        f"INSERT INTO event_tags (event_id, tag_id) "
        f"VALUES ({state.n_events + 1}, {tag_a}), "
        f"({state.n_events + 1}, {tag_b})",
        f"UPDATE users SET events_created = events_created + 1 "
        f"WHERE id = {owner}",
    ]


def _join_event(state, rng):
    user = state.random_user(rng)
    event = state.random_event(rng)
    return [
        f"SELECT id, attendee_count FROM events WHERE id = {event}",
        f"INSERT INTO attendees (event_id, user_id) "
        f"VALUES ({event}, {user})",
        f"UPDATE events SET attendee_count = attendee_count + 1 "
        f"WHERE id = {event}",
    ]


def _add_comment(state, rng):
    user = state.random_user(rng)
    event = state.random_event(rng)
    return [
        f"SELECT id FROM events WHERE id = {event}",
        f"INSERT INTO comments (event_id, user_id, body, created) VALUES "
        f"({event}, {user}, 'What a great event this will be', "
        f"{state.now():.6f})",
    ]


def _tag_event(state, rng):
    event = state.random_event(rng)
    tag = state.random_tag(rng)
    return [
        f"SELECT id FROM tags WHERE id = {tag}",
        f"INSERT INTO event_tags (event_id, tag_id) "
        f"VALUES ({event}, {tag})",
    ]


def _create_user(state, rng):
    suffix = int(rng.integers(0, 10**9))
    return [
        f"INSERT INTO users (username, created, events_created) "
        f"VALUES ('newuser{suffix:09d}', {state.now():.6f}, 0)",
    ]


READ_OPERATIONS: list[tuple[Operation, float]] = [
    (Operation("view_event_detail", False, _view_event_detail_statements),
     0.35),
    (Operation("browse_upcoming_events", False, _browse_statements), 0.25),
    (Operation("search_events_by_tag", False, _search_events_by_tag), 0.20),
    (Operation("view_user_profile", False, _view_user_profile), 0.10),
    (Operation("count_events_in_window", False, _count_events_in_window),
     0.10),
]

WRITE_OPERATIONS: list[tuple[Operation, float]] = [
    (Operation("create_event", True, _create_event,
               on_complete=lambda s: s.note_event_created()), 0.30),
    (Operation("join_event", True, _join_event), 0.35),
    (Operation("add_comment", True, _add_comment), 0.20),
    (Operation("tag_event", True, _tag_event), 0.10),
    (Operation("create_user", True, _create_user,
               on_complete=lambda s: s.note_user_created()), 0.05),
]


def operation_by_name(name: str) -> Operation:
    for operation, _weight in READ_OPERATIONS + WRITE_OPERATIONS:
        if operation.name == name:
            return operation
    raise KeyError(f"unknown operation {name!r}")

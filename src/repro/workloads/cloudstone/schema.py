"""The Cloudstone social-events-calendar schema.

Cloudstone models a Web 2.0 social events site (Olio): users create
events, tag them, attend them and comment on them.  This is the schema
the customized benchmark of the paper drives directly at the database
tier (the web tier was removed, §III-A).
"""

from __future__ import annotations

__all__ = ["CLOUDSTONE_DATABASE", "SCHEMA_STATEMENTS", "TAG_COUNT",
           "create_schema"]

CLOUDSTONE_DATABASE = "cloudstone"

#: Number of distinct tags in the tag vocabulary (Olio uses a fixed
#: tag cloud).
TAG_COUNT = 40

SCHEMA_STATEMENTS = [
    f"CREATE DATABASE IF NOT EXISTS {CLOUDSTONE_DATABASE}",
    "CREATE TABLE users ("
    " id INTEGER PRIMARY KEY AUTO_INCREMENT,"
    " username VARCHAR(64) NOT NULL,"
    " created DOUBLE,"
    " events_created INTEGER DEFAULT 0)",
    "CREATE TABLE events ("
    " id INTEGER PRIMARY KEY AUTO_INCREMENT,"
    " owner INTEGER NOT NULL,"
    " title VARCHAR(128) NOT NULL,"
    " description TEXT,"
    " created DOUBLE,"
    " event_date DOUBLE,"
    " attendee_count INTEGER DEFAULT 0)",
    "CREATE INDEX idx_events_owner ON events (owner)",
    "CREATE INDEX idx_events_date ON events (event_date)",
    "CREATE TABLE tags ("
    " id INTEGER PRIMARY KEY AUTO_INCREMENT,"
    " name VARCHAR(32) NOT NULL)",
    "CREATE UNIQUE INDEX ux_tags_name ON tags (name)",
    "CREATE TABLE event_tags ("
    " id INTEGER PRIMARY KEY AUTO_INCREMENT,"
    " event_id INTEGER NOT NULL,"
    " tag_id INTEGER NOT NULL)",
    "CREATE INDEX idx_event_tags_event ON event_tags (event_id)",
    "CREATE INDEX idx_event_tags_tag ON event_tags (tag_id)",
    "CREATE TABLE attendees ("
    " id INTEGER PRIMARY KEY AUTO_INCREMENT,"
    " event_id INTEGER NOT NULL,"
    " user_id INTEGER NOT NULL)",
    "CREATE INDEX idx_attendees_event ON attendees (event_id)",
    "CREATE INDEX idx_attendees_user ON attendees (user_id)",
    "CREATE TABLE comments ("
    " id INTEGER PRIMARY KEY AUTO_INCREMENT,"
    " event_id INTEGER NOT NULL,"
    " user_id INTEGER NOT NULL,"
    " body TEXT,"
    " created DOUBLE)",
    "CREATE INDEX idx_comments_event ON comments (event_id)",
]


def create_schema(server) -> None:
    """Create the Cloudstone schema on ``server`` (the master).

    Uses the admin path (no CPU charge) — the paper pre-loads before
    measurement — but the DDL still replicates through the binlog.
    """
    for statement in SCHEMA_STATEMENTS:
        server.admin(statement, database=CLOUDSTONE_DATABASE)

"""Shared workload state: approximate entity counters.

The operation generators need plausible entity ids to reference.  Ids
are dense (auto-increment, no deletes in Cloudstone), so tracking
counts is enough.  Counters are *client-side* approximations — a read
against a lagging slave may reference a row it has not applied yet and
come back empty, which is exactly the staleness a real Web 2.0 client
experiences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WorkloadState"]


class WorkloadState:
    """Counts of live entities, updated as write operations complete."""

    def __init__(self, n_users: int, n_events: int, n_tags: int,
                 time_horizon: float = 30 * 86400.0):
        self.n_users = n_users
        self.n_events = n_events
        self.n_tags = n_tags
        #: Event dates are spread over this many seconds of calendar.
        self.time_horizon = time_horizon
        #: Client-side wall clock used to stamp created-at literals.
        #: Stamping on the client keeps write statements deterministic
        #: under statement-based replication (``USEC_NOW()`` inside a
        #: replicated write would commit a different value on every
        #: replica); the driver binds this to the simulation clock.
        self.now_fn = lambda: 0.0

    def now(self) -> float:
        """The client's current wall-clock reading."""
        return float(self.now_fn())

    # -- id picks -------------------------------------------------------------
    def random_user(self, rng: np.random.Generator) -> int:
        return int(rng.integers(1, self.n_users + 1))

    def random_event(self, rng: np.random.Generator) -> int:
        return int(rng.integers(1, self.n_events + 1))

    def random_tag(self, rng: np.random.Generator) -> int:
        return int(rng.integers(1, self.n_tags + 1))

    def random_date_window(self, rng: np.random.Generator,
                           fraction: float = 0.1) -> tuple[float, float]:
        """A [low, high] slice covering ``fraction`` of the calendar."""
        span = self.time_horizon * fraction
        low = float(rng.uniform(0.0, self.time_horizon - span))
        return low, low + span

    def random_event_date(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(0.0, self.time_horizon))

    # -- growth ------------------------------------------------------------------
    def note_user_created(self) -> None:
        self.n_users += 1

    def note_event_created(self) -> None:
        self.n_events += 1

"""Shared plumbing for the race-analysis tests: write fixture sources
to a temp directory, build the project model over them, and run the
RACE rules the way ``racecheck_paths`` does."""

import textwrap

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.race import build_project_model, race_rules
from repro.analysis.visitor import LintContext


@pytest.fixture
def race_project(tmp_path):
    def run(sources, config=None):
        """``sources``: {filename: source}.  Returns (model, findings)."""
        paths = []
        for name, source in sorted(sources.items()):
            target = tmp_path / name
            target.write_text(textwrap.dedent(source),
                              encoding="utf-8")
            paths.append(str(target))
        model = build_project_model(paths)
        rules = race_rules(model)
        findings = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = model.module_for(path)
            assert module is not None, f"{path} did not parse"
            context = LintContext(path, source, module.tree,
                                  config or LintConfig())
            for rule in rules:
                rule.check(context)
            findings.extend(context.findings)
        return model, sorted(findings)

    return run

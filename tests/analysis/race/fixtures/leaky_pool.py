"""A deliberately raced pool field: the canonical RACE001 specimen.

Both prongs' tests use this one module: the static prong must flag
``worker``'s write-back (read → yield → write, no re-read), and the
dynamic prong must report the lost update when two workers share one
pool at runtime.  The ``[tool.simlint]`` per-path ignore for this
directory keeps the specimen out of the repo-wide clean gates.
"""


class LeakyPool:
    """Two fields so tests can also assert what is NOT flagged."""

    def __init__(self):
        self.available = 5
        self.label = "pool"


def worker(sim, pool):
    count = pool.available           # stale read
    yield sim.timeout(1.0)           # preemption point
    pool.available = count - 1       # lost update


def start(sim, pool):
    for index in range(2):
        sim.process(worker(sim, pool), name=f"worker-{index}")

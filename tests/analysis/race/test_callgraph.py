"""Call-graph and may-yield summary layer: exact assertions."""

import ast

from repro.analysis.race import build_project_model


def _build(tmp_path, sources):
    paths = []
    for name, source in sorted(sources.items()):
        target = tmp_path / name
        target.write_text(source, encoding="utf-8")
        paths.append(str(target))
    return build_project_model(paths)


DELEGATION = """\
def leaf():
    yield 1


def chain():
    yield from leaf()


def deep():
    yield from chain()


def plain_caller():
    chain()
    return 2


def rec_a():
    yield from rec_b()


def rec_b():
    yield from rec_a()


def computed(gen):
    yield from gen


def helper():
    return 3
"""


def test_delegation_chain_summary_exact(tmp_path):
    model = _build(tmp_path, {"mod.py": DELEGATION})
    assert model.summary() == {
        "mod.leaf": True,          # plain yield
        "mod.chain": True,         # delegates to leaf
        "mod.deep": True,          # transitively
        "mod.plain_caller": False, # plain call never suspends caller
        "mod.rec_a": False,        # cycle with no plain yield
        "mod.rec_b": False,
        "mod.computed": True,      # unresolvable delegation: assume
        "mod.helper": False,
    }


def test_yieldfrom_preempts_per_site(tmp_path):
    model = _build(tmp_path, {"mod.py": DELEGATION})
    yf = {}
    for info in model.functions.values():
        for node in ast.walk(info.node):
            if isinstance(node, ast.YieldFrom):
                yf[info.name] = model.yieldfrom_preempts(node)
    assert yf["chain"] is True
    assert yf["deep"] is True
    assert yf["rec_a"] is False       # resolves to a non-yielding cycle
    assert yf["rec_b"] is False
    assert yf["computed"] is True     # yield from a bare name
    # A YieldFrom node the model never saw is conservatively preempting.
    foreign = ast.parse("def g():\n    yield from h()\n")
    node = next(n for n in ast.walk(foreign)
                if isinstance(n, ast.YieldFrom))
    assert model.yieldfrom_preempts(node) is True


DISPATCH = """\
class Fast:
    def poll(self, sim):
        return 1


class Slow:
    def poll(self, sim):
        yield sim.timeout(1)


class Widget:
    def refresh(self, sim):
        yield sim.timeout(1)

    def cycle(self, sim):
        yield from self.refresh(sim)

    def tick(self, sim):
        yield from self.poke(sim)


def drive(obj, sim):
    yield from obj.poll(sim)
"""


def test_dynamic_dispatch_unions_by_name(tmp_path):
    model = _build(tmp_path, {"disp.py": DISPATCH})
    summary = model.summary()
    # obj.poll resolves to {Fast.poll, Slow.poll}; Slow yields, so the
    # union may-yields and the delegation site preempts.
    assert summary["disp.drive"] is True
    assert summary["disp.Fast.poll"] is False
    assert summary["disp.Slow.poll"] is True
    # self.refresh resolves precisely to the enclosing class's method.
    assert summary["disp.Widget.cycle"] is True
    # self.poke resolves nowhere: unresolved delegation -> may-yield.
    assert summary["disp.Widget.tick"] is True


def test_cross_module_resolution_by_name(tmp_path):
    model = _build(tmp_path, {
        "a.py": "def pause(sim):\n    yield sim.timeout(1)\n",
        "b.py": ("def outer(sim):\n"
                 "    yield from pause(sim)\n"),
    })
    summary = model.summary()
    assert summary["b.outer"] is True


def test_process_roots_and_multiplicity(tmp_path):
    model = _build(tmp_path, {"roots.py": (
        "def once(sim):\n"
        "    yield sim.timeout(1)\n"
        "\n"
        "def many(sim):\n"
        "    yield sim.timeout(1)\n"
        "\n"
        "def main(sim):\n"
        "    sim.process(once(sim))\n"
        "    for _ in range(3):\n"
        "        sim.process(many(sim))\n"
    )})
    roots = {info.qualname: multi
             for info, multi in model.process_roots()}
    assert roots == {"roots.once": False, "roots.many": True}

"""The race gate: the repo must be simrace-clean.

The static prong's enforcement point — a change that reintroduces a
read→yield→write-back, an unguarded check-then-act, or a live shared
iteration across a preemption fails CI here (and via
``python -m repro racecheck``).  The deliberately raced specimens
under ``tests/analysis/race/fixtures`` are excused by the
``per-path-ignore`` entry in ``pyproject.toml``.
"""

import os

from repro.analysis import format_findings_text, load_config
from repro.analysis.runner import racecheck_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))


def test_repo_is_racecheck_clean():
    config = load_config(REPO_ROOT)
    paths = [os.path.join(REPO_ROOT, path) for path in config.paths]
    findings = racecheck_paths(paths, config=config)
    assert not findings, "\n" + format_findings_text(findings)

"""Per-RACE-rule suites: each rule fires on its canonical shape,
stays silent on the corrected shape, and honours suppressions."""


def _codes(findings):
    return [finding.rule_id for finding in findings]


# ---------------------------------------------------------------------------
# RACE001: read -> yield -> write-back without a re-read.
# ---------------------------------------------------------------------------

RACE001_FIRE = """\
class Pool:
    def __init__(self, sim):
        self.sim = sim
        self.free = 5

    def worker(self):
        count = self.free
        yield self.sim.timeout(1)
        self.free = count - 1


def main(sim, pool):
    for _ in range(2):
        sim.process(pool.worker())
"""


def test_race001_fires_on_stale_write_back(race_project):
    _model, findings = race_project({"mod.py": RACE001_FIRE})
    assert _codes(findings) == ["RACE001"]
    finding = findings[0]
    assert "free" in finding.message
    # Related locations: the stale read and the yield it crossed.
    related_lines = sorted(line for _p, line, _c, _m in finding.related)
    assert related_lines == [7, 8]


def test_race001_silent_when_reread_after_yield(race_project):
    source = RACE001_FIRE.replace(
        "        self.free = count - 1",
        "        count = self.free\n"
        "        self.free = count - 1")
    _model, findings = race_project({"mod.py": source})
    assert findings == []


def test_race001_silent_without_concurrency(race_project):
    # Same function, single non-loop registration: not shared state.
    source = RACE001_FIRE.replace(
        "    for _ in range(2):\n"
        "        sim.process(pool.worker())",
        "    sim.process(pool.worker())")
    _model, findings = race_project({"mod.py": source})
    assert findings == []


def test_race001_suppressed_inline(race_project):
    source = RACE001_FIRE.replace(
        "        self.free = count - 1",
        "        self.free = count - 1  # simlint: disable=RACE001")
    _model, findings = race_project({"mod.py": source})
    assert findings == []


def test_race001_crosses_interprocedural_yield(race_project):
    # The preemption hides inside a delegated generator: the summary
    # layer must mark the `yield from` site as a crossing.
    _model, findings = race_project({"mod.py": """\
        class Pool:
            def __init__(self, sim):
                self.sim = sim
                self.free = 5

            def pause(self):
                yield self.sim.timeout(1)

            def worker(self):
                count = self.free
                yield from self.pause()
                self.free = count - 1


        def main(sim, pool):
            for _ in range(2):
                sim.process(pool.worker())
    """})
    assert _codes(findings) == ["RACE001"]


# ---------------------------------------------------------------------------
# RACE002: check-then-act across a yield.
# ---------------------------------------------------------------------------

RACE002_FIRE = """\
class Registry:
    def __init__(self, sim):
        self.sim = sim
        self.leader = None

    def elect(self, me):
        if self.leader is None:
            yield self.sim.timeout(1)
            self.leader = me


def main(sim, registry):
    for name in ("a", "b"):
        sim.process(registry.elect(name))
"""


def test_race002_fires_on_check_then_act(race_project):
    _model, findings = race_project({"mod.py": RACE002_FIRE})
    assert "RACE002" in _codes(findings)
    finding = next(f for f in findings if f.rule_id == "RACE002")
    assert "leader" in finding.message


def test_race002_silent_when_rechecked_after_yield(race_project):
    source = RACE002_FIRE.replace(
        "            self.leader = me",
        "            if self.leader is None:\n"
        "                self.leader = me")
    _model, findings = race_project({"mod.py": source})
    assert "RACE002" not in _codes(findings)


def test_race002_poll_loop_recheck_is_clean(race_project):
    # `while` headers re-evaluate after every yield: that IS the
    # re-check, so acting after the loop is fine.
    _model, findings = race_project({"mod.py": """\
        class Gate:
            def __init__(self, sim):
                self.sim = sim
                self.open = False
                self.entered = 0

            def enter(self):
                while not self.open:
                    yield self.sim.timeout(1)
                self.entered = self.entered + 1


        def main(sim, gate):
            for _ in range(2):
                sim.process(gate.enter())
    """})
    assert "RACE002" not in _codes(findings)


def test_race002_suppressed_inline(race_project):
    # Suppressions anchor at the reported line — the act, not the check.
    source = RACE002_FIRE.replace(
        "            self.leader = me",
        "            self.leader = me  # simlint: disable=RACE002")
    _model, findings = race_project({"mod.py": source})
    assert "RACE002" not in _codes(findings)


# ---------------------------------------------------------------------------
# RACE003: iterating a shared collection across a yield.
# ---------------------------------------------------------------------------

RACE003_FIRE = """\
class Fleet:
    def __init__(self, sim):
        self.sim = sim
        self.members = set()

    def sweep(self):
        for member in self.members:
            yield self.sim.timeout(1)

    def evict(self, member):
        yield self.sim.timeout(1)
        self.members.discard(member)


def main(sim, fleet):
    sim.process(fleet.sweep())
    sim.process(fleet.evict("m1"))
"""


def test_race003_fires_on_live_iteration(race_project):
    _model, findings = race_project({"mod.py": RACE003_FIRE})
    assert "RACE003" in _codes(findings)
    finding = next(f for f in findings if f.rule_id == "RACE003")
    assert "members" in finding.message


def test_race003_silent_on_snapshot_iteration(race_project):
    source = RACE003_FIRE.replace(
        "        for member in self.members:",
        "        for member in list(self.members):")
    _model, findings = race_project({"mod.py": source})
    assert "RACE003" not in _codes(findings)


def test_race003_silent_without_yield_in_body(race_project):
    source = RACE003_FIRE.replace(
        "        for member in self.members:\n"
        "            yield self.sim.timeout(1)",
        "        for member in self.members:\n"
        "            pass\n"
        "        yield self.sim.timeout(1)")
    _model, findings = race_project({"mod.py": source})
    assert "RACE003" not in _codes(findings)


# ---------------------------------------------------------------------------
# RACE004: publication torn by interrupt before the finally restores.
# ---------------------------------------------------------------------------

RACE004_FIRE = """\
class Router:
    def __init__(self, sim):
        self.sim = sim
        self.target = "primary"

    def detour(self):
        try:
            self.target = "standby"
            yield self.sim.timeout(5)
        finally:
            self.sim.log("done")

    def sender(self):
        yield self.sim.timeout(1)
        self.target = "primary"


def main(sim, router):
    sim.process(router.detour())
    sim.process(router.sender())
"""


def test_race004_fires_on_unrestored_publication(race_project):
    _model, findings = race_project({"mod.py": RACE004_FIRE})
    assert "RACE004" in _codes(findings)
    finding = next(f for f in findings if f.rule_id == "RACE004")
    assert "target" in finding.message


def test_race004_silent_when_finally_restores(race_project):
    source = RACE004_FIRE.replace(
        '            self.sim.log("done")',
        '            self.target = "primary"')
    _model, findings = race_project({"mod.py": source})
    assert "RACE004" not in _codes(findings)


def test_race004_silent_when_write_after_yield(race_project):
    # Published only after the first preemption: an interrupt landing
    # at that yield never observes the torn value.
    source = RACE004_FIRE.replace(
        '            self.target = "standby"\n'
        "            yield self.sim.timeout(5)",
        "            yield self.sim.timeout(5)\n"
        '            self.target = "standby"')
    _model, findings = race_project({"mod.py": source})
    assert "RACE004" not in _codes(findings)


# ---------------------------------------------------------------------------
# RACE005: a yield inside a begin/commit atomic region.
# ---------------------------------------------------------------------------

RACE005_FIRE = """\
class Writer:
    def __init__(self, sim, db):
        self.sim = sim
        self.db = db

    def apply(self):
        self.db.begin()
        yield self.sim.timeout(1)
        self.db.commit()


def main(sim, writer):
    for _ in range(2):
        sim.process(writer.apply())
"""


def test_race005_fires_on_yield_inside_transaction(race_project):
    _model, findings = race_project({"mod.py": RACE005_FIRE})
    assert "RACE005" in _codes(findings)


def test_race005_silent_when_commit_precedes_yield(race_project):
    source = RACE005_FIRE.replace(
        "        self.db.begin()\n"
        "        yield self.sim.timeout(1)\n"
        "        self.db.commit()",
        "        self.db.begin()\n"
        "        self.db.commit()\n"
        "        yield self.sim.timeout(1)")
    _model, findings = race_project({"mod.py": source})
    assert "RACE005" not in _codes(findings)


def test_race005_suppressed_inline(race_project):
    source = RACE005_FIRE.replace(
        "        yield self.sim.timeout(1)",
        "        yield self.sim.timeout(1)"
        "  # simlint: disable=RACE005")
    _model, findings = race_project({"mod.py": source})
    assert "RACE005" not in _codes(findings)

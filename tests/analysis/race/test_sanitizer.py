"""Dynamic prong: the runtime race sanitizer — and the both-prongs
acceptance test over the deliberately raced pool fixture."""

import os

from repro.analysis.config import LintConfig
from repro.analysis.race import RaceSanitizer
from repro.analysis.runner import racecheck_paths
from repro.sim.kernel import Simulator

from tests.analysis.race.fixtures.leaky_pool import (LeakyPool, start,
                                                     worker)

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "leaky_pool.py")


# ---------------------------------------------------------------------------
# Acceptance: the same raced field is caught by BOTH prongs.
# ---------------------------------------------------------------------------

def test_static_prong_flags_leaky_pool():
    # Default config (no per-path ignores): the specimen must fire.
    findings = racecheck_paths([FIXTURE], config=LintConfig())
    assert [f.rule_id for f in findings] == ["RACE001"]
    assert "available" in findings[0].message


def test_dynamic_prong_reports_the_lost_update():
    sim = Simulator()
    sanitizer = RaceSanitizer().attach(sim)
    pool = LeakyPool()
    sanitizer.instrument(pool, ("available",), "pool")
    start(sim, pool)
    sim.run()
    # Both workers read 5, yield, then write 4: the second write
    # clobbers the first.  Exactly one report, naming both parties.
    assert len(sanitizer.reports) == 1
    report = sanitizer.reports[0]
    assert report.field_path == "pool.available"
    assert {report.writer, report.other} == {"worker-0", "worker-1"}
    assert report.time == 1.0 and report.read_time == 0.0
    assert pool.available == 4  # the lost update is observable
    rendered = report.render()
    assert "pool.available" in rendered and "overwriting" in rendered


# ---------------------------------------------------------------------------
# Sanitizer mechanics.
# ---------------------------------------------------------------------------

def _run(builder):
    """Run ``builder(sim, sanitizer)`` to set up processes, then
    simulate to completion and return the sanitizer."""
    sim = Simulator()
    sanitizer = RaceSanitizer().attach(sim)
    builder(sim, sanitizer)
    sim.run()
    return sanitizer


def test_blind_writes_never_report():
    # A publisher that writes without reading (the SQL-thread shape)
    # must stay silent no matter how the writes interleave.
    def build(sim, sanitizer):
        pool = LeakyPool()
        sanitizer.instrument(pool, ("available",), "pool")

        def publisher(value):
            yield sim.timeout(1.0)
            pool.available = value
            yield sim.timeout(1.0)
            pool.available = value + 10

        sim.process(publisher(1), name="pub-a")
        sim.process(publisher(2), name="pub-b")

    assert _run(build).reports == []


def test_read_and_write_in_same_step_is_clean():
    # Re-reading after the yield puts read and write in one epoch:
    # the classic correct pattern must not report.
    def build(sim, sanitizer):
        pool = LeakyPool()
        sanitizer.instrument(pool, ("available",), "pool")

        def careful():
            yield sim.timeout(1.0)
            pool.available = pool.available - 1

        sim.process(careful(), name="c-0")
        sim.process(careful(), name="c-1")

    assert _run(build).reports == []


def test_stale_read_without_conflict_is_clean():
    # One lone worker yields between read and write, but nobody else
    # writes: no version movement, no report.
    def build(sim, sanitizer):
        pool = LeakyPool()
        sanitizer.instrument(pool, ("available",), "pool")
        sim.process(worker(sim, pool), name="solo")

    assert _run(build).reports == []


def test_uninstrumented_fields_bypass_the_sanitizer():
    def build(sim, sanitizer):
        pool = LeakyPool()
        sanitizer.instrument(pool, ("available",), "pool")

        def toucher():
            label = pool.label
            yield sim.timeout(1.0)
            # Deliberately raced: the point is that the sanitizer
            # ignores it because 'label' is not instrumented.
            pool.label = label + "!"  # simlint: disable=RACE001

        sim.process(toucher(), name="t-0")
        sim.process(toucher(), name="t-1")

    sanitizer = _run(build)
    assert sanitizer.reports == []
    # No state row is ever created for the uninstrumented field —
    # its lost update (both touchers read "pool") goes unreported.
    (pool,) = sanitizer._keepalive
    assert "label" not in sanitizer._state[id(pool)]
    assert pool.label == "pool!"


def test_instrumentation_preserves_class_identity_surface():
    pool = LeakyPool()
    sanitizer = RaceSanitizer()
    sanitizer.instrument(pool, ("available",), "pool")
    assert isinstance(pool, LeakyPool)
    assert type(pool).__name__ == "LeakyPool"
    assert pool.available == 5  # reads outside a process still work
    pool.available = 7
    assert pool.available == 7


def test_summary_shape():
    sim = Simulator()
    sanitizer = RaceSanitizer().attach(sim)
    pool = LeakyPool()
    sanitizer.instrument(pool, ("available",), "pool")
    start(sim, pool)
    sim.run()
    summary = sanitizer.summary()
    assert summary["instrumented"] == ["pool"]
    assert summary["reportCount"] == 1
    (entry,) = summary["reports"]
    assert entry["fieldPath"] == "pool.available"
    assert set(entry) == {"time", "fieldPath", "writer", "other",
                          "readTime"}

"""Shared-state inventory: what counts as raceable shared state."""

from repro.analysis.race import build_project_model
from repro.analysis.race.shared import build_inventory


def _inventory(tmp_path, source, name="mod.py"):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    model = build_project_model([str(target)])
    return build_inventory(model)


TWO_ROOTS = """\
class Pool:
    def __init__(self, sim):
        self.sim = sim
        self.free = 5
        self.private_note = 0

    def producer(self):
        yield self.sim.timeout(1)
        self.free = self.free + 1

    def consumer(self):
        yield self.sim.timeout(1)
        self.free = self.free - 1
        read_only = self.private_note


def main(sim, pool):
    sim.process(pool.producer())
    sim.process(pool.consumer())
"""


def test_two_roots_written_attr_is_shared(tmp_path):
    inventory = _inventory(tmp_path, TWO_ROOTS)
    assert ("Pool", "free") in inventory.shared_pairs()
    assert inventory.is_shared("free", "Pool")
    # Name-based lookup (non-self receiver) also matches.
    assert inventory.is_shared("free", None)


def test_read_only_attr_is_not_shared(tmp_path):
    inventory = _inventory(tmp_path, TWO_ROOTS)
    # private_note is read by a root but never written by one:
    # __init__ is not process-reachable.
    assert ("Pool", "private_note") not in inventory.shared_pairs()
    assert not inventory.is_shared("private_note", "Pool")


SINGLE_ROOT = """\
class Counter:
    def __init__(self, sim):
        self.sim = sim
        self.value = 0

    def ticker(self):
        yield self.sim.timeout(1)
        self.value = self.value + 1


def single(sim, counter):
    sim.process(counter.ticker())


def fleet(sim, counter):
    for _ in range(4):
        sim.process(counter.ticker())
"""


def test_single_instance_root_is_private(tmp_path):
    # Only the single registration: one process touches the state.
    source = SINGLE_ROOT.replace("def fleet", "def unused_fleet") \
        .replace("    for _ in range(4):\n"
                 "        sim.process(counter.ticker())\n", "    pass\n")
    inventory = _inventory(tmp_path, source)
    assert ("Counter", "value") not in inventory.shared_pairs()


def test_multi_instance_root_is_shared(tmp_path):
    inventory = _inventory(tmp_path, SINGLE_ROOT)
    assert ("Counter", "value") in inventory.shared_pairs()


def test_collection_mutator_counts_as_write(tmp_path):
    inventory = _inventory(tmp_path, """\
class Registry:
    def __init__(self, sim):
        self.sim = sim
        self.members = set()

    def joiner(self):
        yield self.sim.timeout(1)
        self.members.add("x")


def main(sim, registry):
    for _ in range(2):
        sim.process(registry.joiner())
""")
    assert ("Registry", "members") in inventory.shared_pairs()


def test_non_self_access_joins_defining_classes(tmp_path):
    inventory = _inventory(tmp_path, """\
class Proxy:
    def __init__(self):
        self.master = None


def flipper(sim, proxy):
    yield sim.timeout(1)
    proxy.master = "new"


def main(sim, proxy):
    sim.process(flipper(sim, proxy))
    sim.process(flipper(sim, proxy))
""")
    # The module-level root writes through a bare receiver; the access
    # joins to every class defining 'master'.
    assert ("Proxy", "master") in inventory.shared_pairs()

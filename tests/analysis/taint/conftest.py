"""Shared plumbing for the taint-analysis tests: write fixture
sources to a temp directory, build the project model, and run the TNT
rules the way ``taintcheck_paths`` does."""

import textwrap

import pytest

from repro.analysis.config import LintConfig
from repro.analysis.race import build_project_model
from repro.analysis.taint import build_purity, taint_rules
from repro.analysis.visitor import LintContext


def _write(tmp_path, sources):
    paths = []
    for name, source in sorted(sources.items()):
        target = tmp_path / name
        target.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(str(target))
    return paths


@pytest.fixture
def taint_project(tmp_path):
    def run(sources, config=None):
        """``sources``: {filename: source}.  Returns (model, findings)."""
        paths = _write(tmp_path, sources)
        model = build_project_model(paths)
        rules = taint_rules(model)
        findings = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = model.module_for(path)
            assert module is not None, f"{path} did not parse"
            context = LintContext(path, source, module.tree,
                                  config or LintConfig())
            for rule in rules:
                rule.check(context)
            findings.extend(context.findings)
        return model, sorted(findings)

    return run


@pytest.fixture
def purity_project(tmp_path):
    def run(sources):
        """``sources``: {filename: source}.  Returns (model, purity)."""
        paths = _write(tmp_path, sources)
        model = build_project_model(paths)
        return model, build_purity(model)

    return run

"""The ``repro check`` umbrella: one shared model, three analyzers,
purity feedback into the FLW/RACE rules, one merged SARIF document."""

import json
import textwrap

import pytest

from repro.analysis import (LintStats, check_paths, lint_paths,
                            load_config)
from repro.cli import main


@pytest.fixture
def project(tmp_path):
    def build(sources):
        paths = []
        for name, source in sorted(sources.items()):
            target = tmp_path / name
            target.write_text(textwrap.dedent(source),
                              encoding="utf-8")
            paths.append(str(target))
        return paths

    return build


TAINTED = """\
import time


def stamp(server):
    server.started_at = time.time()
"""


def test_check_paths_returns_per_tool_findings(project):
    paths = project({"mod.py": TAINTED})
    results = check_paths(paths, config=load_config("."))
    assert sorted(results) == ["simlint", "simrace", "simtaint"]
    assert [f.rule_id for f in results["simtaint"]] == ["TNT005"]
    assert results["simrace"] == []


PURE_LEAK = """\
def measure(conn):
    return 1


def run(pool):
    conn = pool.acquire()
    measure(conn)
"""


def test_check_reports_purity_oracle_stats(project):
    # A pure helper consulted by the FLW rules shows up as resolved
    # call sites in the stats — and with the release present, clean.
    paths = project({"mod.py": """\
        def measure(conn):
            return 1


        def run(pool):
            conn = pool.acquire()
            try:
                measure(conn)
            finally:
                pool.release(conn)
    """})
    stats = LintStats()
    results = check_paths(paths, config=load_config("."), stats=stats)
    assert results["simlint"] == []
    assert stats.calls_resolved > 0
    assert "purity oracle" in stats.render()


def test_check_purity_feedback_sharpens_flw(project):
    # Standalone lint treats `measure(conn)` as a conservative escape
    # and stays silent; `check` proves it pure — it cannot release or
    # capture the handle — so the leak is the caller's and FLW001
    # fires.  The oracle converts a false negative into a report.
    paths = project({"leak.py": PURE_LEAK})
    config = load_config(".")
    standalone = lint_paths(paths, config=config)
    assert not any(f.rule_id == "FLW001" for f in standalone)
    results = check_paths(paths, config=config)
    assert any(f.rule_id == "FLW001" for f in results["simlint"])


def test_check_impure_call_still_settles_claims(project):
    # A call the oracle can only prove IMPURE keeps the conservative
    # escape semantics: no FLW001 from either mode.
    paths = project({"handoff.py": """\
        REGISTRY = []


        def adopt(conn):
            REGISTRY.append(conn)


        def run(pool):
            conn = pool.acquire()
            adopt(conn)
    """})
    results = check_paths(paths, config=load_config("."))
    assert not any(f.rule_id == "FLW001"
                   for f in results["simlint"])


# ---------------------------------------------------------------------------
# CLI: text / json / merged sarif.
# ---------------------------------------------------------------------------

def test_cli_check_text_sections(project, capsys):
    (path,) = project({"mod.py": TAINTED})
    code = main(["check", path])
    out = capsys.readouterr().out
    assert code == 1
    for section in ("simlint", "simrace", "simtaint", "simcheck"):
        assert section in out


def test_cli_check_merged_sarif(project, capsys):
    (path,) = project({"mod.py": TAINTED})
    code = main(["check", path, "--format", "sarif"])
    out = capsys.readouterr().out
    assert code == 1
    document = json.loads(out)
    names = [run["tool"]["driver"]["name"]
             for run in document["runs"]]
    assert names == ["simlint", "simrace", "simtaint"]
    taint_run = document["runs"][2]
    assert [r["ruleId"] for r in taint_run["results"]] == ["TNT005"]
    # Rule metadata is present for every TNT rule, findings or not.
    assert len(taint_run["tool"]["driver"]["rules"]) == 5


def test_cli_check_json_per_tool(project, capsys):
    (path,) = project({"mod.py": TAINTED})
    code = main(["check", path, "--format", "json"])
    out = capsys.readouterr().out
    assert code == 1
    document = json.loads(out)
    # simlint's DET001 flags the same wall-clock read the taint pass
    # traces to its sink — both surface in one document.
    assert document["tools"]["simtaint"]["count"] == 1
    assert document["tools"]["simlint"]["count"] == 1
    assert document["count"] == sum(
        tool["count"] for tool in document["tools"].values())


def test_cli_check_baseline_round_trip(project, tmp_path, capsys):
    (path,) = project({"mod.py": TAINTED})
    snapshot = tmp_path / "check-baseline.json"
    assert main(["check", path,
                 "--write-baseline", str(snapshot)]) == 0
    capsys.readouterr()
    assert main(["check", path, "--baseline", str(snapshot)]) == 0
    capsys.readouterr()
    # Same inputs, byte-identical snapshot.
    again = tmp_path / "again.json"
    assert main(["check", path, "--write-baseline", str(again)]) == 0
    capsys.readouterr()
    assert again.read_bytes() == snapshot.read_bytes()


def test_cli_check_clean_exit_zero(project, capsys):
    (path,) = project({"mod.py": "def f(x):\n    return x + 1\n"})
    assert main(["check", path]) == 0
    assert "0 findings" in capsys.readouterr().out

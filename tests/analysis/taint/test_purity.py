"""Purity/side-effect summaries: the least fixpoint over the call
graph, exact per-function assertions via ``effects_by_qualname``."""

import ast

import pytest


def _effects(purity):
    return purity.effects_by_qualname()


# ---------------------------------------------------------------------------
# Direct effects.
# ---------------------------------------------------------------------------

def test_value_computation_is_pure(purity_project):
    _model, purity = purity_project({"mod.py": """\
        def double(x):
            return x * 2
    """})
    assert _effects(purity) == {"mod.double": "pure"}


def test_fresh_local_mutation_stays_pure(purity_project):
    # Mutating a list the function itself allocated is invisible to
    # the caller.
    _model, purity = purity_project({"mod.py": """\
        def build(n):
            out = []
            for i in range(n):
                out.append(i)
            return out
    """})
    assert _effects(purity) == {"mod.build": "pure"}


def test_parameter_mutation_is_recorded_by_index(purity_project):
    _model, purity = purity_project({"mod.py": """\
        def push(items, value):
            items.append(value)
    """})
    assert _effects(purity) == {"mod.push": "mutates(0)"}


def test_aliased_parameter_mutation_is_caught(purity_project):
    # The write goes through a local alias of the parameter.
    _model, purity = purity_project({"mod.py": """\
        def push(items, value):
            view = items
            view.append(value)
    """})
    assert _effects(purity) == {"mod.push": "mutates(0)"}


def test_global_write_and_io_and_nondet(purity_project):
    _model, purity = purity_project({"mod.py": """\
        import time

        COUNTER = 0

        def bump():
            global COUNTER
            COUNTER += 1

        def log(msg):
            print(msg)

        def stamp():
            return time.time()
    """})
    effects = _effects(purity)
    assert effects["mod.bump"] == "globals"
    assert effects["mod.log"] == "io"
    assert effects["mod.stamp"] == "nondet"


# ---------------------------------------------------------------------------
# The fixpoint: recursion, mutual recursion, transitivity.
# ---------------------------------------------------------------------------

def test_recursion_converges_to_pure(purity_project):
    _model, purity = purity_project({"mod.py": """\
        def fact(n):
            return 1 if n <= 1 else n * fact(n - 1)
    """})
    assert _effects(purity) == {"mod.fact": "pure"}


def test_mutual_recursion_converges_to_pure(purity_project):
    _model, purity = purity_project({"mod.py": """\
        def is_even(n):
            return True if n == 0 else is_odd(n - 1)

        def is_odd(n):
            return False if n == 0 else is_even(n - 1)
    """})
    assert _effects(purity) == {"mod.is_even": "pure",
                                "mod.is_odd": "pure"}


def test_mutual_recursion_propagates_an_effect_to_both(purity_project):
    _model, purity = purity_project({"mod.py": """\
        def ping(n):
            print(n)
            return pong(n - 1)

        def pong(n):
            return ping(n - 1)
    """})
    effects = _effects(purity)
    assert effects["mod.ping"] == "io"
    assert effects["mod.pong"] == "io"


def test_nondet_is_transitive_across_helpers(purity_project):
    _model, purity = purity_project({"mod.py": """\
        import time

        def leaf():
            return time.time()

        def middle():
            return leaf() + 1

        def top():
            return middle() * 2
    """})
    effects = _effects(purity)
    assert effects["mod.leaf"] == "nondet"
    assert effects["mod.middle"] == "nondet"
    assert effects["mod.top"] == "nondet"


def test_callee_param_mutation_maps_back_through_arguments(purity_project):
    # push mutates its first parameter; fill passes ITS first
    # parameter there, so fill mutates parameter 0 too.
    _model, purity = purity_project({"mod.py": """\
        def push(items, value):
            items.append(value)

        def fill(bucket):
            push(bucket, 1)

        def fresh():
            local = []
            push(local, 1)
            return local
    """})
    effects = _effects(purity)
    assert effects["mod.push"] == "mutates(0)"
    assert effects["mod.fill"] == "mutates(0)"
    # A fresh local handed to the mutator is the caller's own object.
    assert effects["mod.fresh"] == "pure"


def test_unknown_call_makes_the_caller_opaque(purity_project):
    _model, purity = purity_project({"mod.py": """\
        import mystery

        def touch():
            return mystery.poke()
    """})
    assert _effects(purity)["mod.touch"] == "opaque"


def test_whitelisted_stdlib_calls_stay_pure(purity_project):
    _model, purity = purity_project({"mod.py": """\
        import math

        def norm(xs):
            return math.sqrt(sum(x * x for x in sorted(xs)))
    """})
    assert _effects(purity) == {"mod.norm": "pure"}


# ---------------------------------------------------------------------------
# call_verdict: the oracle the FLW/RACE rules consult.
# ---------------------------------------------------------------------------

SOURCES = {"mod.py": """\
    import time

    def pure_helper(x):
        return x + 1

    def nondet_helper():
        return time.time()

    def gen(sim):
        yield sim.timeout(pure_helper(1))

    def caller(sim):
        a = pure_helper(1)
        b = nondet_helper()
        c = gen(sim)
        return a, b, c
"""}


def _calls_in(model, path, name):
    module = model.module_for(path)
    info = module.functions[name]
    return {node.func.id: node
            for node in ast.walk(info.node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)}, info


def test_call_verdicts_and_stats(purity_project, tmp_path):
    model, purity = purity_project(SOURCES)
    path = str(tmp_path / "mod.py")
    calls, caller = _calls_in(model, path, "caller")

    assert purity.call_verdict(calls["pure_helper"],
                               caller=caller) == "pure"
    assert purity.call_verdict(calls["nondet_helper"],
                               caller=caller) == "impure"
    # A generator is never "pure" for the oracle even if effect-free:
    # calling it builds a process that may suspend.
    assert purity.call_verdict(calls["gen"], caller=caller) != "pure"

    # All three verdicts came from resolved project targets ("impure"
    # is still a *resolved* answer; only "unknown" is conservative).
    assert purity.stats.resolved == 3
    assert purity.stats.conservative == 0
    assert "resolved" in purity.stats.render()


def test_generic_method_names_need_receiver_evidence(purity_project,
                                                     tmp_path):
    # `sink.append(...)` must NOT dispatch to Binlog.append just
    # because the names match; `binlog.append(...)` may.
    model, purity = purity_project({"mod.py": """\
        class Binlog:
            def __init__(self):
                self.events = []

            def append(self, event):
                self.events.append(event)
                print(event)

        def anonymous(sink, event):
            sink.append(event)

        def evidenced(binlog, event):
            binlog.append(event)
    """})
    effects = _effects(purity)
    # No receiver evidence: plain collection mutation of param 0.
    assert effects["mod.anonymous"] == "mutates(0)"
    # Receiver names the class: the callee's own summary governs —
    # its self-mutation maps back to param 0, and its I/O comes along.
    assert effects["mod.evidenced"] == "mutates(0) io"


def test_parameter_shadows_project_function(purity_project):
    # Calling the callable *parameter* `job` must not resolve to the
    # module-level `def job` (which does I/O).
    _model, purity = purity_project({"mod.py": """\
        def job():
            print("module-level")

        def run(job):
            return job()
    """})
    effects = _effects(purity)
    assert effects["mod.job"] == "io"
    assert "io" not in effects["mod.run"]

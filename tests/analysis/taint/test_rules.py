"""Per-TNT-rule suites: each rule fires on its canonical shape, stays
silent on the sanitized shape, and honours blessings/suppressions."""


def _codes(findings):
    return [finding.rule_id for finding in findings]


# ---------------------------------------------------------------------------
# TNT001: nondeterministic value -> event scheduling.
# ---------------------------------------------------------------------------

TNT001_FIRE = """\
import random


def jitter():
    return random.random()


def proc(sim):
    delay = jitter()
    yield sim.timeout(delay)
"""


def test_tnt001_fires_through_a_helper(taint_project):
    _model, findings = taint_project({"mod.py": TNT001_FIRE})
    assert _codes(findings) == ["TNT001"]
    finding = findings[0]
    assert finding.line == 10
    assert "random" in finding.message
    # The taint path: the helper-call source plus the original draw.
    notes = [note for _p, _l, _c, note in finding.related]
    assert any(note.startswith("source:") for note in notes)


def test_tnt001_silent_with_seeded_rng(taint_project):
    _model, findings = taint_project({"mod.py": """\
        import random

        RNG = random.Random(42)


        def proc(sim):
            delay = RNG
            yield sim.timeout(1.0)
    """})
    assert findings == []


def test_tnt001_blessed_on_the_sink_line(taint_project):
    source = TNT001_FIRE.replace(
        "    yield sim.timeout(delay)",
        "    yield sim.timeout(delay)  # simtaint: blessed=load-test-jitter")
    _model, findings = taint_project({"mod.py": source})
    assert findings == []


def test_tnt001_blessed_on_the_source_line(taint_project):
    source = TNT001_FIRE.replace(
        "    return random.random()",
        "    return random.random()  # simtaint: blessed=load-test-jitter")
    _model, findings = taint_project({"mod.py": source})
    assert findings == []


def test_tnt001_suppressed_with_disable_pragma(taint_project):
    source = TNT001_FIRE.replace(
        "    yield sim.timeout(delay)",
        "    yield sim.timeout(delay)  # simlint: disable=TNT001")
    _model, findings = taint_project({"mod.py": source})
    assert findings == []


def test_tnt001_interprocedural_param_sink(taint_project):
    # The sink lives in the callee; the report fires at the call site
    # that hands the nondet value over, with the callee sink related.
    _model, findings = taint_project({"mod.py": """\
        import time


        def schedule_in(sim, delay):
            sim.timeout(delay)


        def proc(sim):
            schedule_in(sim, time.time())
    """})
    assert _codes(findings) == ["TNT001"]
    finding = findings[0]
    assert finding.line == 9
    assert "schedule_in" in finding.message
    notes = [note for _p, _l, _c, note in finding.related]
    assert any(note.startswith("sink:") for note in notes)


# ---------------------------------------------------------------------------
# TNT002: nondeterministic value -> telemetry.
# ---------------------------------------------------------------------------

TNT002_FIRE = """\
import os


def report(tracer):
    node = os.getenv("NODE")
    tracer.instant(f"boot:{node}")
"""


def test_tnt002_fires_on_env_in_span_name(taint_project):
    _model, findings = taint_project({"mod.py": TNT002_FIRE})
    assert _codes(findings) == ["TNT002"]
    assert findings[0].line == 6
    assert "env" in findings[0].message


def test_tnt002_silent_on_constant_name(taint_project):
    _model, findings = taint_project({"mod.py": """\
        def report(tracer):
            tracer.instant("boot:fixed")
    """})
    assert findings == []


# ---------------------------------------------------------------------------
# TNT003: nondeterministic value -> artifact / replication payload.
# ---------------------------------------------------------------------------

TNT003_FIRE = """\
import json
import time


def dump(handle, result):
    stamped = {"value": result, "at": time.time()}
    handle.write(json.dumps(stamped))
"""


def test_tnt003_fires_on_wallclock_in_artifact(taint_project):
    _model, findings = taint_project({"mod.py": TNT003_FIRE})
    assert "TNT003" in _codes(findings)
    assert all(f.line == 7 for f in findings)


def test_tnt003_silent_without_the_stamp(taint_project):
    _model, findings = taint_project({"mod.py": """\
        import json


        def dump(handle, result):
            handle.write(json.dumps({"value": result}))
    """})
    assert findings == []


# ---------------------------------------------------------------------------
# TNT004: unordered iteration -> ordered output.
# ---------------------------------------------------------------------------

TNT004_FIRE = """\
def export(handle, names):
    pending = set(names)
    for name in pending:
        handle.write(name)
"""


def test_tnt004_fires_on_set_iteration_into_writer(taint_project):
    _model, findings = taint_project({"mod.py": TNT004_FIRE})
    assert _codes(findings) == ["TNT004"]
    assert findings[0].line == 4
    assert "sort" in findings[0].message


def test_tnt004_silent_when_sorted(taint_project):
    source = TNT004_FIRE.replace("for name in pending:",
                                 "for name in sorted(pending):")
    _model, findings = taint_project({"mod.py": source})
    assert findings == []


def test_tnt004_membership_test_is_order_free(taint_project):
    # A set used only for `in` checks imposes no order on the output.
    _model, findings = taint_project({"mod.py": """\
        def export(handle, rows, skip):
            skipset = set(skip)
            for row in rows:
                if row in skipset:
                    continue
                handle.write(row)
    """})
    assert findings == []


def test_tnt004_len_collapses_order(taint_project):
    _model, findings = taint_project({"mod.py": """\
        def export(handle, names):
            handle.write(str(len(set(names))))
    """})
    assert findings == []


# ---------------------------------------------------------------------------
# TNT005: wall clock steering simulation logic.
# ---------------------------------------------------------------------------

TNT005_FIRE = """\
import time


def throttle(server):
    started = time.perf_counter()
    if time.perf_counter() - started > 0.5:
        server.paused = True
"""


def test_tnt005_fires_on_wallclock_branch(taint_project):
    _model, findings = taint_project({"mod.py": TNT005_FIRE})
    assert "TNT005" in _codes(findings)
    assert findings[0].line == 6


def test_tnt005_fires_on_wallclock_state_store(taint_project):
    _model, findings = taint_project({"mod.py": """\
        import time


        def stamp(server):
            server.started_at = time.time()
    """})
    assert _codes(findings) == ["TNT005"]
    assert "stores it into state" in findings[0].message


def test_tnt005_silent_on_sim_time(taint_project):
    _model, findings = taint_project({"mod.py": """\
        def stamp(server, sim):
            server.started_at = sim.now
    """})
    assert findings == []


# ---------------------------------------------------------------------------
# Cross-cutting behaviour.
# ---------------------------------------------------------------------------

def test_rules_are_noops_without_a_model():
    from repro.analysis.taint.rules import TAINT_RULES
    from repro.analysis.config import LintConfig
    from repro.analysis.visitor import LintContext
    import ast

    source = "import time\nx = time.time()\n"
    context = LintContext("mod.py", source, ast.parse(source),
                          LintConfig())
    for cls in TAINT_RULES:
        cls().check(context)
    assert context.findings == []


def test_taint_crosses_files(taint_project):
    # Source in one module, sink in another: the summaries carry the
    # taint across the import boundary.
    _model, findings = taint_project({
        "clocks.py": """\
            import time


            def stamp():
                return time.time()
        """,
        "writer.py": """\
            from clocks import stamp


            def emit(tracer):
                tracer.instant("tick", at=stamp())
        """,
    })
    assert _codes(findings) == ["TNT002"]
    (finding,) = findings
    assert finding.path.endswith("writer.py")
    related_paths = [path for path, _l, _c, _m in finding.related]
    assert any(path.endswith("clocks.py") for path in related_paths)

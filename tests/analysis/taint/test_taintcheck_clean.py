"""The taint gate: the repo must be simtaint-clean.

The determinism prong's enforcement point — a change that routes a
wall-clock read, unseeded entropy, an environment variable, ``id()``
or set iteration order into event scheduling, telemetry or an
artifact fails CI here (and via ``python -m repro taintcheck``).
Sanctioned reads are blessed in place with
``# simtaint: blessed=REASON``.
"""

import os

from repro.analysis import format_findings_text, load_config
from repro.analysis.runner import taintcheck_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))


def test_repo_is_taintcheck_clean():
    config = load_config(REPO_ROOT)
    paths = [os.path.join(REPO_ROOT, path) for path in config.paths]
    findings = taintcheck_paths(paths, config=config)
    assert not findings, "\n" + format_findings_text(
        findings, tool="simtaint")

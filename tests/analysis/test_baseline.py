"""Baseline snapshots: byte-identical round-trips, count-aware
filtering, and the CLI flags that use them."""

import json

import pytest

from repro.analysis import (filter_new, fingerprint, load_baseline,
                            render_baseline, write_baseline)
from repro.analysis.findings import Finding
from repro.cli import main


def _finding(path="src/mod.py", line=3, rule="TNT001",
             message="nondet flows into scheduling"):
    return Finding(path=path, line=line, column=0, rule_id=rule,
                   message=message)


# ---------------------------------------------------------------------------
# Format stability.
# ---------------------------------------------------------------------------

def test_render_is_byte_identical_across_calls():
    findings = [_finding(), _finding(rule="TNT004", line=9,
                                     message="unordered output")]
    assert render_baseline(findings, "simtaint") == \
        render_baseline(list(findings), "simtaint")


def test_render_is_order_insensitive():
    first = _finding()
    second = _finding(rule="TNT004", line=9, message="unordered")
    assert render_baseline([first, second], "simtaint") == \
        render_baseline([second, first], "simtaint")


def test_write_then_load_round_trips(tmp_path):
    target = tmp_path / "baseline.json"
    findings = [_finding(), _finding()]
    write_baseline(str(target), findings, "simtaint")
    raw = target.read_bytes()
    assert raw.endswith(b"\n") and not raw.endswith(b"\n\n")
    allowed = load_baseline(str(target))
    assert allowed == {fingerprint(findings[0]): 2}
    # Writing the identical findings again produces identical bytes.
    again = tmp_path / "again.json"
    write_baseline(str(again), findings, "simtaint")
    assert again.read_bytes() == raw


def test_fingerprint_normalizes_path_separators():
    assert fingerprint(_finding(path="./src/mod.py")) == \
        fingerprint(_finding(path="src/mod.py"))


def test_load_rejects_malformed_documents(tmp_path):
    target = tmp_path / "bad.json"
    target.write_text(json.dumps({"version": 99, "findings": {}}),
                      encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(str(target))


# ---------------------------------------------------------------------------
# Count-aware filtering.
# ---------------------------------------------------------------------------

def test_filter_new_without_baseline_keeps_everything():
    findings = [_finding()]
    assert filter_new(findings, None) == findings


def test_filter_new_drops_covered_findings():
    findings = [_finding()]
    baseline = {fingerprint(findings[0]): 1}
    assert filter_new(findings, baseline) == []


def test_filter_new_is_count_aware():
    # Two occurrences frozen, a third identical one is new.
    findings = [_finding(), _finding(), _finding()]
    baseline = {fingerprint(findings[0]): 2}
    assert len(filter_new(findings, baseline)) == 1


def test_filter_new_flags_unknown_findings():
    known = _finding()
    fresh = _finding(rule="TNT002", message="env into telemetry")
    baseline = {fingerprint(known): 1}
    assert filter_new([known, fresh], baseline) == [fresh]


# ---------------------------------------------------------------------------
# CLI integration (--write-baseline / --baseline).
# ---------------------------------------------------------------------------

FIRE = """\
import time


def stamp(server):
    server.started_at = time.time()
"""


def test_cli_write_then_apply_baseline(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(FIRE, encoding="utf-8")
    snapshot = tmp_path / "baseline.json"

    code = main(["taintcheck", str(bad),
                 "--write-baseline", str(snapshot)])
    assert code == 0
    assert "wrote baseline of 1 finding" in capsys.readouterr().out

    # Unchanged findings are frozen: exit 0, nothing reported.
    code = main(["taintcheck", str(bad), "--baseline", str(snapshot)])
    assert code == 0
    assert "no findings" in capsys.readouterr().out

    # The snapshot round-trips byte-identically.
    again = tmp_path / "again.json"
    code = main(["taintcheck", str(bad),
                 "--write-baseline", str(again)])
    capsys.readouterr()
    assert code == 0
    assert again.read_bytes() == snapshot.read_bytes()


def test_cli_baseline_fails_on_new_findings(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(FIRE, encoding="utf-8")
    snapshot = tmp_path / "baseline.json"
    code = main(["taintcheck", str(bad),
                 "--write-baseline", str(snapshot)])
    assert code == 0
    capsys.readouterr()

    bad.write_text(FIRE + """\


def stamp_two(server):
    server.stopped_at = time.time()
""", encoding="utf-8")
    code = main(["taintcheck", str(bad), "--baseline", str(snapshot)])
    out = capsys.readouterr().out
    assert code == 1
    # Only the NEW finding is reported.
    assert "stamp_two" in out or "1 finding" in out


def test_cli_unreadable_baseline_is_a_usage_error(tmp_path, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text("x = 1\n", encoding="utf-8")
    code = main(["taintcheck", str(bad),
                 "--baseline", str(tmp_path / "missing.json")])
    assert code == 2
    assert "error" in capsys.readouterr().out

"""Exact node/edge sets of the flow CFG builder on tricky shapes.

Labels are deterministic (``NodeType@line``), so each test pins the
complete graph — any builder change that adds, drops or rewires an
edge fails loudly here.
"""

import ast
import textwrap

from repro.analysis.flow.cfg import build_cfg, may_raise


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0])


# --------------------------------------------------- nested try/finally
def test_nested_try_finally_chains_cleanups():
    cfg = cfg_of('''
    def f():
        try:
            try:
                work()
            finally:
                inner()
        finally:
            outer()
        after()
    ''')
    assert cfg.node_labels() == {
        "<entry>", "<exit>", "Expr@5", "finally@7", "Expr@7",
        "finally@9", "Expr@9", "Expr@10"}
    assert cfg.edge_set() == {
        ("<entry>", "Expr@5", "normal"),
        # work() reaches the inner finally whether it raises or not.
        ("Expr@5", "finally@7", "normal"),
        ("Expr@5", "finally@7", "exception"),
        ("finally@7", "Expr@7", "normal"),
        # inner() itself may raise; either way the outer finally runs.
        ("Expr@7", "finally@9", "normal"),
        ("Expr@7", "finally@9", "exception"),
        ("finally@9", "Expr@9", "normal"),
        # outer(): re-raise propagates to <exit>, fall-through
        # continues to after().
        ("Expr@9", "<exit>", "exception"),
        ("Expr@9", "Expr@10", "normal"),
        ("Expr@10", "<exit>", "normal"),
        ("Expr@10", "<exit>", "exception"),
    }


# ------------------------------------------------ loop with break+else
def test_loop_with_break_and_else():
    cfg = cfg_of('''
    def f(items):
        for item in items:
            if item:
                break
        else:
            missed()
        after()
    ''')
    assert cfg.node_labels() == {
        "<entry>", "<exit>", "For@3", "If@4", "Break@5", "Expr@7",
        "Expr@8"}
    assert cfg.edge_set() == {
        ("<entry>", "For@3", "normal"),
        ("For@3", "If@4", "normal"),      # next item
        ("For@3", "Expr@7", "normal"),    # exhausted -> else clause
        ("If@4", "Break@5", "normal"),
        ("If@4", "For@3", "normal"),      # test false -> back edge
        ("Break@5", "Expr@8", "normal"),  # break skips the else
        ("Expr@7", "Expr@8", "normal"),
        ("Expr@7", "<exit>", "exception"),
        ("Expr@8", "<exit>", "normal"),
        ("Expr@8", "<exit>", "exception"),
    }


def test_break_through_finally_routes_via_cleanup():
    cfg = cfg_of('''
    def f(items):
        for item in items:
            try:
                break
            finally:
                cleanup()
        after()
    ''')
    edges = cfg.edge_set()
    # The break must pass through the finally body, then reach the
    # loop-exit join, then the statement after the loop.
    assert ("Break@5", "finally@7", "normal") in edges
    assert ("Expr@7", "loop-exit@3", "normal") in edges
    assert ("loop-exit@3", "Expr@8", "normal") in edges
    # No shortcut from the break straight past the cleanup.
    assert ("Break@5", "Expr@8", "normal") not in edges
    assert ("Break@5", "loop-exit@3", "normal") not in edges


# ------------------------------------------- generator, multiple returns
def test_generator_with_multiple_returns():
    cfg = cfg_of('''
    def f(flag):
        if flag:
            yield 1
            return
        yield 2
        return
    ''')
    assert cfg.node_labels() == {
        "<entry>", "<exit>", "If@3", "Expr@4", "Return@5", "Expr@6",
        "Return@7"}
    assert cfg.edge_set() == {
        ("<entry>", "If@3", "normal"),
        ("If@3", "Expr@4", "normal"),
        ("If@3", "Expr@6", "normal"),
        # A yield may raise: the kernel can throw into a waiting
        # process (Process.interrupt).
        ("Expr@4", "<exit>", "exception"),
        ("Expr@4", "Return@5", "normal"),
        ("Return@5", "<exit>", "normal"),
        ("Expr@6", "<exit>", "exception"),
        ("Expr@6", "Return@7", "normal"),
        ("Return@7", "<exit>", "normal"),
    }


# ------------------------------------------------------- with unwinding
def test_with_unwinding():
    cfg = cfg_of('''
    def f():
        with open_thing() as h:
            use(h)
        after()
    ''')
    assert cfg.node_labels() == {
        "<entry>", "<exit>", "With@3", "with-exit@3", "Expr@4",
        "Expr@5"}
    assert cfg.edge_set() == {
        ("<entry>", "With@3", "normal"),
        # Entering the context manager may raise.
        ("With@3", "<exit>", "exception"),
        ("With@3", "Expr@4", "normal"),
        # The body reaches __exit__ on both outcomes.
        ("Expr@4", "with-exit@3", "normal"),
        ("Expr@4", "with-exit@3", "exception"),
        # __exit__ re-raises or falls through.
        ("with-exit@3", "<exit>", "exception"),
        ("with-exit@3", "Expr@5", "normal"),
        ("Expr@5", "<exit>", "normal"),
        ("Expr@5", "<exit>", "exception"),
    }


def test_return_inside_with_routes_through_exit_node():
    cfg = cfg_of('''
    def f():
        with lock() as h:
            return h
        after()
    ''')
    edges = cfg.edge_set()
    assert ("Return@4", "with-exit@3", "normal") in edges
    assert ("with-exit@3", "<exit>", "normal") in edges
    assert ("Return@4", "<exit>", "normal") not in edges


# ------------------------------------------------------- odds and ends
def test_unreachable_code_still_gets_nodes():
    cfg = cfg_of('''
    def f():
        return 1
        dead()
    ''')
    assert "Expr@4" in cfg.node_labels()
    reachable = {cfg.nodes[i].label for i in cfg.reachable()}
    assert "Expr@4" not in reachable


def test_continue_jumps_to_header():
    cfg = cfg_of('''
    def f(items):
        for item in items:
            if item:
                continue
            use(item)
    ''')
    edges = cfg.edge_set()
    assert ("Continue@5", "For@3", "normal") in edges
    assert ("Expr@6", "For@3", "normal") in edges


def test_except_handlers_are_exception_targets():
    cfg = cfg_of('''
    def f():
        try:
            work()
        except ValueError:
            fix()
        after()
    ''')
    edges = cfg.edge_set()
    assert ("Expr@4", "except@5", "exception") in edges
    # ValueError is not a catch-all: the unmatched case escapes.
    assert ("Expr@4", "<exit>", "exception") in edges
    assert ("except@5", "Expr@6", "normal") in edges
    assert ("Expr@6", "Expr@7", "normal") in edges


def test_catch_all_handler_stops_propagation():
    cfg = cfg_of('''
    def f():
        try:
            work()
        except Exception:
            fix()
    ''')
    edges = cfg.edge_set()
    assert ("Expr@4", "except@5", "exception") in edges
    assert ("Expr@4", "<exit>", "exception") not in edges


def test_label_collision_gets_suffix():
    cfg = cfg_of('''
    def f():
        a(); b()
    ''')
    assert {"Expr@3", "Expr@3.2"} <= cfg.node_labels()


def test_may_raise_policy():
    call, = ast.parse("f()").body
    plain, = ast.parse("x = y.z").body
    ylds, = ast.parse("def g():\n yield 1").body[0].body
    assert may_raise(call)
    assert not may_raise(plain)
    assert may_raise(ylds)
    # A nested def's body is opaque: its calls don't run here.
    nested, = ast.parse("def g():\n  h()").body
    assert not may_raise(nested)

"""Config loading (pyproject + fallback parser), rule selection, and
the ``python -m repro lint`` command."""

import json
import os

import pytest

from repro.analysis import (DEFAULT_CONFIG, LintConfig, lint_paths,
                            load_config)
from repro.analysis.config import config_from_table, parse_simlint_table
from repro.cli import main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


# ----------------------------------------------------------- selection
def test_select_restricts_to_family():
    config = LintConfig(select=("DET",))
    assert config.rule_enabled("DET001")
    assert not config.rule_enabled("SQL001")


def test_ignore_drops_specific_rule():
    config = LintConfig(ignore=("SIM003",))
    assert config.rule_enabled("SIM001")
    assert not config.rule_enabled("SIM003")


def test_narrowed_applies_cli_overrides():
    config = DEFAULT_CONFIG.narrowed(select=["SQL"], ignore=["SQL003"])
    assert config.rule_enabled("SQL001")
    assert not config.rule_enabled("SQL003")
    assert not config.rule_enabled("DET001")


# ------------------------------------------------------------- loading
def test_load_config_reads_repo_pyproject():
    config = load_config(REPO_ROOT)
    assert config.paths == ("src/repro",)
    assert "src/repro/sql" in config.sql_exclude


def test_load_config_defaults_without_pyproject(tmp_path):
    assert load_config(str(tmp_path)) == DEFAULT_CONFIG


def test_load_config_from_custom_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\n"
        'paths = ["lib"]\n'
        'select = ["DET", "SIM"]\n'
        'ignore = ["DET005"]\n')
    config = load_config(str(tmp_path))
    assert config.paths == ("lib",)
    assert config.rule_enabled("SIM001")
    assert not config.rule_enabled("DET005")
    assert not config.rule_enabled("SQL001")


def test_fallback_parser_matches_tomllib_for_our_table():
    text = (
        "[tool.other]\n"
        'noise = "yes"\n'
        "[tool.simlint]\n"
        'paths = ["src/repro", "tools"]\n'
        "select = []\n"
        'ignore = ["SQL003"]\n'
        "[tool.after]\n"
        'more = "noise"\n')
    table = parse_simlint_table(text)
    assert table == {"paths": ["src/repro", "tools"], "select": [],
                     "ignore": ["SQL003"]}
    config = config_from_table(table)
    assert config.paths == ("src/repro", "tools")
    assert config.ignore == ("SQL003",)


def test_config_rejects_non_string_lists():
    with pytest.raises(ValueError):
        config_from_table({"paths": [1, 2]})


# ----------------------------------------------------------------- CLI
def bad_module(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(
        "import time\n"
        "def probe(sim):\n"
        "    yield sim.timeout(1.0)\n"
        "    time.sleep(0.5)\n")
    return str(path)


def test_cli_lint_clean_path_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    assert main(["lint", str(clean)]) == 0
    assert "no findings" in capsys.readouterr().out


def test_cli_lint_violation_exits_nonzero(tmp_path, capsys):
    assert main(["lint", bad_module(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "SIM001" in out
    assert "bad.py:4:" in out


def test_cli_lint_json_format(tmp_path, capsys):
    assert main(["lint", "--format", "json", bad_module(tmp_path)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["findings"][0]["rule_id"] == "SIM001"
    assert payload["findings"][0]["line"] == 4


def test_cli_lint_select_and_ignore(tmp_path, capsys):
    path = bad_module(tmp_path)
    assert main(["lint", "--select", "DET", path]) == 0
    capsys.readouterr()
    assert main(["lint", "--ignore", "SIM001", path]) == 0


def test_lint_paths_accepts_single_file(tmp_path):
    findings = lint_paths([bad_module(tmp_path)],
                          config=LintConfig(sql_exclude=()))
    assert [finding.rule_id for finding in findings] == ["SIM001"]


def test_cli_lint_unknown_rule_is_a_usage_error(tmp_path, capsys):
    # A typo'd --select must not silently disable every rule.
    assert main(["lint", "--select", "BOGUS", bad_module(tmp_path)]) == 2
    out = capsys.readouterr().out
    assert "unknown rule or family: BOGUS" in out
    capsys.readouterr()
    assert main(["lint", "--ignore", "SIM01", bad_module(tmp_path)]) == 2


def test_cli_lint_missing_path_is_an_error(tmp_path, capsys):
    missing = str(tmp_path / "no_such_dir")
    assert main(["lint", missing]) == 2
    assert "does not exist" in capsys.readouterr().out
